//! The attention backend abstraction.
//!
//! Every system evaluated in the paper — PAT, its ablations, and the seven
//! baselines — is a *policy* that turns a decode batch into a [`KernelPlan`].
//! The shared trait lets the kernel benchmark (Fig. 11/17), the end-to-end
//! serving simulator (Fig. 12/13), and the numeric validator treat them
//! uniformly.

use crate::{DecodeBatch, KernelPlan};
use sim_gpu::GpuSpec;

/// A decode-attention implementation: packs a batch into an execution plan.
pub trait AttentionBackend {
    /// Display name, e.g. `"PAT"` or `"FlashAttention"`.
    fn name(&self) -> &str;

    /// Whether the backend supports this batch's shape. Baselines with
    /// feature gaps return `false` (e.g. RelayAttention on multi-level
    /// prefixes, FastTree on head ratios other than 1 and 4), which renders
    /// as the "missing bars" of Fig. 11.
    fn supports(&self, batch: &DecodeBatch) -> bool {
        let _ = batch;
        true
    }

    /// Produces the execution plan for one decode step.
    fn plan(&self, batch: &DecodeBatch, spec: &GpuSpec) -> KernelPlan;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtaPlan, KvSlice, TileConfig};
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    /// A trivial one-query-per-CTA backend used to exercise the trait object.
    #[derive(Debug)]
    struct Naive;

    impl AttentionBackend for Naive {
        fn name(&self) -> &str {
            "naive"
        }

        fn plan(&self, batch: &DecodeBatch, _spec: &GpuSpec) -> KernelPlan {
            KernelPlan::new(
                (0..batch.num_queries())
                    .map(|q| CtaPlan {
                        queries: vec![q],
                        kv: KvSlice::new(
                            batch.tables()[q].blocks().to_vec(),
                            batch.kv_len(q),
                            batch.block_size(),
                        ),
                        tile: TileConfig::new(64, 128),
                        stream: 0,
                        phase: 0,
                    })
                    .collect(),
            )
        }
    }

    #[test]
    fn backend_is_object_safe_and_plans_validate() {
        let backend: Box<dyn AttentionBackend> = Box::new(Naive);
        let head = HeadConfig::new(8, 8, 32);
        let batch = DecodeBatch::new(head, vec![BlockTable::new(vec![BlockId(0)], 16, 16)], 2);
        assert!(backend.supports(&batch));
        let plan = backend.plan(&batch, &GpuSpec::a100_sxm4_80gb());
        plan.validate(&batch).unwrap();
        assert_eq!(backend.name(), "naive");
    }
}
