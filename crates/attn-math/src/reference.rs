//! Naive reference attention used as the correctness oracle.

use crate::tensor::{dot, Matrix};
use crate::PartialAttn;

/// Computes `softmax(q·Kᵀ · scale) · V` for one query vector.
///
/// This is the textbook O(len·d) formulation (§2.1); every packed/split/merged
/// execution plan must reproduce it bit-for-bit up to f32 rounding.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or `keys` is empty.
///
/// # Examples
///
/// ```
/// use attn_math::{reference_attention, Matrix};
///
/// let keys = Matrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// let values = Matrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// let out = reference_attention(&[10.0, 0.0], &keys, &values, 1.0);
/// assert!(out[0] > 0.99); // attends almost entirely to the first key
/// ```
pub fn reference_attention(q: &[f32], keys: &Matrix, values: &Matrix, scale: f32) -> Vec<f32> {
    assert!(keys.rows() > 0, "attention over empty keys is undefined");
    assert_eq!(keys.rows(), values.rows(), "keys/values length mismatch");
    assert_eq!(q.len(), keys.cols(), "query/key dimension mismatch");
    let scores: Vec<f32> = (0..keys.rows())
        .map(|i| dot(q, keys.row(i)) * scale)
        .collect();
    let m = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f32> = scores.iter().map(|s| (s - m).exp()).collect();
    let z: f32 = weights.iter().sum();
    let mut out = vec![0.0; values.cols()];
    for (w, i) in weights.iter().zip(0..values.rows()) {
        let v = values.row(i);
        for (o, &x) in out.iter_mut().zip(v) {
            *o += (w / z) * x;
        }
    }
    out
}

/// Computes the partial attention state of one query over a KV segment, tiled
/// internally in chunks of `tile_n` keys — numerically identical to a single
/// pass thanks to online softmax, and the exact computation one forward-stage
/// CTA performs per KV tile (§5.2).
///
/// # Panics
///
/// Panics on dimension mismatch or `tile_n == 0`.
pub fn attend_segment(
    q: &[f32],
    keys: &Matrix,
    values: &Matrix,
    scale: f32,
    tile_n: usize,
) -> PartialAttn {
    assert!(tile_n > 0, "tile size must be positive");
    assert_eq!(keys.rows(), values.rows(), "keys/values length mismatch");
    assert_eq!(q.len(), keys.cols(), "query/key dimension mismatch");
    let mut state = PartialAttn::empty(values.cols());
    let mut start = 0;
    while start < keys.rows() {
        let end = (start + tile_n).min(keys.rows());
        for i in start..end {
            state.accumulate(dot(q, keys.row(i)) * scale, values.row(i));
        }
        start = end;
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Deterministic xorshift fill; avoids a rand dependency in unit tests.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        Matrix::from_rows(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn tiled_equals_reference_for_all_tile_sizes() {
        let d = 16;
        let len = 37;
        let keys = random_matrix(len, d, 1);
        let values = random_matrix(len, d, 2);
        let q: Vec<f32> = random_matrix(1, d, 3).row(0).to_vec();
        let scale = 1.0 / (d as f32).sqrt();
        let want = reference_attention(&q, &keys, &values, scale);
        for tile_n in [1, 2, 7, 16, 37, 64] {
            let got = attend_segment(&q, &keys, &values, scale, tile_n)
                .finalize()
                .unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-5, "tile {tile_n}");
            }
        }
    }

    #[test]
    fn segment_split_and_merge_equals_reference() {
        let d = 8;
        let len = 50;
        let keys = random_matrix(len, d, 7);
        let values = random_matrix(len, d, 8);
        let q: Vec<f32> = random_matrix(1, d, 9).row(0).to_vec();
        let scale = 0.35;
        let want = reference_attention(&q, &keys, &values, scale);
        // Split the KV into 3 uneven segments, attend separately, merge.
        let cuts = [0usize, 13, 31, 50];
        let mut merged = PartialAttn::empty(d);
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            let part = attend_segment(
                &q,
                &keys.slice_rows(a, b),
                &values.slice_rows(a, b),
                scale,
                16,
            );
            merged.merge(&part);
        }
        let got = merged.finalize().unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn attends_to_dominant_key() {
        let keys = Matrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0]);
        let values = Matrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let out = reference_attention(&[20.0, 0.0], &keys, &values, 1.0);
        assert!(out[0] > 0.99 && out[1] < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty keys")]
    fn empty_keys_panic() {
        let keys = Matrix::zeros(0, 4);
        let values = Matrix::zeros(0, 4);
        let _ = reference_attention(&[0.0; 4], &keys, &values, 1.0);
    }
}
