//! The runtime tile-size selector (§5.2).
//!
//! Given the feasible (performance-equivalent) tile suite from the offline
//! solver, assigns each CTA an `(m, n)`:
//!
//! * **Q tile `m` — round-up rule**: the smallest feasible `m` holding the
//!   CTA's query rows, avoiding both row-splitting (which would re-load the
//!   shared KV) and oversized tiles (which waste on-chip memory needed for
//!   `n`).
//! * **KV tile `n` — piecewise decision tree**: short KV prefers small `n`
//!   (the last tile's compute is exposed: at KV 192, n=128 wastes ~50% of the
//!   final tile while n=64 divides evenly), long KV prefers large `n` (lower
//!   concurrency per SM, more bandwidth per CTA, smaller tail bubbles). The
//!   thresholds are the offline-profiled stabilization points.

use attn_kernel::TileConfig;
use std::collections::BTreeSet;

/// The runtime tile selector over a feasible tile suite.
///
/// # Examples
///
/// ```
/// use attn_kernel::TileConfig;
/// use pat_core::{TileSelector, TileSolver};
/// use sim_gpu::GpuSpec;
///
/// let solver = TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2);
/// let selector = TileSelector::new(solver.feasible_tiles());
/// // 20 query rows round up to m=32; KV 192 picks n=64 (divides evenly).
/// assert_eq!(selector.select(20, 192), Some(TileConfig::new(32, 64)));
/// ```
#[derive(Debug, Clone)]
pub struct TileSelector {
    feasible: Vec<TileConfig>,
    m_options: Vec<usize>,
}

impl TileSelector {
    /// Creates a selector over `feasible` tiles (from [`crate::TileSolver`]).
    ///
    /// # Panics
    ///
    /// Panics if `feasible` is empty.
    pub fn new(feasible: Vec<TileConfig>) -> Self {
        assert!(
            !feasible.is_empty(),
            "selector needs a non-empty tile suite"
        );
        let m_options: Vec<usize> = feasible
            .iter()
            .map(|t| t.m)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        TileSelector {
            feasible,
            m_options,
        }
    }

    /// The feasible suite.
    pub fn feasible(&self) -> &[TileConfig] {
        &self.feasible
    }

    /// Largest feasible Q tile (the row-split threshold for the packer).
    pub fn max_m(&self) -> usize {
        *self.m_options.last().expect("non-empty")
    }

    /// Round-up rule: smallest feasible `m ≥ query_rows`.
    pub fn select_m(&self, query_rows: usize) -> Option<usize> {
        self.m_options.iter().copied().find(|&m| m >= query_rows)
    }

    /// The offline-profiled KV-length → preferred-`n` decision tree.
    pub fn preferred_n(kv_len: usize) -> usize {
        match kv_len {
            0..=95 => 16,
            96..=191 => 32,
            192..=767 => 64,
            _ => 128,
        }
    }

    /// Selects the `(m, n)` pair for a CTA with `query_rows` rows over
    /// `kv_len` KV tokens. Returns `None` when `query_rows` exceeds the
    /// largest feasible `m` (the caller must row-split first).
    pub fn select(&self, query_rows: usize, kv_len: usize) -> Option<TileConfig> {
        let m = self.select_m(query_rows)?;
        let cap = Self::preferred_n(kv_len);
        // Largest feasible n ≤ cap for this m; fall back to the smallest
        // available n when the cap excludes everything (e.g. m=64 has no
        // n=16 tile on A100).
        let mut candidates: Vec<usize> = self
            .feasible
            .iter()
            .filter(|t| t.m == m)
            .map(|t| t.n)
            .collect();
        candidates.sort_unstable();
        let n = candidates
            .iter()
            .copied()
            .rfind(|&n| n <= cap)
            .or_else(|| candidates.first().copied())?;
        Some(TileConfig::new(m, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TileSolver;
    use sim_gpu::GpuSpec;

    fn selector() -> TileSelector {
        let solver = TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2);
        TileSelector::new(solver.feasible_tiles())
    }

    #[test]
    fn round_up_rule_matches_paper_example() {
        // §5.2: q = 20 chooses m = 32, not 16 (splitting) nor 64/128 (waste).
        let s = selector();
        assert_eq!(s.select_m(20), Some(32));
        assert_eq!(s.select_m(1), Some(16));
        assert_eq!(s.select_m(16), Some(16));
        assert_eq!(s.select_m(33), Some(64));
        assert_eq!(s.select_m(64), Some(64));
        assert_eq!(s.select_m(65), None, "row split required above max m");
    }

    #[test]
    fn kv_192_prefers_n_64_over_128() {
        // §5.2: at KV 192, n=128 leaves a 50% compute bubble in the last
        // tile; n=64 divides evenly and is performance-equivalent.
        let s = selector();
        let tile = s.select(16, 192).unwrap();
        assert_eq!(tile.n, 64);
    }

    #[test]
    fn long_kv_prefers_large_n() {
        let s = selector();
        assert_eq!(s.select(16, 4096).unwrap().n, 128);
        assert_eq!(s.select(16, 1024).unwrap().n, 128);
    }

    #[test]
    fn short_kv_prefers_small_n() {
        let s = selector();
        assert_eq!(s.select(16, 64).unwrap().n, 16);
        assert_eq!(s.select(16, 128).unwrap().n, 32);
    }

    #[test]
    fn m64_falls_back_to_smallest_available_n() {
        // (64,16) is infeasible on A100; short-KV CTAs with 64 rows take the
        // smallest feasible n for m=64 instead (32).
        let s = selector();
        let tile = s.select(64, 64).unwrap();
        assert_eq!(tile.m, 64);
        assert_eq!(tile.n, 32);
    }

    #[test]
    fn max_m_reflects_suite() {
        assert_eq!(selector().max_m(), 64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_suite_rejected() {
        let _ = TileSelector::new(vec![]);
    }
}
