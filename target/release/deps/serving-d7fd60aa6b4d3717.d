/root/repo/target/release/deps/serving-d7fd60aa6b4d3717.d: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs

/root/repo/target/release/deps/libserving-d7fd60aa6b4d3717.rlib: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs

/root/repo/target/release/deps/libserving-d7fd60aa6b4d3717.rmeta: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs

crates/serving/src/lib.rs:
crates/serving/src/attention.rs:
crates/serving/src/breakdown.rs:
crates/serving/src/costs.rs:
crates/serving/src/engine.rs:
crates/serving/src/metrics.rs:
crates/serving/src/model.rs:
