//! Thread-local per-block scratch for the per-step traffic analysis.
//!
//! `analyze_traffic` and `DecodeBatch::distinct_kv_bytes` both need a
//! map keyed by [`BlockId`] that lives for exactly one call, sized by the
//! batch's block-table footprint (thousands of entries on serving-scale
//! batches, rebuilt on every step-cache miss). Hashing every block id per
//! step dominated the simulated-step profile, so this scratch indexes a
//! dense slot table by the raw id with an *epoch tag*: `clear` is a counter
//! bump, lookups are a bounds check plus a compare, and the allocation is
//! reused for the lifetime of the worker thread. Ids past [`DENSE_LIMIT`]
//! (no real cache manager allocates that many blocks) spill to a hash map
//! so adversarial ids cannot balloon the slot table.
//!
//! Values are exact integers and no operation depends on iteration order,
//! so everything computed through this scratch is bit-identical to the
//! hash-map formulation it replaced.

use crate::fxhash::FxHashMap;
use std::cell::RefCell;

/// Largest id kept in the dense table (8 bytes per slot => ≤ 16 MiB).
const DENSE_LIMIT: u32 = 1 << 21;

/// An epoch-cleared `BlockId -> u32` map.
pub(crate) struct BlockScratch {
    epoch: u32,
    /// `(epoch, value)` per id; a stale epoch reads as absent.
    dense: Vec<(u32, u32)>,
    /// Overflow for ids ≥ [`DENSE_LIMIT`]; cleared per epoch.
    sparse: FxHashMap<u32, u32>,
}

impl BlockScratch {
    fn new() -> Self {
        BlockScratch {
            epoch: 0,
            dense: Vec::new(),
            sparse: FxHashMap::default(),
        }
    }

    /// Forgets every entry (O(1) except once per `u32::MAX` clears).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale tags would read as live. Start over.
            self.dense.clear();
            self.epoch = 1;
        }
        self.sparse.clear();
    }

    fn dense_slot(&mut self, id: u32) -> &mut (u32, u32) {
        let i = id as usize;
        if i >= self.dense.len() {
            let target = (i + 1).max(self.dense.len() * 2).min(DENSE_LIMIT as usize);
            self.dense.resize(target, (0, 0));
        }
        &mut self.dense[i]
    }

    /// Adds one to the slot for `id`.
    pub fn incr(&mut self, id: u32) {
        if id < DENSE_LIMIT {
            let epoch = self.epoch;
            let slot = self.dense_slot(id);
            if slot.0 == epoch {
                slot.1 += 1;
            } else {
                *slot = (epoch, 1);
            }
        } else {
            *self.sparse.entry(id).or_insert(0) += 1;
        }
    }

    /// The slot's value this epoch (0 when never touched).
    pub fn get(&self, id: u32) -> u32 {
        if id < DENSE_LIMIT {
            match self.dense.get(id as usize) {
                Some(&(e, v)) if e == self.epoch => v,
                _ => 0,
            }
        } else {
            self.sparse.get(&id).copied().unwrap_or(0)
        }
    }

    /// Raises the slot for `id` to at least `v`, returning the increase
    /// (`v` for a fresh id, `v - old` for a raise, 0 otherwise). Summing the
    /// returned increases yields the sum of per-id maxima without iterating
    /// the table.
    pub fn raise(&mut self, id: u32, v: u32) -> u32 {
        if id < DENSE_LIMIT {
            let epoch = self.epoch;
            let slot = self.dense_slot(id);
            if slot.0 != epoch {
                *slot = (epoch, v);
                v
            } else if v > slot.1 {
                let delta = v - slot.1;
                slot.1 = v;
                delta
            } else {
                0
            }
        } else {
            let slot = self.sparse.entry(id).or_insert(0);
            let delta = v.saturating_sub(*slot);
            *slot = (*slot).max(v);
            delta
        }
    }
}

/// Runs `f` with this thread's scratch. Do not call re-entrantly (the
/// scratch is a single `RefCell`); callers sequence their uses instead.
pub(crate) fn with_block_scratch<R>(f: impl FnOnce(&mut BlockScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch::new());
    }
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reset_across_epochs() {
        let mut s = BlockScratch::new();
        s.clear();
        s.incr(3);
        s.incr(3);
        s.incr(7);
        assert_eq!(s.get(3), 2);
        assert_eq!(s.get(7), 1);
        assert_eq!(s.get(4), 0);
        s.clear();
        assert_eq!(s.get(3), 0);
        s.incr(3);
        assert_eq!(s.get(3), 1);
    }

    #[test]
    fn raise_returns_the_increase() {
        let mut s = BlockScratch::new();
        s.clear();
        assert_eq!(s.raise(5, 16), 16);
        assert_eq!(s.raise(5, 12), 0);
        assert_eq!(s.raise(5, 20), 4);
        assert_eq!(s.get(5), 20);
    }

    #[test]
    fn huge_ids_spill_to_the_sparse_table() {
        let mut s = BlockScratch::new();
        s.clear();
        let big = u32::MAX - 1;
        s.incr(big);
        s.incr(big);
        assert_eq!(s.get(big), 2);
        assert_eq!(s.raise(u32::MAX, 9), 9);
        assert_eq!(s.get(u32::MAX), 9);
        // The dense table never grew to cover them.
        assert!(s.dense.len() <= DENSE_LIMIT as usize);
        s.clear();
        assert_eq!(s.get(big), 0);
    }

    #[test]
    fn epoch_wrap_drops_stale_entries() {
        let mut s = BlockScratch::new();
        s.clear();
        s.incr(1);
        s.epoch = u32::MAX; // simulate 4B clears
        s.clear();
        assert_eq!(s.epoch, 1);
        assert_eq!(s.get(1), 0);
    }
}
