//! Model specifications of the evaluated LLMs (§8.2, §8.5).

use attn_math::HeadConfig;

/// Mixture-of-Experts configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeSpec {
    /// Total routed experts per layer.
    pub num_experts: usize,
    /// Experts activated per token.
    pub active_experts: usize,
    /// Intermediate (FFN) dimension of one expert.
    pub expert_intermediate: usize,
}

/// A dense or MoE transformer decoder specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Model name.
    pub name: &'static str,
    /// Decoder layers.
    pub num_layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention head configuration.
    pub head: HeadConfig,
    /// Dense FFN intermediate size (ignored for MoE layers).
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum context length in tokens.
    pub max_context: usize,
    /// MoE configuration, if any.
    pub moe: Option<MoeSpec>,
}

impl ModelSpec {
    /// Llama-3-8B (§8.2): 32 layers, GQA 32/8, 8K context.
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "Llama-3-8B",
            num_layers: 32,
            hidden: 4096,
            head: HeadConfig::new(32, 8, 128),
            intermediate: 14336,
            vocab: 128_256,
            max_context: 8_192,
            moe: None,
        }
    }

    /// Qwen3-8B (§8.2): 36 layers, GQA 32/8, 32K context.
    pub fn qwen3_8b() -> Self {
        ModelSpec {
            name: "Qwen3-8B",
            num_layers: 36,
            hidden: 4096,
            head: HeadConfig::new(32, 8, 128),
            intermediate: 12_288,
            vocab: 151_936,
            max_context: 32_768,
            moe: None,
        }
    }

    /// Qwen2.5-72B-Instruct (§8.5, TP2×PP2 on four A100s).
    pub fn qwen25_72b() -> Self {
        ModelSpec {
            name: "Qwen2.5-72B-Instruct",
            num_layers: 80,
            hidden: 8192,
            head: HeadConfig::new(64, 8, 128),
            intermediate: 29_568,
            vocab: 152_064,
            max_context: 32_768,
            moe: None,
        }
    }

    /// Qwen3-30B-A3B (§8.5, MoE: 128 experts, 8 active).
    pub fn qwen3_30b_a3b() -> Self {
        ModelSpec {
            name: "Qwen3-30B-A3B",
            num_layers: 48,
            hidden: 2048,
            head: HeadConfig::new(32, 4, 128),
            intermediate: 6144,
            vocab: 151_936,
            max_context: 32_768,
            moe: Some(MoeSpec {
                num_experts: 128,
                active_experts: 8,
                expert_intermediate: 768,
            }),
        }
    }

    /// Attention projection parameters per layer (Q, K, V, O).
    pub fn attn_params_per_layer(&self) -> usize {
        let d = self.head.head_dim();
        let q = self.hidden * self.head.num_heads() * d;
        let kv = 2 * self.hidden * self.head.num_kv_heads() * d;
        let o = self.head.num_heads() * d * self.hidden;
        q + kv + o
    }

    /// FFN parameters *loaded from memory* per decode step per layer: for
    /// dense models the full gate/up/down matrices, for MoE only the experts
    /// a batch of `batch_tokens` tokens can activate.
    pub fn ffn_params_loaded(&self, batch_tokens: usize) -> usize {
        match self.moe {
            None => 3 * self.hidden * self.intermediate,
            Some(moe) => {
                let activated = (batch_tokens * moe.active_experts).min(moe.num_experts);
                3 * self.hidden * moe.expert_intermediate * activated
            }
        }
    }

    /// FFN FLOPs per token per layer (compute touches only active experts).
    pub fn ffn_flops_per_token(&self) -> f64 {
        match self.moe {
            None => 2.0 * (3 * self.hidden * self.intermediate) as f64,
            Some(moe) => {
                2.0 * (3 * self.hidden * moe.expert_intermediate * moe.active_experts) as f64
            }
        }
    }

    /// Total parameter count (approximate; embeddings counted once).
    pub fn total_params(&self) -> f64 {
        let per_layer = self.attn_params_per_layer() as f64
            + match self.moe {
                None => (3 * self.hidden * self.intermediate) as f64,
                Some(m) => (3 * self.hidden * m.expert_intermediate * m.num_experts) as f64,
            };
        per_layer * self.num_layers as f64 + (self.vocab * self.hidden) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_is_roughly_8b_params() {
        let p = ModelSpec::llama3_8b().total_params();
        assert!(p > 6.5e9 && p < 9.0e9, "params {p:.2e}");
    }

    #[test]
    fn qwen30b_moe_is_roughly_30b_params() {
        let p = ModelSpec::qwen3_30b_a3b().total_params();
        assert!(p > 20e9 && p < 40e9, "params {p:.2e}");
    }

    #[test]
    fn moe_loads_fewer_ffn_bytes_at_small_batch() {
        let moe = ModelSpec::qwen3_30b_a3b();
        let small = moe.ffn_params_loaded(1);
        let large = moe.ffn_params_loaded(1024);
        assert!(small < large);
        // At huge batch, all experts load.
        assert_eq!(large, 3 * moe.hidden * 768 * 128);
    }

    #[test]
    fn dense_ffn_load_is_batch_independent() {
        let dense = ModelSpec::llama3_8b();
        assert_eq!(dense.ffn_params_loaded(1), dense.ffn_params_loaded(512));
    }

    #[test]
    fn context_limits_match_paper() {
        assert_eq!(ModelSpec::llama3_8b().max_context, 8192);
        assert_eq!(ModelSpec::qwen3_8b().max_context, 32768);
    }
}
