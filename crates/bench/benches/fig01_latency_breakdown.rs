//! Fig. 1: latency breakdown of Llama-3-8B and Qwen3-8B across context
//! length (batch 64, A100). Shows decode attention's share of decode-step
//! time growing with context — the paper's motivating observation.

use pat_bench::{banner, save_json};
use serde::Serialize;
use serving::{latency_breakdown, ModelSpec};
use sim_gpu::GpuSpec;

#[derive(Serialize)]
struct Row {
    model: String,
    context_len: usize,
    attention_ms: f64,
    linear_ms: f64,
    attention_pct: f64,
}

fn main() {
    let gpu = GpuSpec::a100_sxm4_80gb();
    let mut rows = Vec::new();
    for model in [ModelSpec::llama3_8b(), ModelSpec::qwen3_8b()] {
        banner(&format!(
            "Fig. 1 — decode-step latency breakdown, {} @ batch 64 on A100",
            model.name
        ));
        let contexts: Vec<usize> = [1024usize, 2048, 4096, 8192]
            .into_iter()
            .filter(|&c| c <= model.max_context)
            .collect();
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            "context", "attention(ms)", "linear(ms)", "attn share"
        );
        for row in latency_breakdown(&model, &gpu, 64, &contexts) {
            println!(
                "{:>10} {:>14.2} {:>14.2} {:>13.1}%",
                row.context_len,
                row.attention_ms,
                row.linear_ms,
                row.attention_fraction * 100.0
            );
            rows.push(Row {
                model: model.name.to_string(),
                context_len: row.context_len,
                attention_ms: row.attention_ms,
                linear_ms: row.linear_ms,
                attention_pct: row.attention_fraction * 100.0,
            });
        }
    }
    println!("\npaper: decode attention contributes up to 53% of END-TO-END latency");
    println!("       (prefill included); within a decode step the share is higher.");
    save_json("fig01_latency_breakdown", &rows).expect("persist bench results");
}
