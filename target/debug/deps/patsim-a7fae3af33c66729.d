/root/repo/target/debug/deps/patsim-a7fae3af33c66729.d: src/bin/patsim.rs Cargo.toml

/root/repo/target/debug/deps/libpatsim-a7fae3af33c66729.rmeta: src/bin/patsim.rs Cargo.toml

src/bin/patsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
