//! Long-KV split (§6).
//!
//! Multi-stream execution alone cannot remove execution bubbles when one
//! CTA's KV is orders of magnitude longer than the others. PAT splits any
//! pack whose KV length exceeds the batch-mean KV length into equal parts
//! (at block granularity) so the last-finishing CTAs shorten and SM
//! utilization improves. The split partials are recombined by the merge
//! stage, which the profit model already accounts for.

use crate::packer::Pack;

/// Splits packs longer than the mean KV length into equal parts, cutting at
/// block boundaries. `block_size` is the KV block size in tokens.
///
/// # Panics
///
/// Panics if `block_size` is zero.
///
/// # Examples
///
/// ```
/// use kv_cache::BlockId;
/// use pat_core::{split_long_kv, Pack};
///
/// let packs = vec![
///     Pack { queries: vec![0], blocks: (0..64).map(BlockId).collect(), tokens: 1024, start: 0 },
///     Pack { queries: vec![1], blocks: vec![BlockId(100)], tokens: 16, start: 0 },
/// ];
/// let out = split_long_kv(packs, 16);
/// // The long pack is split; the short one is untouched.
/// assert!(out.len() > 2);
/// assert!(out.iter().all(|p| p.tokens <= 520));
/// ```
pub fn split_long_kv(packs: Vec<Pack>, block_size: usize) -> Vec<Pack> {
    assert!(block_size > 0, "block size must be positive");
    if packs.is_empty() {
        return packs;
    }
    let mean = packs.iter().map(|p| p.tokens).sum::<usize>() as f64 / packs.len() as f64;
    let mut out = Vec::with_capacity(packs.len());
    for pack in packs {
        if (pack.tokens as f64) <= mean || pack.blocks.len() <= 1 {
            out.push(pack);
            continue;
        }
        let parts = sim_core::cast::f64_to_usize((pack.tokens as f64 / mean).ceil());
        let parts = parts.min(pack.blocks.len()).max(1);
        let blocks_per_part = pack.blocks.len().div_ceil(parts);
        let mut consumed_tokens = 0;
        let mut consumed_blocks = 0;
        for chunk in pack.blocks.chunks(blocks_per_part) {
            // All but the final chunk consist of full blocks.
            let is_last = consumed_tokens + chunk.len() * block_size >= pack.tokens;
            let tokens = if is_last {
                pack.tokens - consumed_tokens
            } else {
                chunk.len() * block_size
            };
            out.push(Pack {
                queries: pack.queries.clone(),
                blocks: chunk.to_vec(),
                tokens,
                start: pack.start + consumed_blocks,
            });
            consumed_tokens += tokens;
            consumed_blocks += chunk.len();
        }
        debug_assert_eq!(consumed_tokens, pack.tokens);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_cache::BlockId;

    fn pack(q: usize, nblocks: u32, tokens: usize) -> Pack {
        Pack {
            queries: vec![q],
            blocks: (0..nblocks)
                .map(|i| BlockId(sim_core::cast::usize_to_u32(q) * 1000 + i))
                .collect(),
            tokens,
            start: 0,
        }
    }

    fn total_tokens(packs: &[Pack]) -> usize {
        packs.iter().map(|p| p.tokens).sum()
    }

    #[test]
    fn balanced_packs_are_untouched() {
        let packs = vec![pack(0, 4, 64), pack(1, 4, 64), pack(2, 4, 64)];
        let out = split_long_kv(packs.clone(), 16);
        assert_eq!(out, packs);
    }

    #[test]
    fn outlier_is_split_below_the_mean() {
        let packs = vec![pack(0, 256, 4096), pack(1, 2, 32), pack(2, 2, 32)];
        let mean = (4096 + 32 + 32) as f64 / 3.0;
        let out = split_long_kv(packs, 16);
        assert!(out.len() > 3);
        for p in out.iter().filter(|p| p.queries == vec![0]) {
            // Parts sized to ceil(len/parts) blocks stay near the mean.
            assert!(
                (p.tokens as f64) <= mean + 16.0,
                "part of {} tokens",
                p.tokens
            );
        }
    }

    #[test]
    fn token_totals_are_preserved() {
        let packs = vec![pack(0, 100, 1590), pack(1, 1, 16), pack(2, 7, 112)];
        let before = total_tokens(&packs);
        let out = split_long_kv(packs, 16);
        assert_eq!(total_tokens(&out), before);
        // Partial final block stays in exactly one part.
        let q0_tokens: usize = out
            .iter()
            .filter(|p| p.queries == vec![0])
            .map(|p| p.tokens)
            .sum();
        assert_eq!(q0_tokens, 1590);
    }

    #[test]
    fn block_multisets_are_preserved() {
        let packs = vec![pack(0, 33, 528), pack(1, 1, 16)];
        let out = split_long_kv(packs, 16);
        let mut blocks: Vec<BlockId> = out
            .iter()
            .filter(|p| p.queries == vec![0])
            .flat_map(|p| p.blocks.iter().copied())
            .collect();
        blocks.sort();
        let want: Vec<BlockId> = (0..33).map(BlockId).collect();
        assert_eq!(blocks, want);
    }

    #[test]
    fn single_block_packs_cannot_split() {
        let packs = vec![pack(0, 1, 16), pack(1, 1, 4)];
        let out = split_long_kv(packs.clone(), 16);
        assert_eq!(out, packs);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(split_long_kv(vec![], 16).is_empty());
    }
}
