//! Regenerates the committed analytical calibration table.
//!
//! ```text
//! cargo run --release -p replica-fidelity --bin calibrate          # rewrite calibration.json
//! cargo run --release -p replica-fidelity --bin calibrate -- --check   # fail if it would change
//! ```
//!
//! Generation is deterministic (fixed grid, fixed fit order, no entropy),
//! so `--check` is a byte-level drift ratchet: it fails exactly when a
//! kernel-simulator or cost-model change shifted the fit, forcing the new
//! coefficients through review like any other baseline change.

use replica_fidelity::calibration::{generate_table, COMMITTED_JSON};
use std::path::Path;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let regenerated = generate_table().to_canonical_json();
    if check {
        if regenerated == COMMITTED_JSON {
            println!(
                "calibration.json is up to date ({} bytes)",
                regenerated.len()
            );
            return;
        }
        eprintln!(
            "calibration.json drifted from regeneration.\n\
             If a kernel-simulator or cost change is intentional, rerun\n\
             `cargo run --release -p replica-fidelity --bin calibrate` and commit the diff."
        );
        std::process::exit(1);
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("calibration.json");
    match std::fs::write(&path, &regenerated) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), regenerated.len()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
