/root/repo/target/debug/deps/baselines-1c338f91d2db7917.d: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

/root/repo/target/debug/deps/libbaselines-1c338f91d2db7917.rlib: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

/root/repo/target/debug/deps/libbaselines-1c338f91d2db7917.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cascade.rs:
crates/baselines/src/common.rs:
crates/baselines/src/deft.rs:
crates/baselines/src/fasttree.rs:
crates/baselines/src/flash.rs:
crates/baselines/src/relay.rs:
