/root/repo/target/debug/deps/cluster-19c193d43d774f86.d: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/cluster-19c193d43d774f86: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/metrics.rs:
crates/cluster/src/router.rs:
crates/cluster/src/sim.rs:
