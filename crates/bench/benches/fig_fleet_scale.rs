//! Fleet-scale "day in the life" (extension): multi-fidelity replica models
//! at O(1k)-replica, million-request scale.
//!
//! Two cells share one generator — a three-tenant stream (toolagent and
//! conversation tenants on phase-shifted diurnal cycles, a batch tenant with
//! scripted bursts) over disjoint prefix pools:
//!
//! 1. **Validation** — a small fleet serves the identical stream under each
//!    [`Fidelity`] in turn. Replay must reproduce Exact bit for bit;
//!    Analytical must land fleet TTFT/TPOT within
//!    [`ANALYTICAL_REL_ERROR_BOUND`] of Exact while running at least 10x
//!    faster in wall-clock. These are the accuracy-vs-cost columns that
//!    justify trusting the scale cell.
//! 2. **Scale** — a 256-replica managed fleet (health checks, failover,
//!    SLO-aware autoscaling, admission control, KV migration over an RDMA
//!    transfer plane) serves over a million requests through a full diurnal
//!    cycle with six replica crashes, entirely on the Analytical model.
//!
//! Results land in `target/bench-results/fig_fleet_scale.json` and, for the
//! committed record, `BENCH_fleet_scale.json` at the repository root. The
//! simulation itself is seeded integer-ns virtual time, so everything except
//! the wall-clock columns is bit-stable across reruns and thread counts; CI
//! diffs the wall-clock-free projection `fig_fleet_scale_sim.json` across
//! `PAT_SIM_THREADS` settings.
//!
//! Set `PAT_BENCH_SMOKE=1` for a scaled-down pass (a few replicas, seconds
//! of trace) that exercises both cells without the full workload; smoke mode
//! never touches the committed JSON and skips the speedup/volume assertions
//! (tiny runs are dominated by fixed costs).

use cluster::{Cluster, ClusterConfig, LeastOutstanding, RoundRobin};
use controller::{
    window_stats, AdmissionConfig, AutoscalerConfig, ControllerConfig, FaultEvent, FaultKind,
    FaultPlan, FleetController, TransferConfig,
};
use kv_transfer::{FleetTopology, LinkSpec};
use pat_bench::{banner, save_json};
use pat_core::LazyPat;
use rand::SeedableRng;
use replica_fidelity::{Fidelity, ANALYTICAL_REL_ERROR_BOUND};
use serde::Serialize;
use serving::{ModelSpec, ServingAttention, ServingConfig};
use std::time::Instant;
use workloads::{
    generate_multi_tenant_at, Burst, BurstyArrivals, DiurnalArrivals, MultiTenantTrace, TraceKind,
};

const SEED: u64 = 77;
const SLO_TTFT_MS: f64 = 500.0;
/// Analytical must beat Exact by at least this wall-clock factor on the
/// validation fleet (the whole point of dropping fidelity).
const MIN_ANALYTICAL_SPEEDUP: f64 = 10.0;

/// The shape of one day-in-the-life run: both cells' fleet sizes and
/// per-tenant mean rates.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    validation_replicas: usize,
    validation_duration_s: f64,
    /// Mean req/s of the (toolagent, conversation, batch) tenants.
    validation_rates: [f64; 3],
    scale_replicas: usize,
    scale_duration_s: f64,
    scale_rates: [f64; 3],
    /// The scale cell must offer at least this many requests.
    min_offered: usize,
}

/// The committed Fig.-class scenario behind `BENCH_fleet_scale.json`.
const FULL: Scenario = Scenario {
    validation_replicas: 8,
    validation_duration_s: 60.0,
    validation_rates: [10.0, 8.0, 4.0],
    scale_replicas: 256,
    scale_duration_s: 1000.0,
    scale_rates: [430.0, 340.0, 250.0],
    min_offered: 1_000_000,
};

/// A few seconds of trace through both cells — enough to smoke-test the
/// pipeline in CI, far too small for stable speedup or volume assertions.
const SMOKE: Scenario = Scenario {
    validation_replicas: 3,
    validation_duration_s: 8.0,
    validation_rates: [4.0, 3.0, 2.0],
    scale_replicas: 12,
    scale_duration_s: 12.0,
    scale_rates: [18.0, 14.0, 10.0],
    min_offered: 0,
};

/// One validation-cell row: accuracy and wall-clock cost of a fidelity.
#[derive(Debug, Clone, Serialize)]
struct FidelityRow {
    fidelity: String,
    wall_ms: f64,
    speedup_vs_exact: f64,
    completed: usize,
    mean_ttft_ms: f64,
    mean_tpot_ms: f64,
    p99_ttft_ms: f64,
    ttft_rel_err_vs_exact: f64,
    tpot_rel_err_vs_exact: f64,
}

/// The wall-clock-free projection of a [`FidelityRow`] — what CI diffs
/// across thread counts.
#[derive(Debug, Clone, Serialize)]
struct FidelitySimRow {
    fidelity: String,
    completed: usize,
    mean_ttft_ms: f64,
    mean_tpot_ms: f64,
    p99_ttft_ms: f64,
}

/// Goodput and TTFT over one window of the scale cell's day.
#[derive(Debug, Clone, Serialize)]
struct DayPhase {
    phase: String,
    from_s: f64,
    to_s: f64,
    offered: usize,
    completed: usize,
    goodput: f64,
    p99_ttft_ms: f64,
}

/// The scale cell's accounting, virtual-time metrics, and wall-clock cost.
#[derive(Debug, Clone, Serialize)]
struct ScaleCell {
    replicas: usize,
    peak_replicas: usize,
    offered: usize,
    completed: usize,
    shed: usize,
    lost: usize,
    unfinished: usize,
    goodput: f64,
    crashes: usize,
    failovers: usize,
    migrations: usize,
    prewarm_transfers: usize,
    scale_ups: usize,
    scale_downs: usize,
    fidelity_switches: usize,
    mean_ttft_ms: f64,
    mean_tpot_ms: f64,
    p99_ttft_ms: f64,
    phases: Vec<DayPhase>,
    wall_s: f64,
    offered_per_wall_s: f64,
}

#[derive(Debug, Clone, Serialize)]
struct FleetScaleReport {
    slo_ttft_ms: f64,
    analytical_rel_error_bound: f64,
    validation: Vec<FidelityRow>,
    scale: ScaleCell,
}

/// Everything CI can byte-compare across `PAT_SIM_THREADS`: the report
/// minus every wall-clock-derived column.
#[derive(Debug, Clone, Serialize)]
struct SimProjection {
    validation: Vec<FidelitySimRow>,
    scale_offered: usize,
    scale_completed: usize,
    scale_shed: usize,
    scale_lost: usize,
    scale_unfinished: usize,
    scale_goodput: f64,
    scale_mean_ttft_ms: f64,
    scale_p99_ttft_ms: f64,
    scale_phases: Vec<DayPhase>,
}

fn engine() -> ServingConfig {
    ServingConfig::single_gpu(ModelSpec::llama3_8b())
}

fn lazy_pat() -> Box<dyn ServingAttention> {
    Box::new(LazyPat::new())
}

/// Three tenants over one day: two phase-shifted diurnal cycles plus a
/// bursty batch tenant, merged into one arrival-ordered stream with
/// disjoint prefix pools.
fn day_trace(rates: [f64; 3], duration_s: f64, seed: u64) -> MultiTenantTrace {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let toolagent =
        DiurnalArrivals::new(rates[0], duration_s, 0.5).take_until(duration_s, &mut rng);
    let chat =
        DiurnalArrivals::new(rates[1], duration_s / 2.0, 0.4).take_until(duration_s, &mut rng);
    let batch = BurstyArrivals::new(
        rates[2],
        vec![
            Burst {
                start_s: 0.25 * duration_s,
                end_s: 0.30 * duration_s,
                multiplier: 2.5,
            },
            Burst {
                start_s: 0.70 * duration_s,
                end_s: 0.74 * duration_s,
                multiplier: 3.0,
            },
        ],
    )
    .take_until(duration_s, &mut rng);
    generate_multi_tenant_at(
        &[
            (TraceKind::ToolAgent, toolagent),
            (TraceKind::Conversation, chat),
            (TraceKind::QwenB, batch),
        ],
        seed,
    )
}

/// Relative error of `got` against `want` (zero reference: exact match
/// only).
fn rel_err(got: f64, want: f64) -> f64 {
    if want == 0.0 {
        if got == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (got - want).abs() / want
    }
}

/// Six crashes spread across the day, hitting scattered replicas; each
/// victim restarts (cold) after a tenth of the day, capped at 30 s.
fn day_faults(sc: &Scenario) -> FaultPlan {
    let d = sc.scale_duration_s;
    let restart = (d / 10.0).min(30.0);
    FaultPlan::scripted(
        (0..6)
            .map(|i| FaultEvent {
                at_s: d * (0.08 + 0.14 * i as f64),
                kind: FaultKind::Crash {
                    replica: (i * 37 + 5) % sc.scale_replicas,
                    restart_after_s: Some(restart),
                },
            })
            .collect(),
    )
}

fn scale_config(sc: &Scenario) -> ControllerConfig {
    let mut config = ControllerConfig::managed(sc.scale_replicas, engine());
    config.fidelity = Fidelity::Analytical;
    config.slo_ttft_ms = SLO_TTFT_MS;
    let mut autoscaler =
        AutoscalerConfig::new(sc.scale_replicas, sc.scale_replicas + sc.scale_replicas / 8);
    autoscaler.scale_up_outstanding = 24.0;
    autoscaler.scale_down_outstanding = 2.0;
    autoscaler.provision_delay_s = (sc.scale_duration_s / 100.0).max(1.0);
    autoscaler.cooldown_s = (sc.scale_duration_s / 50.0).max(2.0);
    config.autoscaler = Some(autoscaler);
    config.admission = Some(AdmissionConfig {
        max_outstanding_per_replica: 64,
        max_queued: 8192,
    });
    config.transfer = Some(TransferConfig::migration(FleetTopology::uniform(
        sc.scale_replicas,
        LinkSpec::rdma_200g(),
    )));
    config
}

fn main() {
    let smoke = sim_core::knobs::flag("PAT_BENCH_SMOKE");
    let sc = if smoke { SMOKE } else { FULL };

    // ---- Cell 1: validation — the same stream under each fidelity. ------
    let trace = day_trace(sc.validation_rates, sc.validation_duration_s, SEED);
    banner(&format!(
        "Fleet scale{} — validation: {} requests over {:.0} s on {} replicas, \
         Exact vs Replay vs Analytical",
        if smoke { " (smoke)" } else { "" },
        trace.requests.len(),
        sc.validation_duration_s,
        sc.validation_replicas,
    ));

    let run_at = |fidelity: Fidelity| {
        let config = ClusterConfig::new(sc.validation_replicas, engine());
        let t0 = Instant::now();
        let result =
            Cluster::with_fidelity(&config, Box::new(RoundRobin::new()), fidelity, lazy_pat)
                .run(&trace.requests);
        (result, t0.elapsed().as_secs_f64() * 1e3)
    };
    let (exact, exact_ms) = run_at(Fidelity::Exact);
    let (replay, replay_ms) = run_at(Fidelity::Replay);
    let (analytical, analytical_ms) = run_at(Fidelity::Analytical);

    // Replay is a cache, not a model: it must reproduce Exact bit for bit.
    for (e, r) in exact.per_replica.iter().zip(&replay.per_replica) {
        assert_eq!(
            e.result.per_request, r.result.per_request,
            "replay diverged from exact"
        );
    }

    let mut validation = Vec::new();
    for (fidelity, result, wall_ms) in [
        (Fidelity::Exact, &exact, exact_ms),
        (Fidelity::Replay, &replay, replay_ms),
        (Fidelity::Analytical, &analytical, analytical_ms),
    ] {
        validation.push(FidelityRow {
            fidelity: format!("{fidelity:?}"),
            wall_ms,
            speedup_vs_exact: exact_ms / wall_ms,
            completed: result.fleet.completed,
            mean_ttft_ms: result.fleet.mean_ttft_ms,
            mean_tpot_ms: result.fleet.mean_tpot_ms,
            p99_ttft_ms: result.fleet.p99_ttft_ms,
            ttft_rel_err_vs_exact: rel_err(result.fleet.mean_ttft_ms, exact.fleet.mean_ttft_ms),
            tpot_rel_err_vs_exact: rel_err(result.fleet.mean_tpot_ms, exact.fleet.mean_tpot_ms),
        });
    }

    println!(
        "{:<11} {:>9} {:>8} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "fidelity",
        "wall(ms)",
        "speedup",
        "done",
        "TTFT(ms)",
        "TPOT(ms)",
        "P99(ms)",
        "errTTFT",
        "errTPOT"
    );
    for row in &validation {
        println!(
            "{:<11} {:>9.1} {:>7.1}x {:>9} {:>10.2} {:>10.3} {:>10.1} {:>8.1}% {:>8.1}%",
            row.fidelity,
            row.wall_ms,
            row.speedup_vs_exact,
            row.completed,
            row.mean_ttft_ms,
            row.mean_tpot_ms,
            row.p99_ttft_ms,
            100.0 * row.ttft_rel_err_vs_exact,
            100.0 * row.tpot_rel_err_vs_exact,
        );
    }

    let analytical_row = &validation[2];
    assert!(
        analytical_row.ttft_rel_err_vs_exact <= ANALYTICAL_REL_ERROR_BOUND
            && analytical_row.tpot_rel_err_vs_exact <= ANALYTICAL_REL_ERROR_BOUND,
        "analytical drifted past its documented bound ({:.3}/{:.3} > {ANALYTICAL_REL_ERROR_BOUND})",
        analytical_row.ttft_rel_err_vs_exact,
        analytical_row.tpot_rel_err_vs_exact,
    );
    assert!(
        smoke || analytical_row.speedup_vs_exact >= MIN_ANALYTICAL_SPEEDUP,
        "analytical no longer pays for itself: {:.1}x < {MIN_ANALYTICAL_SPEEDUP}x",
        analytical_row.speedup_vs_exact,
    );

    // ---- Cell 2: scale — a managed analytical fleet through a full day. --
    let day = day_trace(sc.scale_rates, sc.scale_duration_s, SEED ^ 0xD1E5E);
    banner(&format!(
        "scale: {} requests over {:.0} s on {} analytical replicas \
         (autoscaler, admission, migration, 6 crashes)",
        day.requests.len(),
        sc.scale_duration_s,
        sc.scale_replicas,
    ));
    assert!(
        day.requests.len() >= sc.min_offered,
        "scale cell offered {} requests, below the {} floor",
        day.requests.len(),
        sc.min_offered,
    );

    let router = Box::new(LeastOutstanding::new());
    let t0 = Instant::now();
    let result = FleetController::with_lazy_pat(scale_config(&sc), router, day_faults(&sc))
        .run(&day.requests);
    let wall_s = t0.elapsed().as_secs_f64();

    // Conservation: every offered request lands in exactly one bucket.
    assert_eq!(
        result.offered,
        result.completed + result.shed + result.lost + result.unfinished,
        "request accounting does not balance at scale"
    );

    let quarters = [
        ("night", 0.00, 0.25),
        ("morning", 0.25, 0.50),
        ("peak", 0.50, 0.75),
        ("evening", 0.75, 1.00),
    ];
    let phases: Vec<DayPhase> = quarters
        .iter()
        .map(|&(phase, a, b)| {
            let (from_s, to_s) = (a * sc.scale_duration_s, b * sc.scale_duration_s);
            let w = window_stats(&day.requests, &result, from_s, to_s);
            DayPhase {
                phase: phase.to_string(),
                from_s,
                to_s,
                offered: w.offered,
                completed: w.completed,
                goodput: w.goodput,
                p99_ttft_ms: w.p99_ttft_ms,
            }
        })
        .collect();

    let scale = ScaleCell {
        replicas: sc.scale_replicas,
        peak_replicas: result.peak_replicas,
        offered: result.offered,
        completed: result.completed,
        shed: result.shed,
        lost: result.lost,
        unfinished: result.unfinished,
        goodput: result.goodput,
        crashes: result.crashes,
        failovers: result.failovers,
        migrations: result.migrations,
        prewarm_transfers: result.prewarm_transfers,
        scale_ups: result.scale_ups,
        scale_downs: result.scale_downs,
        fidelity_switches: result.fidelity_switches,
        mean_ttft_ms: result.fleet.mean_ttft_ms,
        mean_tpot_ms: result.fleet.mean_tpot_ms,
        p99_ttft_ms: result.fleet.p99_ttft_ms,
        phases,
        wall_s,
        offered_per_wall_s: result.offered as f64 / wall_s,
    };

    println!(
        "offered {} | completed {} shed {} lost {} unfinished {} | goodput {:.1}%",
        scale.offered,
        scale.completed,
        scale.shed,
        scale.lost,
        scale.unfinished,
        100.0 * scale.goodput,
    );
    println!(
        "crashes {} failovers {} migrations {} | scale-ups {} downs {} peak {} replicas",
        scale.crashes,
        scale.failovers,
        scale.migrations,
        scale.scale_ups,
        scale.scale_downs,
        scale.peak_replicas,
    );
    println!(
        "{:<9} {:>9} {:>9} {:>9} {:>12}",
        "phase", "offered", "done", "goodput", "P99 TTFT(ms)"
    );
    for p in &scale.phases {
        println!(
            "{:<9} {:>9} {:>9} {:>8.1}% {:>12.0}",
            p.phase,
            p.offered,
            p.completed,
            100.0 * p.goodput,
            p.p99_ttft_ms,
        );
    }
    println!(
        "wall {:.1} s — {:.0} offered requests per wall-second",
        scale.wall_s, scale.offered_per_wall_s,
    );

    let projection = SimProjection {
        validation: validation
            .iter()
            .map(|r| FidelitySimRow {
                fidelity: r.fidelity.clone(),
                completed: r.completed,
                mean_ttft_ms: r.mean_ttft_ms,
                mean_tpot_ms: r.mean_tpot_ms,
                p99_ttft_ms: r.p99_ttft_ms,
            })
            .collect(),
        scale_offered: scale.offered,
        scale_completed: scale.completed,
        scale_shed: scale.shed,
        scale_lost: scale.lost,
        scale_unfinished: scale.unfinished,
        scale_goodput: scale.goodput,
        scale_mean_ttft_ms: scale.mean_ttft_ms,
        scale_p99_ttft_ms: scale.p99_ttft_ms,
        scale_phases: scale.phases.clone(),
    };
    save_json("fig_fleet_scale_sim", &projection).expect("persist bench results");

    let report = FleetScaleReport {
        slo_ttft_ms: SLO_TTFT_MS,
        analytical_rel_error_bound: ANALYTICAL_REL_ERROR_BOUND,
        validation,
        scale,
    };
    save_json("fig_fleet_scale", &report).expect("persist bench results");
    if smoke {
        println!("smoke run complete; committed BENCH_fleet_scale.json left untouched");
        return;
    }
    // The committed copy keeps its wall-clock columns as a historical record
    // of one machine's run; only the `_sim` projection is byte-stable.
    let root_copy =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet_scale.json");
    std::fs::write(
        &root_copy,
        pat_bench::artifact_json(&report).expect("serializable"),
    )
    .expect("write BENCH_fleet_scale.json");
    println!("wrote {}", root_copy.display());
}
