//! SGLang-style radix-tree prefix cache (§3.1's other prefix-reuse design).
//!
//! Where [`CacheManager`](crate::CacheManager) identifies shareable blocks by
//! content chain-hashing (vLLM), a radix cache organizes cached prefixes as a
//! token-trie with block-aligned edges: lookups walk the trie, reusing the
//! longest cached prefix, and eviction removes least-recently-used leaves
//! (never a node with cached descendants — exactly SGLang's policy). Both
//! designs reduce memory footprint, and *neither* reduces the attention
//! kernel's global-memory traffic — the paper's motivating observation.
//!
//! The trie lives in an index arena (`Vec<Node>` with child indexes), with
//! freed slots recycled through a free list.

use crate::{AllocError, BlockAllocator, BlockId, BlockTable, Token};

#[derive(Debug)]
struct Node {
    /// Edge label from the parent (block-aligned, non-empty).
    tokens: Vec<Token>,
    /// Physical blocks storing the edge.
    blocks: Vec<BlockId>,
    children: Vec<usize>,
    parent: Option<usize>,
    last_use: u64,
    /// Slot recycled (node logically absent).
    dead: bool,
}

/// Statistics of the radix cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RadixStats {
    /// Tokens served from cached prefixes.
    pub hit_tokens: u64,
    /// Tokens newly inserted.
    pub miss_tokens: u64,
    /// Blocks evicted.
    pub evicted_blocks: u64,
}

impl RadixStats {
    /// Token-level hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_tokens + self.miss_tokens;
        if total == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / total as f64
        }
    }
}

/// A radix-tree prefix cache over a paged block pool.
///
/// # Examples
///
/// ```
/// use kv_cache::RadixCache;
///
/// let mut cache = RadixCache::new(256, 16);
/// let prompt: Vec<u32> = (0..64).collect();
/// let a = cache.insert_sequence(&prompt)?;
/// let b = cache.insert_sequence(&prompt)?;
/// assert_eq!(a.blocks(), b.blocks()); // longest-prefix reuse
/// # Ok::<(), kv_cache::AllocError>(())
/// ```
#[derive(Debug)]
pub struct RadixCache {
    allocator: BlockAllocator,
    block_size: usize,
    arena: Vec<Node>,
    roots: Vec<usize>,
    free_slots: Vec<usize>,
    stats: RadixStats,
    clock: u64,
}

impl RadixCache {
    /// Creates a cache over `capacity_blocks` blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(capacity_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        RadixCache {
            allocator: BlockAllocator::new(capacity_blocks),
            block_size,
            arena: Vec::new(),
            roots: Vec::new(),
            free_slots: Vec::new(),
            stats: RadixStats::default(),
            clock: 0,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> RadixStats {
        self.stats
    }

    /// The underlying allocator.
    pub fn allocator(&self) -> &BlockAllocator {
        &self.allocator
    }

    /// Read-only probe: length in tokens of the longest cached block-aligned
    /// prefix of `tokens`.
    ///
    /// Walks the trie exactly like [`RadixCache::insert_sequence`] but never
    /// splits edges and never bumps `last_use`, so repeated probes cannot
    /// change LRU eviction order. A partial block-aligned match inside an
    /// edge still counts toward the overlap (insertion would split there and
    /// reuse the matched half).
    pub fn longest_prefix_overlap(&self, tokens: &[Token]) -> usize {
        let bs = self.block_size;
        let full = tokens.len() / bs * bs;
        let mut consumed = 0usize;
        let mut cursor: Option<usize> = None;
        while consumed < full {
            let level: &[usize] = match cursor {
                None => &self.roots,
                Some(ix) => &self.arena[ix].children,
            };
            let probe = &tokens[consumed..full];
            let best = level
                .iter()
                .copied()
                .filter(|&c| !self.arena[c].dead)
                .map(|c| {
                    let common = self.arena[c]
                        .tokens
                        .iter()
                        .zip(probe.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    (c, common / bs * bs)
                })
                .max_by_key(|&(_, cp)| cp);
            let Some((ix, cp)) = best else { break };
            if cp == 0 {
                break;
            }
            consumed += cp;
            if cp < self.arena[ix].tokens.len() {
                // Matched a strict prefix of this edge: descending further
                // would require a split, which a read-only walk must not do —
                // and the remainder cannot match the edge's suffix anyway.
                break;
            }
            cursor = Some(ix);
        }
        consumed
    }

    /// Admits a sequence, reusing the longest cached block-aligned prefix and
    /// inserting the remainder as a new trie edge. The returned table's
    /// blocks are retained for the caller (release with
    /// [`RadixCache::free_sequence`]).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfBlocks`] when allocation fails even after
    /// evicting all unreferenced leaves.
    pub fn insert_sequence(&mut self, tokens: &[Token]) -> Result<BlockTable, AllocError> {
        self.clock += 1;
        let bs = self.block_size;
        let full = tokens.len() / bs * bs;

        // 1. Walk the trie over the block-aligned prefix, splitting edges on
        //    partial (block-aligned) matches as a radix tree does.
        let mut table_blocks: Vec<BlockId> = Vec::new();
        let mut consumed = 0usize;
        let mut cursor: Option<usize> = None; // node whose children we search
        while consumed < full {
            let level: &[usize] = match cursor {
                None => &self.roots,
                Some(ix) => &self.arena[ix].children,
            };
            // Longest block-aligned common prefix against each child edge.
            let probe = &tokens[consumed..full];
            let best = level
                .iter()
                .copied()
                .filter(|&c| !self.arena[c].dead)
                .map(|c| {
                    let common = self.arena[c]
                        .tokens
                        .iter()
                        .zip(probe.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    (c, common / bs * bs)
                })
                .max_by_key(|&(_, cp)| cp);
            let Some((ix, cp)) = best else { break };
            if cp == 0 {
                break;
            }
            if cp < self.arena[ix].tokens.len() {
                self.split_edge(ix, cp);
            }
            let clock = self.clock;
            let node = &mut self.arena[ix];
            node.last_use = clock;
            let edge_len = node.tokens.len();
            debug_assert_eq!(edge_len, cp);
            let blocks = node.blocks.clone();
            for &b in &blocks {
                self.allocator.retain(b)?;
                table_blocks.push(b);
            }
            self.stats.hit_tokens += edge_len as u64;
            consumed += edge_len;
            cursor = Some(ix);
        }

        // 2. Insert the remaining block-aligned tokens as one new edge.
        if consumed < full {
            let edge_tokens = tokens[consumed..full].to_vec();
            let nblocks = edge_tokens.len() / bs;
            let mut blocks = Vec::with_capacity(nblocks);
            for _ in 0..nblocks {
                blocks.push(self.allocate_with_eviction()?);
            }
            for &b in &blocks {
                // Cache holds one reference, the request another.
                self.allocator.retain(b)?;
                table_blocks.push(b);
            }
            self.stats.miss_tokens += edge_tokens.len() as u64;
            let node = Node {
                tokens: edge_tokens,
                blocks,
                children: Vec::new(),
                parent: cursor,
                last_use: self.clock,
                dead: false,
            };
            let slot = match self.free_slots.pop() {
                Some(slot) => {
                    self.arena[slot] = node;
                    slot
                }
                None => {
                    self.arena.push(node);
                    self.arena.len() - 1
                }
            };
            match cursor {
                None => self.roots.push(slot),
                Some(ix) => self.arena[ix].children.push(slot),
            }
        }

        // 3. The partial tail is always private.
        if full < tokens.len() {
            let b = self.allocate_with_eviction()?;
            table_blocks.push(b);
            self.stats.miss_tokens += (tokens.len() - full) as u64;
        }
        Ok(BlockTable::new(table_blocks, tokens.len(), bs))
    }

    /// Splits the edge of node `ix` at block-aligned offset `cp`: the node
    /// keeps the first `cp` tokens, and a new child inherits the suffix and
    /// the original children.
    fn split_edge(&mut self, ix: usize, cp: usize) {
        let bs = self.block_size;
        debug_assert!(cp.is_multiple_of(bs) && cp > 0 && cp < self.arena[ix].tokens.len());
        let suffix_tokens = self.arena[ix].tokens.split_off(cp);
        let suffix_blocks = self.arena[ix].blocks.split_off(cp / bs);
        let old_children = std::mem::take(&mut self.arena[ix].children);
        let node = Node {
            tokens: suffix_tokens,
            blocks: suffix_blocks,
            children: old_children,
            parent: Some(ix),
            last_use: self.arena[ix].last_use,
            dead: false,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.arena[slot] = node;
                slot
            }
            None => {
                self.arena.push(node);
                self.arena.len() - 1
            }
        };
        // Re-parent the moved children.
        let moved: Vec<usize> = self.arena[slot].children.clone();
        for c in moved {
            self.arena[c].parent = Some(slot);
        }
        self.arena[ix].children.push(slot);
    }

    /// Releases a departing request's references.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] on double free (a caller bug).
    pub fn free_sequence(&mut self, table: &BlockTable) -> Result<(), AllocError> {
        for &b in table.blocks() {
            self.allocator.release(b)?;
        }
        Ok(())
    }

    fn allocate_with_eviction(&mut self) -> Result<BlockId, AllocError> {
        loop {
            match self.allocator.allocate() {
                Ok(b) => return Ok(b),
                Err(AllocError::OutOfBlocks) => {
                    if !self.evict_one_leaf() {
                        return Err(AllocError::OutOfBlocks);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Evicts the least-recently-used *leaf* whose blocks only the cache
    /// references (SGLang's policy: internal nodes stay while descendants
    /// live).
    fn evict_one_leaf(&mut self) -> bool {
        let victim = self
            .arena
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.dead
                    && n.children.is_empty()
                    && n.blocks.iter().all(|&b| self.allocator.refcount(b) == 1)
            })
            .min_by_key(|(_, n)| n.last_use)
            .map(|(i, _)| i);
        let Some(ix) = victim else { return false };
        let parent = self.arena[ix].parent;
        let blocks = std::mem::take(&mut self.arena[ix].blocks);
        self.arena[ix].dead = true;
        self.arena[ix].tokens.clear();
        self.free_slots.push(ix);
        match parent {
            None => self.roots.retain(|&r| r != ix),
            Some(p) => self.arena[p].children.retain(|&c| c != ix),
        }
        for b in blocks {
            self.allocator.release(b).expect("cache-owned reference");
            self.stats.evicted_blocks += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_prefixes_share_blocks() {
        let mut cache = RadixCache::new(64, 16);
        let tokens: Vec<Token> = (0..48).collect();
        let a = cache.insert_sequence(&tokens).unwrap();
        let b = cache.insert_sequence(&tokens).unwrap();
        assert_eq!(a.blocks(), b.blocks());
        assert_eq!(cache.allocator().used_blocks(), 3);
        assert!(cache.stats().hit_rate() > 0.4);
    }

    #[test]
    fn diverging_suffixes_branch_the_trie() {
        let mut cache = RadixCache::new(64, 16);
        let mut a_tokens: Vec<Token> = (0..32).collect();
        let mut b_tokens = a_tokens.clone();
        a_tokens.extend(100..132);
        b_tokens.extend(200..232);
        let a = cache.insert_sequence(&a_tokens).unwrap();
        let b = cache.insert_sequence(&b_tokens).unwrap();
        assert_eq!(a.blocks()[..2], b.blocks()[..2], "shared 32-token prefix");
        assert_ne!(a.blocks()[2..], b.blocks()[2..]);
    }

    #[test]
    fn partial_tail_is_private() {
        let mut cache = RadixCache::new(64, 16);
        let tokens: Vec<Token> = (0..20).collect();
        let a = cache.insert_sequence(&tokens).unwrap();
        let b = cache.insert_sequence(&tokens).unwrap();
        assert_eq!(a.blocks()[0], b.blocks()[0]);
        assert_ne!(a.blocks()[1], b.blocks()[1]);
    }

    #[test]
    fn lru_leaf_eviction_frees_space() {
        let mut cache = RadixCache::new(4, 16);
        let a = cache.insert_sequence(&(0..32).collect::<Vec<_>>()).unwrap();
        cache.free_sequence(&a).unwrap();
        let b = cache
            .insert_sequence(&(100..164).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(b.blocks().len(), 4);
        assert!(cache.stats().evicted_blocks >= 2);
    }

    #[test]
    fn referenced_prefixes_are_never_evicted() {
        let mut cache = RadixCache::new(3, 16);
        let held = cache.insert_sequence(&(0..32).collect::<Vec<_>>()).unwrap();
        // Pool: 2 used (rc 2) + 1 free. Asking for 2 blocks must fail: the
        // held edge cannot be evicted.
        let err = cache
            .insert_sequence(&(100..132).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(err, AllocError::OutOfBlocks);
        drop(held);
    }

    #[test]
    fn internal_nodes_survive_while_children_live() {
        let mut cache = RadixCache::new(8, 16);
        // Parent edge [0..32), two children.
        let base: Vec<Token> = (0..32).collect();
        let mut a = base.clone();
        a.extend(100..116);
        let mut b = base.clone();
        b.extend(200..216);
        let ta = cache.insert_sequence(&a).unwrap();
        let tb = cache.insert_sequence(&b).unwrap();
        cache.free_sequence(&ta).unwrap();
        // Forcing evictions (8-block pool: 2 parent + 1 + 1 children used):
        // a new 4-block request must evict child edges, never the parent
        // while `tb` still references it... parent blocks have rc 2 (cache +
        // tb), so they are ineligible anyway; the freed child (rc 1) goes.
        let tc = cache
            .insert_sequence(&(300..364).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(tc.blocks().len(), 4);
        // tb's prefix is still intact and reusable.
        let tb2 = cache.insert_sequence(&b).unwrap();
        assert_eq!(tb2.blocks()[..2], tb.blocks()[..2]);
    }

    #[test]
    fn matches_hash_cache_sharing_on_a_trace() {
        // Both designs serve the same hit tokens on chain-structured
        // prompts (block-aligned sharing).
        let mut radix = RadixCache::new(4096, 16);
        let mut hash = crate::CacheManager::new(4096, 16);
        for i in 0..40u32 {
            let mut t: Vec<Token> = (0..64).collect();
            t.extend((0..64).map(|k| 1_000 + (i % 4) * 100 + k));
            t.extend((0..32).map(|k| 100_000 + i * 50 + k));
            let a = radix.insert_sequence(&t).unwrap();
            let b = hash.insert_sequence(&t).unwrap();
            assert_eq!(a.num_tokens(), b.num_tokens());
        }
        assert_eq!(radix.stats().hit_tokens, hash.stats().hit_tokens);
    }

    #[test]
    fn overlap_probe_matches_insertion_hits() {
        let mut cache = RadixCache::new(256, 16);
        let base: Vec<Token> = (0..64).collect();
        let t = cache.insert_sequence(&base).unwrap();
        // Exact prefix, mid-edge block-aligned prefix, and divergence.
        assert_eq!(cache.longest_prefix_overlap(&base), 64);
        assert_eq!(cache.longest_prefix_overlap(&base[..32]), 32);
        let mut diverging = base[..32].to_vec();
        diverging.extend(900..932);
        assert_eq!(cache.longest_prefix_overlap(&diverging), 32);
        assert_eq!(
            cache.longest_prefix_overlap(&(500..564).collect::<Vec<_>>()),
            0
        );
        // Partial final block never counts: sharing is block-aligned.
        assert_eq!(cache.longest_prefix_overlap(&base[..40]), 32);
        // The probe predicts exactly the hit tokens a real insert then sees.
        let before = cache.stats().hit_tokens;
        let td = cache.insert_sequence(&diverging).unwrap();
        assert_eq!(cache.stats().hit_tokens - before, 32);
        cache.free_sequence(&t).unwrap();
        cache.free_sequence(&td).unwrap();
    }

    #[test]
    fn overlap_probe_is_read_only() {
        let mut cache = RadixCache::new(256, 16);
        let tokens: Vec<Token> = (0..64).collect();
        let t = cache.insert_sequence(&tokens).unwrap();
        let arena_len = cache.arena.len();
        let recency: Vec<u64> = cache.arena.iter().map(|n| n.last_use).collect();
        let mut mid_edge = tokens[..32].to_vec();
        mid_edge.extend(700..732);
        for _ in 0..50 {
            cache.longest_prefix_overlap(&tokens);
            cache.longest_prefix_overlap(&mid_edge);
        }
        // No edges were split (the mid-edge probe would have) and no
        // recency was bumped.
        assert_eq!(cache.arena.len(), arena_len, "probe must not split edges");
        let after: Vec<u64> = cache.arena.iter().map(|n| n.last_use).collect();
        assert_eq!(after, recency, "probe must not touch LRU state");
        cache.free_sequence(&t).unwrap();
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut cache = RadixCache::new(2, 16);
        for i in 0..20u32 {
            let t: Vec<Token> = (i * 100..i * 100 + 32).collect();
            let table = cache.insert_sequence(&t).unwrap();
            cache.free_sequence(&table).unwrap();
        }
        // 20 distinct 2-block edges through a 2-block pool: every insert
        // evicts the previous edge and recycles its slot.
        assert!(
            cache.arena.len() <= 3,
            "arena grew to {}",
            cache.arena.len()
        );
        assert_eq!(cache.stats().evicted_blocks, 19 * 2);
    }
}
