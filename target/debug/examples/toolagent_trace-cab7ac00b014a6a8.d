/root/repo/target/debug/examples/toolagent_trace-cab7ac00b014a6a8.d: examples/toolagent_trace.rs

/root/repo/target/debug/examples/toolagent_trace-cab7ac00b014a6a8: examples/toolagent_trace.rs

examples/toolagent_trace.rs:
