/root/repo/target/release/deps/fig18_cluster_routing-35bb41d3be67c4ac.d: crates/bench/benches/fig18_cluster_routing.rs

/root/repo/target/release/deps/fig18_cluster_routing-35bb41d3be67c4ac: crates/bench/benches/fig18_cluster_routing.rs

crates/bench/benches/fig18_cluster_routing.rs:
