//! Minimal in-workspace stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: range and
//! `Just` strategies, tuples, `prop::collection::vec`, `.prop_map`, the
//! `proptest!` and `prop_compose!` macros, and `prop_assert!` /
//! `prop_assert_eq!`. Inputs are drawn deterministically (seeded from the
//! test name and case index) so failures reproduce; there is no shrinking —
//! the failing case index and message are reported instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with message `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic test RNG (xoshiro256++ seeded from test name + case).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a over the name.
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        seed = seed.wrapping_add(u64::from(case).wrapping_mul(0x9E3779B97F4A7C15));
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A closure as a strategy (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<F> fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnStrategy")
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy over `element` with length in `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest::prop` facade module.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs in one import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_compose, proptest, FnStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the harness can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Declares property tests. Each test body runs `config.cases` times with
/// inputs drawn from its strategies; `prop_assert!` failures report the
/// case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Composes named strategy functions from simpler strategies, in one or two
/// sampling stages (stage two may reference stage-one bindings).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($b1:pat in $s1:expr),+ $(,)?)
        ($($b2:pat in $s2:expr),+ $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $b1 = $crate::Strategy::sample(&($s1), rng);)+
                $(let $b2 = $crate::Strategy::sample(&($s2), rng);)+
                $body
            })
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($b1:pat in $s1:expr),+ $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $b1 = $crate::Strategy::sample(&($s1), rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    prop_compose! {
        fn pair()(a in 0usize..10, b in 0usize..10) -> (usize, usize) {
            (a, b)
        }
    }

    prop_compose! {
        fn sized_vec()(n in 1usize..8)(v in prop::collection::vec(0u32..100, n), n in Just(n)) -> (usize, Vec<u32>) {
            (n, v)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
        }

        #[test]
        fn composed_pairs_in_bounds((a, b) in pair()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a * 2, a + a);
        }

        #[test]
        fn two_stage_vec_len_matches((n, v) in sized_vec()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn mapped_tuples_work(s in (1usize..4, 10usize..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..24).contains(&s));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
