//! Serving metrics: TTFT, TPOT, completion latency (§8.2).

use serde::Serialize;

/// Per-request latency record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestMetrics {
    /// Id of the completed request (from [`workloads::Request::id`]).
    pub request_id: u64,
    /// Time to first token, ns.
    pub ttft_ns: f64,
    /// Mean time per output token after the first, ns (0 for single-token
    /// outputs).
    pub tpot_ns: f64,
    /// Total completion latency (arrival → last token), ns.
    pub completion_ns: f64,
    /// Output tokens produced.
    pub decode_tokens: usize,
}

/// Aggregates over completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct AggregateMetrics {
    /// Mean time to first token, ms.
    pub mean_ttft_ms: f64,
    /// Mean time per output token, ms.
    pub mean_tpot_ms: f64,
    /// 99th-percentile per-request TPOT, ms.
    pub p99_tpot_ms: f64,
    /// Mean request completion latency, ms.
    pub mean_completion_ms: f64,
    /// Number of completed requests.
    pub completed: usize,
}

impl AggregateMetrics {
    /// Aggregates a set of per-request records.
    pub fn from_requests(requests: &[RequestMetrics]) -> Self {
        if requests.is_empty() {
            return AggregateMetrics::default();
        }
        let n = requests.len() as f64;
        let mean = |f: fn(&RequestMetrics) -> f64| requests.iter().map(f).sum::<f64>() / n;
        let mut tpots: Vec<f64> = requests
            .iter()
            .filter(|r| r.decode_tokens > 1)
            .map(|r| r.tpot_ns)
            .collect();
        tpots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p99 = if tpots.is_empty() {
            0.0
        } else {
            tpots[((tpots.len() as f64 * 0.99).ceil() as usize - 1).min(tpots.len() - 1)]
        };
        let mean_tpot = if tpots.is_empty() {
            0.0
        } else {
            tpots.iter().sum::<f64>() / tpots.len() as f64
        };
        AggregateMetrics {
            mean_ttft_ms: mean(|r| r.ttft_ns) / 1e6,
            mean_tpot_ms: mean_tpot / 1e6,
            p99_tpot_ms: p99 / 1e6,
            mean_completion_ms: mean(|r| r.completion_ns) / 1e6,
            completed: requests.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(ttft: f64, tpot: f64, tokens: usize) -> RequestMetrics {
        RequestMetrics {
            request_id: 0,
            ttft_ns: ttft,
            tpot_ns: tpot,
            completion_ns: ttft + tpot * tokens as f64,
            decode_tokens: tokens,
        }
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let reqs = vec![rm(1e6, 2e6, 10), rm(3e6, 4e6, 10)];
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.mean_ttft_ms - 2.0).abs() < 1e-9);
        assert!((agg.mean_tpot_ms - 3.0).abs() < 1e-9);
        assert!((agg.p99_tpot_ms - 4.0).abs() < 1e-9);
        assert_eq!(agg.completed, 2);
    }

    #[test]
    fn p99_picks_the_tail() {
        let mut reqs: Vec<RequestMetrics> = (1..=100).map(|i| rm(0.0, i as f64 * 1e6, 5)).collect();
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.p99_tpot_ms - 99.0).abs() < 1e-9);
        reqs.truncate(10);
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.p99_tpot_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_token_requests_do_not_pollute_tpot() {
        let reqs = vec![rm(1e6, 0.0, 1), rm(1e6, 5e6, 10)];
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.mean_tpot_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_zeroes() {
        let agg = AggregateMetrics::from_requests(&[]);
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.mean_tpot_ms, 0.0);
    }
}
