//! The prefix-aware pack scheduler: `TreeHeuristic` (Algorithm 1, §5.1).
//!
//! Converts a decode batch's prefix forest into *packs* — groups of queries
//! attending over one KV run — choosing between Scheme 1 (split parent and
//! child into separate CTAs) and Scheme 2 (merge the parent's blocks into the
//! child's CTA) with the memory-centric profit model. Linear in the tree
//! size: each node and edge is visited once.

use crate::profit::should_merge_child;
use attn_kernel::DecodeBatch;
use kv_cache::{BlockId, PrefixForest, PrefixNode};

/// One pack: queries that attend over one KV block run in a single CTA
/// (before tile selection and long-KV splitting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pack {
    /// Batch query indices packed together.
    pub queries: Vec<usize>,
    /// The KV block run they attend over.
    pub blocks: Vec<BlockId>,
    /// Tokens covered by the run.
    pub tokens: usize,
    /// Index of `blocks[0]` within each member query's block table. Shared
    /// prefixes sit at identical indices for all sharers, so one offset
    /// suffices; the lazy-update mechanism uses it to refresh token counts
    /// without re-packing (§5.1).
    pub start: usize,
}

impl Pack {
    /// Recomputes `tokens` from the current block tables (blocks themselves
    /// are unchanged across decode steps until the table structure changes;
    /// only the final partial block grows).
    pub fn refresh_tokens(&mut self, tables: &[kv_cache::BlockTable]) {
        self.tokens = (0..self.blocks.len())
            .map(|i| {
                self.queries
                    .iter()
                    .map(|&q| tables[q].tokens_in_block(self.start + i))
                    .min()
                    .unwrap_or(0)
            })
            .sum();
    }
}

/// Packs a decode batch with the TreeHeuristic scheduler.
///
/// # Examples
///
/// ```
/// use attn_kernel::DecodeBatch;
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
/// use pat_core::pack_batch;
///
/// let head = HeadConfig::new(32, 8, 128);
/// let tables = vec![
///     BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
///     BlockTable::new(vec![BlockId(0), BlockId(2)], 32, 16),
/// ];
/// let batch = DecodeBatch::new(head, tables, 2);
/// let packs = pack_batch(&batch);
/// // The shared block 0 appears in exactly one pack.
/// let shared: Vec<_> = packs.iter().filter(|p| p.blocks.contains(&BlockId(0))).collect();
/// assert_eq!(shared.len(), 1);
/// assert_eq!(shared[0].queries.len(), 2);
/// ```
pub fn pack_batch(batch: &DecodeBatch) -> Vec<Pack> {
    pack_forest(&batch.forest())
}

/// Packs a prefix forest directly (the batch-independent core of Alg. 1).
pub fn pack_forest(forest: &PrefixForest) -> Vec<Pack> {
    let mut packs = Vec::new();
    for root in forest.roots() {
        tree_heuristic(root, &[], 0, 0, &mut packs);
    }
    packs
}

/// Algorithm 1. `inherited` carries the parent's blocks when Scheme 2 merged
/// them downward (with their KV length `inherited_tokens`); `node_depth` is
/// the block-table index where `node.blocks` begins.
fn tree_heuristic(
    node: &PrefixNode,
    inherited: &[BlockId],
    inherited_tokens: usize,
    node_depth: usize,
    packs: &mut Vec<Pack>,
) {
    let mut blocks: Vec<BlockId> = inherited.to_vec();
    blocks.extend_from_slice(&node.blocks);
    let tokens = inherited_tokens + node.token_len;
    let start = node_depth - inherited.len();
    let child_depth = node_depth + node.blocks.len();

    if node.is_leaf() {
        // Pack the query's (inherited +) non-shared KV into one CTA; a query
        // whose KV is fully covered by ancestors contributes no CTA.
        if tokens > 0 {
            packs.push(Pack {
                queries: node.queries.clone(),
                blocks,
                tokens,
                start,
            });
        }
        return;
    }

    let mut remaining: Vec<usize> = node.queries.clone();
    for child in &node.children {
        if should_merge_child(child.num_queries(), tokens) {
            // Scheme 2: merge this node's blocks into the child's CTAs,
            // removing the child's queries from this node's pack.
            tree_heuristic(child, &blocks, tokens, child_depth, packs);
            remaining.retain(|q| !child.queries.contains(q));
        } else {
            // Scheme 1: the child's subtree packs only its own blocks; its
            // queries stay in this node's pack for the shared run.
            tree_heuristic(child, &[], 0, child_depth, packs);
        }
    }
    if !remaining.is_empty() && tokens > 0 {
        packs.push(Pack {
            queries: remaining,
            blocks,
            tokens,
            start,
        });
    }
}

/// Splits packs whose query-row count (`queries × group size`) exceeds the
/// largest feasible Q tile, duplicating the KV run per chunk (§5.2's m
/// round-up rule presumes packs fit one CTA).
pub fn enforce_row_limit(packs: Vec<Pack>, group_size: usize, max_m: usize) -> Vec<Pack> {
    assert!(
        group_size > 0 && max_m >= group_size,
        "max_m must hold one query's rows"
    );
    let per_cta = max_m / group_size;
    let mut out = Vec::with_capacity(packs.len());
    for pack in packs {
        if pack.queries.len() <= per_cta {
            out.push(pack);
        } else {
            for chunk in pack.queries.chunks(per_cta) {
                out.push(Pack {
                    queries: chunk.to_vec(),
                    blocks: pack.blocks.clone(),
                    tokens: pack.tokens,
                    start: pack.start,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_math::HeadConfig;
    use kv_cache::BlockTable;
    use std::collections::BTreeMap;

    fn table(ids: &[u32], tokens: usize) -> BlockTable {
        BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
    }

    fn batch(tables: Vec<BlockTable>) -> DecodeBatch {
        DecodeBatch::new(HeadConfig::new(32, 8, 128), tables, 2)
    }

    /// Coverage check: each query's packs must cover exactly its block table.
    fn assert_exact_coverage(batch: &DecodeBatch, packs: &[Pack]) {
        for (q, t) in batch.tables().iter().enumerate() {
            let mut covered: BTreeMap<BlockId, usize> = BTreeMap::new();
            let mut tokens = 0;
            for p in packs.iter().filter(|p| p.queries.contains(&q)) {
                for &b in &p.blocks {
                    *covered.entry(b).or_insert(0) += 1;
                }
                tokens += p.tokens;
            }
            assert_eq!(tokens, t.num_tokens(), "query {q} token coverage");
            let mut want: BTreeMap<BlockId, usize> = BTreeMap::new();
            for &b in t.blocks() {
                *want.entry(b).or_insert(0) += 1;
            }
            assert_eq!(covered, want, "query {q} block coverage");
        }
    }

    #[test]
    fn long_shared_prefix_is_packed_once() {
        // 64 queries sharing 128 blocks (2048 tokens), private 8-block tails:
        // 4*s_i = 4 < 2048, so every leaf splits; one big shared CTA.
        let tables: Vec<BlockTable> = (0..64)
            .map(|q| {
                let mut ids: Vec<u32> = (0..128).collect();
                ids.extend(10_000 + q * 16..10_000 + q * 16 + 8);
                table(&ids, 136 * 16)
            })
            .collect();
        let b = batch(tables);
        let packs = pack_batch(&b);
        assert_exact_coverage(&b, &packs);
        let shared: Vec<&Pack> = packs.iter().filter(|p| p.queries.len() > 1).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].queries.len(), 64);
        assert_eq!(shared[0].tokens, 2048);
        assert_eq!(packs.len(), 65);
    }

    #[test]
    fn short_shared_prefix_merges_into_children() {
        // 2 queries sharing ONE 16-token block: 4*1 = 4 < 16 for each leaf
        // (split)... but with larger child query counts merging wins. Use a
        // two-level tree: root 1 block shared by 16, two children of 8
        // queries sharing 4 blocks each: for each child 4*8 = 32 > 16 ->
        // merge root into children.
        let tables: Vec<BlockTable> = (0..16)
            .map(|q| {
                let mut ids: Vec<u32> = vec![0];
                let side = q / 8;
                ids.extend(100 + side * 10..100 + side * 10 + 4);
                ids.push(1000 + q);
                table(&ids, 6 * 16)
            })
            .collect();
        let b = batch(tables);
        let packs = pack_batch(&b);
        assert_exact_coverage(&b, &packs);
        // Root merged into both children: no pack holds ONLY block 0, and
        // two packs hold root + child-level blocks (5 blocks, 8 queries).
        assert!(packs.iter().all(|p| p.blocks != vec![BlockId(0)]));
        let merged: Vec<&Pack> = packs
            .iter()
            .filter(|p| p.blocks.len() == 5 && p.queries.len() == 8)
            .collect();
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn no_sharing_degenerates_to_one_query_per_cta() {
        let tables: Vec<BlockTable> = (0..8).map(|q| table(&[q * 100, q * 100 + 1], 32)).collect();
        let b = batch(tables);
        let packs = pack_batch(&b);
        assert_exact_coverage(&b, &packs);
        assert_eq!(packs.len(), 8);
        assert!(packs.iter().all(|p| p.queries.len() == 1));
    }

    #[test]
    fn multi_level_tree_coverage_is_exact() {
        // Three levels: 16 queries share [0..8); halves share 8 more blocks;
        // quarters share 4 more; private tails.
        let tables: Vec<BlockTable> = (0..16u32)
            .map(|q| {
                let mut ids: Vec<u32> = (0..8).collect();
                let half = q / 8;
                ids.extend(100 + half * 50..100 + half * 50 + 8);
                let quarter = q / 4;
                ids.extend(300 + quarter * 50..300 + quarter * 50 + 4);
                ids.extend(1000 + q * 10..1000 + q * 10 + 2);
                table(&ids, 22 * 16)
            })
            .collect();
        let b = batch(tables);
        let packs = pack_batch(&b);
        assert_exact_coverage(&b, &packs);
        // The 128-token root: 4*8 = 32 < 128 for halves -> split at root.
        assert!(packs
            .iter()
            .any(|p| p.queries.len() == 16 && p.tokens == 128));
    }

    #[test]
    fn pack_starts_index_into_block_tables() {
        let tables: Vec<BlockTable> = (0..4).map(|q| table(&[0, 1, 2, 3, 100 + q], 76)).collect();
        let b = batch(tables);
        let packs = pack_batch(&b);
        for p in &packs {
            for &q in &p.queries {
                for (i, &blk) in p.blocks.iter().enumerate() {
                    assert_eq!(
                        b.tables()[q].blocks()[p.start + i],
                        blk,
                        "pack start offset"
                    );
                }
            }
        }
        // Refreshing tokens against the same tables is a no-op.
        let mut refreshed = packs.clone();
        for p in &mut refreshed {
            p.refresh_tokens(b.tables());
        }
        assert_eq!(refreshed, packs);
    }

    #[test]
    fn row_limit_duplicates_kv_for_oversized_packs() {
        let pack = Pack {
            queries: (0..40).collect(),
            blocks: vec![BlockId(0)],
            tokens: 16,
            start: 0,
        };
        let out = enforce_row_limit(vec![pack], 4, 128); // 32 queries per CTA
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].queries.len(), 32);
        assert_eq!(out[1].queries.len(), 8);
        assert!(out.iter().all(|p| p.blocks == vec![BlockId(0)]));
    }

    /// R2 regression: packing the same batch repeatedly must yield the
    /// identical pack list — the TreeHeuristic's CTA layout (and therefore
    /// every downstream timing number) may not depend on any iteration
    /// order.
    #[test]
    fn packing_is_deterministic_across_runs() {
        let make = || {
            let tables: Vec<BlockTable> = (0..16u32)
                .map(|q| {
                    let mut ids: Vec<u32> = (0..8).collect();
                    ids.extend(100 + (q / 4) * 50..100 + (q / 4) * 50 + 4);
                    ids.extend(1000 + q * 10..1000 + q * 10 + 2);
                    table(&ids, 14 * 16)
                })
                .collect();
            batch(tables)
        };
        let first = pack_batch(&make());
        for _ in 0..3 {
            assert_eq!(pack_batch(&make()), first, "packs must be identical");
        }
    }

    #[test]
    fn zero_length_leaves_produce_no_packs() {
        // Query 1's KV is a strict prefix of query 0's: its leaf is empty.
        let tables = vec![table(&[0, 1, 2], 48), table(&[0, 1], 32)];
        let b = batch(tables);
        let packs = pack_batch(&b);
        assert_exact_coverage(&b, &packs);
        assert!(packs.iter().all(|p| p.tokens > 0));
    }
}
