//! Tile autotuning across the parameterized hardware family.
//!
//! Three views of the same question — *does the offline tile tuner earn its
//! keep once PAT leaves the A100 the heuristic tree was profiled on?*
//!
//! 1. **Policy head-to-head**: PAT with the heuristic decision tree vs PAT
//!    with the committed autotuned cache (`tile_cache.json`), per
//!    (hardware model, workload) cell. The tuner is heuristic-anchored — it
//!    only departs from the tree on a strict >1% simulated win — so
//!    autotuned must never lose a cell, and on A100 the two are identical.
//! 2. **Baseline margin portability**: PAT (autotuned) vs FlashAttention on
//!    every hardware model. Baselines degrade their tiles per device like
//!    the real kernels do (`baselines::supported_tile`), so this is a fair
//!    fight on each device — and the win margin visibly shifts with the
//!    hardware (constraint geometry, not just the A100's).
//! 3. **Tile-shape sensitivity**: the §5.2 kernel-equivalence sweep run on
//!    every model — how much latency swings across the feasible tile set,
//!    i.e. how much a wrong fixed tile would cost on each device.
//!
//! Set `PAT_BENCH_SMOKE=1` for a scaled-down pass (two hardware models,
//! smaller sweep batch) used by CI to diff determinism across
//! `PAT_SIM_THREADS` settings.

use attn_kernel::{simulate_plan, AttentionBackend, DecodeBatch};
use attn_math::HeadConfig;
use baselines::FlashAttention;
use kv_cache::{BlockId, BlockTable};
use pat_bench::{banner, kernel_equivalence, save_json, EquivalenceRow};
use pat_core::{PatBackend, PatConfig, TilePolicyKind};
use serde::Serialize;
use sim_gpu::GpuModel;

/// One (hardware, workload) comparison cell.
#[derive(Debug, Clone, Serialize)]
struct PolicyCell {
    gpu: String,
    workload: String,
    heuristic_us: f64,
    autotuned_us: f64,
    flash_attention_us: f64,
    /// FlashAttention latency over autotuned-PAT latency (higher = bigger
    /// PAT win).
    pat_speedup_vs_fa: f64,
}

/// Per-hardware tile-shape sensitivity summary.
#[derive(Debug, Clone, Serialize)]
struct SensitivityRow {
    gpu: String,
    feasible_tiles: usize,
    /// Slowest feasible tile's latency over the fastest's.
    latency_spread: f64,
    sweep: Vec<EquivalenceRow>,
}

#[derive(Serialize)]
struct Results {
    cells: Vec<PolicyCell>,
    sensitivity: Vec<SensitivityRow>,
}

/// A parallel-sampling decode batch: `groups` request groups, each `fanout`
/// sibling queries decoding from one fully shared context (block size 16).
/// Group contexts span `kv_lo..=kv_hi` tokens on a deterministic linear
/// ramp, mirroring how the tuner's workload-signature buckets mix KV
/// lengths; PAT packs each group into one CTA of `fanout x group_size`
/// rows — the pack shape those buckets are fitted on.
fn workload(groups: usize, fanout: usize, kv_lo: usize, kv_hi: usize) -> DecodeBatch {
    let bs = 16;
    let tables: Vec<BlockTable> = (0..groups as u32)
        .flat_map(|grp| {
            let kv = kv_lo + grp as usize * (kv_hi - kv_lo) / (groups - 1).max(1);
            let ids: Vec<BlockId> = (0..kv.div_ceil(bs) as u32)
                .map(|i| BlockId(grp * 10_000 + i))
                .collect();
            (0..fanout).map(move |_| BlockTable::new(ids.clone(), kv, bs))
        })
        .collect();
    DecodeBatch::new(HeadConfig::new(32, 8, 128), tables, 2)
}

fn pat(policy: TilePolicyKind) -> PatBackend {
    PatBackend::with_config(PatConfig {
        tile_policy: policy,
        ..PatConfig::default()
    })
}

fn main() {
    let smoke = sim_core::knobs::flag("PAT_BENCH_SMOKE");
    // The smoke subset keeps the A100 anchor plus B200 — the device whose
    // constraint geometry departs furthest, so both the win-a-cell and the
    // margin-shift assertions stay meaningful.
    let models: Vec<GpuModel> = if smoke {
        vec![GpuModel::A100, GpuModel::B200]
    } else {
        GpuModel::all().to_vec()
    };
    // (label, groups, fanout, KV range): spans the selector's row classes
    // (fanout x 4 GQA rows) and its KV-signature buckets, each cell mixing
    // context lengths across one bucket. All cells oversubscribe every
    // device (>=192 CTAs) — the saturated-decode regime the tuner's
    // workload signature is fitted in; underfilled batches are
    // tile-insensitive (no bandwidth contention).
    let workloads: [(&str, usize, usize, usize, usize); 4] = [
        ("192 groups x4, KV 96-191", 192, 4, 96, 191),
        ("192 groups x4, KV 192-767", 192, 4, 192, 767),
        ("192 groups x8, KV 192-767", 192, 8, 192, 767),
        ("192 groups x4, KV 768-4096", 192, 4, 768, 4096),
    ];

    banner("Tile policy head-to-head: heuristic vs autotuned PAT, vs FlashAttention");
    println!(
        "{:<16} {:<22} {:>12} {:>12} {:>10} {:>8}",
        "gpu", "workload", "heuristic us", "autotuned us", "FA us", "PAT/FA"
    );
    let heuristic = pat(TilePolicyKind::Heuristic);
    let autotuned = pat(TilePolicyKind::Autotuned);
    let fa = FlashAttention::new();
    let mut cells = Vec::new();
    for model in &models {
        let spec = model.spec();
        for (label, groups, fanout, kv_lo, kv_hi) in workloads {
            let batch = workload(groups, fanout, kv_lo, kv_hi);
            let time = |backend: &dyn AttentionBackend| {
                let plan = backend.plan(&batch, &spec);
                plan.validate(&batch).expect("valid plan");
                simulate_plan(&batch, &plan, &spec)
                    .expect("simulates")
                    .total_ns
                    / 1000.0
            };
            let (h_us, a_us, fa_us) = (time(&heuristic), time(&autotuned), time(&fa));
            assert!(
                a_us <= h_us * 1.01,
                "autotuned lost a cell on {} / {label}: {a_us:.1}us vs {h_us:.1}us",
                spec.name
            );
            println!(
                "{:<16} {:<22} {:>12.1} {:>12.1} {:>10.1} {:>7.2}x",
                spec.name,
                label,
                h_us,
                a_us,
                fa_us,
                fa_us / a_us
            );
            cells.push(PolicyCell {
                gpu: spec.name.clone(),
                workload: label.to_string(),
                heuristic_us: h_us,
                autotuned_us: a_us,
                flash_attention_us: fa_us,
                pat_speedup_vs_fa: fa_us / a_us,
            });
        }
    }

    // The PAT-vs-FA margin must not be an A100 artifact: at least one
    // workload's speedup has to shift materially across hardware models.
    let max_shift = workloads
        .iter()
        .map(|(label, ..)| {
            let s: Vec<f64> = cells
                .iter()
                .filter(|c| c.workload == *label)
                .map(|c| c.pat_speedup_vs_fa)
                .collect();
            let (lo, hi) = s.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
            hi / lo
        })
        .fold(0.0f64, f64::max);
    println!("\nlargest cross-hardware PAT-vs-FA margin shift: {max_shift:.2}x");
    assert!(
        max_shift > 1.05,
        "PAT-vs-FA margin is hardware-invariant ({max_shift:.2}x); tiles are not doing anything"
    );

    banner("Tile-shape sensitivity: feasible-set latency spread per hardware model");
    let sweep_batch = if smoke { 96 } else { 1188 };
    let mut sensitivity = Vec::new();
    for model in &models {
        let spec = model.spec();
        let sweep = kernel_equivalence(&spec, sweep_batch).expect("equivalence sweep simulates");
        let (lo, hi) = sweep.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), r| {
            (lo.min(r.latency_us), hi.max(r.latency_us))
        });
        let spread = hi / lo;
        println!(
            "{:<16} {:>3} feasible tiles   latency spread {spread:5.2}x",
            spec.name,
            sweep.len()
        );
        sensitivity.push(SensitivityRow {
            gpu: spec.name.clone(),
            feasible_tiles: sweep.len(),
            latency_spread: spread,
            sweep,
        });
    }

    save_json("fig_tile_autotune", &Results { cells, sensitivity }).expect("persist bench results");
}
