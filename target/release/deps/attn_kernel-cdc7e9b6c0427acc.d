/root/repo/target/release/deps/attn_kernel-cdc7e9b6c0427acc.d: crates/attn-kernel/src/lib.rs crates/attn-kernel/src/backend.rs crates/attn-kernel/src/batch.rs crates/attn-kernel/src/numeric.rs crates/attn-kernel/src/plan.rs crates/attn-kernel/src/tile.rs crates/attn-kernel/src/timing.rs crates/attn-kernel/src/traffic.rs

/root/repo/target/release/deps/libattn_kernel-cdc7e9b6c0427acc.rlib: crates/attn-kernel/src/lib.rs crates/attn-kernel/src/backend.rs crates/attn-kernel/src/batch.rs crates/attn-kernel/src/numeric.rs crates/attn-kernel/src/plan.rs crates/attn-kernel/src/tile.rs crates/attn-kernel/src/timing.rs crates/attn-kernel/src/traffic.rs

/root/repo/target/release/deps/libattn_kernel-cdc7e9b6c0427acc.rmeta: crates/attn-kernel/src/lib.rs crates/attn-kernel/src/backend.rs crates/attn-kernel/src/batch.rs crates/attn-kernel/src/numeric.rs crates/attn-kernel/src/plan.rs crates/attn-kernel/src/tile.rs crates/attn-kernel/src/timing.rs crates/attn-kernel/src/traffic.rs

crates/attn-kernel/src/lib.rs:
crates/attn-kernel/src/backend.rs:
crates/attn-kernel/src/batch.rs:
crates/attn-kernel/src/numeric.rs:
crates/attn-kernel/src/plan.rs:
crates/attn-kernel/src/tile.rs:
crates/attn-kernel/src/timing.rs:
crates/attn-kernel/src/traffic.rs:
