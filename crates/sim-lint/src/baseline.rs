//! The ratchet baseline: `simlint.baseline.json`.
//!
//! The baseline freezes pre-existing violation *counts* per `(file, rule)`
//! pair. A run fails only when some pair's current count exceeds its frozen
//! count, so the tool can be adopted on a tree with known debt while still
//! blocking every *new* hazard. `--update-baseline` can only shrink counts
//! (or drop entries for files whose count reached zero); growing a count
//! requires fixing the code or adding an inline waiver.
//!
//! The file format is a flat JSON object so diffs stay reviewable:
//!
//! ```json
//! {
//!   "version": 2,
//!   "rules": ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"],
//!   "counts": { "crates/serving/src/engine.rs|R4": 7 }
//! }
//! ```
//!
//! `rules` records the rule set the baseline was frozen against, so adding
//! a rule family is visible in the baseline diff: a new rule *enters the
//! baseline at zero* (no `counts` entries), meaning any violation of it
//! fails CI immediately. Version-1 files (no `rules` field) still parse.
//!
//! Parsing and serialization are hand-rolled over `std` — the linter must
//! build offline with zero dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Frozen violation counts, keyed `"<workspace-relative path>|<rule>"`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per `(file, rule)` frozen counts.
    pub counts: BTreeMap<String, usize>,
    /// Rule names this baseline was frozen against (empty for v1 files).
    pub rules: Vec<String>,
}

impl Baseline {
    /// The frozen count for a `(file, rule)` pair (zero when absent).
    pub fn allowed(&self, file: &str, rule: &str) -> usize {
        self.counts.get(&key(file, rule)).copied().unwrap_or(0)
    }

    /// Builds a baseline from current counts, dropping zero entries. The
    /// rule list is stamped with the analyzer's full rule set.
    pub fn from_counts(current: &BTreeMap<String, usize>) -> Baseline {
        Baseline {
            counts: current
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| (k.clone(), c))
                .collect(),
            rules: crate::rules::ALL_RULES
                .iter()
                .map(|r| r.to_string())
                .collect(),
        }
    }

    /// Loads a baseline; `Ok(None)` when the file does not exist.
    pub fn load(path: &Path) -> io::Result<Option<Baseline>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        parse(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Writes the baseline as pretty, deterministically ordered JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Serializes to the on-disk JSON form (format version 2).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 2,\n  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(r));
        }
        out.push_str("],\n  \"counts\": {");
        let mut first = true;
        for (k, c) in &self.counts {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), c);
        }
        if !self.counts.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Baseline map key for a `(file, rule)` pair.
pub fn key(file: &str, rule: &str) -> String {
    format!("{file}|{rule}")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ----------------------------------------------------------- tiny parser

fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut counts = BTreeMap::new();
    let mut rules = Vec::new();
    let mut version_seen = false;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let field = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match field.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 && v != 2 {
                    return Err(format!("unsupported baseline version {v}"));
                }
                version_seen = true;
            }
            "rules" => {
                p.expect('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    rules.push(p.string()?);
                    p.skip_ws();
                    if !p.eat(',') {
                        p.skip_ws();
                        p.expect(']')?;
                        break;
                    }
                }
            }
            "counts" => {
                p.expect('{')?;
                loop {
                    p.skip_ws();
                    if p.eat('}') {
                        break;
                    }
                    let k = p.string()?;
                    p.skip_ws();
                    p.expect(':')?;
                    p.skip_ws();
                    let v = p.number()?;
                    counts.insert(k, v as usize);
                    p.skip_ws();
                    if !p.eat(',') {
                        p.skip_ws();
                        p.expect('}')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown baseline field `{other}`")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.skip_ws();
            p.expect('}')?;
            break;
        }
    }
    if !version_seen {
        return Err("baseline missing `version`".to_string());
    }
    Ok(Baseline { counts, rules })
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .map(|c| c.is_whitespace())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at char {}: expected `{c}`",
                self.pos
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.get(self.pos) {
                Some('"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos) {
                        Some(&c) => {
                            s.push(c);
                            self.pos += 1;
                        }
                        None => return Err("unterminated escape".to_string()),
                    }
                }
                Some(&c) => {
                    s.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!(
                "baseline parse error at char {start}: expected number"
            ));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert(key("crates/a/src/lib.rs", "R4"), 3);
        counts.insert(key("crates/b/src/x.rs", "R2"), 1);
        let b = Baseline::from_counts(&counts);
        let parsed = parse(&b.to_json()).expect("round trip parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_round_trips() {
        let b = Baseline::default();
        assert_eq!(parse(&b.to_json()).expect("parses"), b);
    }

    #[test]
    fn zero_counts_are_dropped() {
        let mut counts = BTreeMap::new();
        counts.insert(key("f.rs", "R1"), 0);
        counts.insert(key("f.rs", "R2"), 2);
        let b = Baseline::from_counts(&counts);
        assert_eq!(b.counts.len(), 1);
        assert_eq!(b.allowed("f.rs", "R2"), 2);
        assert_eq!(b.allowed("f.rs", "R1"), 0);
    }

    #[test]
    fn rejects_unknown_version_but_accepts_v1_and_v2() {
        assert!(parse("{\"version\": 3, \"counts\": {}}").is_err());
        assert!(parse("{\"counts\": {}}").is_err());
        // v1 files (no rules list) still parse.
        let b = parse("{\"version\": 1, \"counts\": {\"f.rs|R4\": 2}}").expect("v1 parses");
        assert!(b.rules.is_empty());
        assert_eq!(b.allowed("f.rs", "R4"), 2);
    }

    #[test]
    fn v2_round_trips_rule_list() {
        let mut counts = BTreeMap::new();
        counts.insert(key("f.rs", "R8"), 1);
        let b = Baseline::from_counts(&counts);
        assert!(b.rules.iter().any(|r| r == "R9"));
        let parsed = parse(&b.to_json()).expect("v2 round trip");
        assert_eq!(parsed, b);
    }
}
