//! Serving metrics: TTFT, TPOT, completion latency (§8.2).
//!
//! The statistics primitives live in [`sim_core::stats`]; this module keeps
//! the serving-specific record types and re-exports [`percentile`] for the
//! crates that aggregate on top of serving runs.

use serde::Serialize;
use sim_core::stats::Samples;

pub use sim_core::stats::percentile;

/// Per-request latency record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestMetrics {
    /// Id of the completed request (from [`workloads::Request::id`]).
    pub request_id: u64,
    /// Time to first token, ns.
    pub ttft_ns: f64,
    /// Mean time per output token after the first, ns (0 for single-token
    /// outputs).
    pub tpot_ns: f64,
    /// Total completion latency (arrival → last token), ns.
    pub completion_ns: f64,
    /// Output tokens produced.
    pub decode_tokens: usize,
}

/// Aggregates over completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct AggregateMetrics {
    /// Mean time to first token, ms.
    pub mean_ttft_ms: f64,
    /// 99th-percentile time to first token, ms.
    pub p99_ttft_ms: f64,
    /// Mean time per output token, ms.
    pub mean_tpot_ms: f64,
    /// 99th-percentile per-request TPOT, ms.
    pub p99_tpot_ms: f64,
    /// Mean request completion latency, ms.
    pub mean_completion_ms: f64,
    /// Number of completed requests.
    pub completed: usize,
}

impl AggregateMetrics {
    /// Aggregates a set of per-request records. Every field is 0 (never
    /// NaN) when `requests` is empty or when no request decoded more than
    /// one token. Each sample vector is sorted exactly once.
    pub fn from_requests(requests: &[RequestMetrics]) -> Self {
        let ttfts = Samples::new(requests.iter().map(|r| r.ttft_ns).collect());
        let completions = Samples::new(requests.iter().map(|r| r.completion_ns).collect());
        let tpots = Samples::new(
            requests
                .iter()
                .filter(|r| r.decode_tokens > 1)
                .map(|r| r.tpot_ns)
                .collect(),
        );
        AggregateMetrics {
            mean_ttft_ms: ttfts.mean() / 1e6,
            p99_ttft_ms: ttfts.percentile(0.99) / 1e6,
            mean_tpot_ms: tpots.mean() / 1e6,
            p99_tpot_ms: tpots.percentile(0.99) / 1e6,
            mean_completion_ms: completions.mean() / 1e6,
            completed: requests.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(ttft: f64, tpot: f64, tokens: usize) -> RequestMetrics {
        RequestMetrics {
            request_id: 0,
            ttft_ns: ttft,
            tpot_ns: tpot,
            completion_ns: ttft + tpot * tokens as f64,
            decode_tokens: tokens,
        }
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let reqs = vec![rm(1e6, 2e6, 10), rm(3e6, 4e6, 10)];
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.mean_ttft_ms - 2.0).abs() < 1e-9);
        assert!((agg.mean_tpot_ms - 3.0).abs() < 1e-9);
        assert!((agg.p99_tpot_ms - 4.0).abs() < 1e-9);
        assert_eq!(agg.completed, 2);
    }

    #[test]
    fn p99_picks_the_tail() {
        let mut reqs: Vec<RequestMetrics> = (1..=100).map(|i| rm(0.0, i as f64 * 1e6, 5)).collect();
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.p99_tpot_ms - 99.0).abs() < 1e-9);
        reqs.truncate(10);
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.p99_tpot_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_token_requests_do_not_pollute_tpot() {
        let reqs = vec![rm(1e6, 0.0, 1), rm(1e6, 5e6, 10)];
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.mean_tpot_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_zeroes() {
        let agg = AggregateMetrics::from_requests(&[]);
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.mean_tpot_ms, 0.0);
    }

    /// No input shape may produce NaN: empty runs, single-request runs, and
    /// all-single-token runs (empty TPOT sample with non-empty TTFT sample)
    /// must all aggregate to finite numbers.
    #[test]
    fn aggregates_are_never_nan() {
        for reqs in [
            vec![],
            vec![rm(2e6, 0.0, 1)],
            vec![rm(2e6, 0.0, 1), rm(4e6, 0.0, 1)],
            vec![rm(1e6, 3e6, 8)],
        ] {
            let agg = AggregateMetrics::from_requests(&reqs);
            for v in [
                agg.mean_ttft_ms,
                agg.p99_ttft_ms,
                agg.mean_tpot_ms,
                agg.p99_tpot_ms,
                agg.mean_completion_ms,
            ] {
                assert!(v.is_finite(), "{agg:?} contains a non-finite field");
            }
        }
    }

    #[test]
    fn percentile_is_guarded_and_exact() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[5.0], 0.99), 5.0);
        assert_eq!(percentile(&[5.0], 0.0), 5.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn p99_ttft_picks_the_tail() {
        let reqs: Vec<RequestMetrics> = (1..=100).map(|i| rm(i as f64 * 1e6, 0.0, 5)).collect();
        let agg = AggregateMetrics::from_requests(&reqs);
        assert!((agg.p99_ttft_ms - 99.0).abs() < 1e-9);
    }

    /// O(n²) nearest-rank reference, defined without sorting: the smallest
    /// sample value that at least `ceil(q·n)` samples are ≤ to.
    fn naive_percentile(values: &[f64], q: f64) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let need = sim_core::cast::f64_to_usize((values.len() as f64 * q).ceil()).max(1);
        values
            .iter()
            .copied()
            .filter(|&v| values.iter().filter(|&&x| x <= v).count() >= need)
            .fold(f64::INFINITY, f64::min)
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// The sort-once [`Samples`] path and the one-shot [`percentile`]
        /// both match the quadratic reference on arbitrary samples for every
        /// quantile the repo's metrics actually query.
        #[test]
        fn percentile_matches_naive_reference(
            values in proptest::collection::vec(0.0f64..1e9, 0..64),
        ) {
            let samples = Samples::new(values.clone());
            for q in [0.0, 0.5, 0.99, 1.0] {
                let reference = naive_percentile(&values, q);
                proptest::prop_assert_eq!(samples.percentile(q), reference, "Samples, q={}", q);
                proptest::prop_assert_eq!(percentile(&values, q), reference, "one-shot, q={}", q);
            }
        }
    }
}
