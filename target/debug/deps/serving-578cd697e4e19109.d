/root/repo/target/debug/deps/serving-578cd697e4e19109.d: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libserving-578cd697e4e19109.rmeta: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/attention.rs:
crates/serving/src/breakdown.rs:
crates/serving/src/costs.rs:
crates/serving/src/engine.rs:
crates/serving/src/metrics.rs:
crates/serving/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
