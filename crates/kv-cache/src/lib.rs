//! # kv-cache — paged KV cache with prefix reuse
//!
//! The serving-system substrate of the PAT reproduction: vLLM-style paged KV
//! blocks ([`BlockAllocator`], [`BlockTable`]), content-hash prefix reuse
//! across requests ([`CacheManager`]), the tree-structure block table of the
//! pack scheduler ([`PrefixForest`], Fig. 7b), and shared-prefix statistics
//! ([`stats`], Fig. 4).
//!
//! ## Example
//!
//! ```
//! use kv_cache::{CacheManager, PrefixForest};
//!
//! let mut cache = CacheManager::new(256, 16);
//! let system_prompt: Vec<u32> = (0..64).collect();
//! let mut tables = Vec::new();
//! for req in 0..4u32 {
//!     let mut tokens = system_prompt.clone();
//!     tokens.extend(1000 * req..1000 * req + 32);
//!     tables.push(cache.insert_sequence(&tokens)?);
//! }
//! let forest = PrefixForest::from_block_tables(&tables);
//! assert_eq!(forest.roots().len(), 1); // all four share the system prompt
//! # Ok::<(), kv_cache::AllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocator;
mod block;
mod cache_manager;
mod prefix_tree;
mod radix;
pub mod stats;

pub use allocator::{AllocError, BlockAllocator};
pub use block::{BlockId, BlockTable, DEFAULT_BLOCK_SIZE};
pub use cache_manager::{CacheManager, CacheStats, IngestReport, Token};
pub use prefix_tree::{PrefixForest, PrefixNode};
pub use radix::{RadixCache, RadixStats};
pub use stats::BatchPrefixStats;
