/root/repo/target/debug/examples/cluster_routing-3770e259fd330f77.d: examples/cluster_routing.rs Cargo.toml

/root/repo/target/debug/examples/libcluster_routing-3770e259fd330f77.rmeta: examples/cluster_routing.rs Cargo.toml

examples/cluster_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
