//! Integer-nanosecond virtual time.
//!
//! [`SimTime`] is an instant on a simulation's clock; [`SimDuration`] is a
//! span between instants. Both wrap a `u64` of nanoseconds, so comparison
//! and accumulation are exact: a million-step run drifts by exactly zero,
//! and two replicas that did identical work hold *identical* clocks —
//! `f64` accumulation guarantees neither.
//!
//! Floating point enters and leaves through explicitly lossy conversions:
//! cost models hand in `f64` nanoseconds via [`SimDuration::from_ns_f64`]
//! (rounded to the nearest integer nanosecond at that single call site) and
//! metrics read out `f64` via `as_ns_f64` / `as_ms_f64` / `as_secs_f64`.
//! Everything in between is integer arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time: nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Converts a (finite, non-negative) `f64` nanosecond count to integer
/// nanoseconds, rounding to nearest and saturating at the representable
/// range. Negative inputs clamp to zero; NaN is a caller bug.
fn ns_from_f64(ns: f64) -> u64 {
    assert!(!ns.is_nan(), "virtual-time value is NaN");
    if ns <= 0.0 {
        0
    } else if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The instant `ns` nanoseconds after the start of the run.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Lossy ingest of an `f64` nanosecond timestamp (rounds to nearest,
    /// clamps negatives to zero, saturates at [`SimTime::MAX`]).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is NaN.
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime(ns_from_f64(ns))
    }

    /// Lossy ingest of an `f64` second timestamp (external trace times).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(ns_from_f64(secs * 1e9))
    }

    /// The instant as `f64` nanoseconds — the metrics boundary.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64
    }

    /// The instant as `f64` microseconds — the metrics boundary (Chrome
    /// trace-event `ts` fields are natively microseconds).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The instant as `f64` milliseconds — the metrics boundary.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The instant as `f64` seconds — the metrics boundary.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self + d`, saturating at [`SimTime::MAX`] instead of wrapping.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// `self - earlier`, or `None` if `earlier` is in this instant's future.
    pub fn checked_sub(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// `self - earlier`, clamped to zero when `earlier` is later.
    pub fn saturating_sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The shortest non-empty span: one nanosecond, the clock's tick.
    pub const NANOSECOND: SimDuration = SimDuration(1);

    /// A span of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// The span in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Lossy ingest of an `f64` nanosecond span (rounds to nearest, clamps
    /// negatives to zero, saturates). This is where cost-model outputs enter
    /// the integer spine.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is NaN.
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration(ns_from_f64(ns))
    }

    /// Like [`SimDuration::from_ns_f64`] but rounds *up*, so any positive
    /// `f64` span maps to a non-empty integer span. Event loops use this to
    /// guarantee forward progress when quantizing fractional waits.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is NaN.
    pub fn from_ns_f64_ceil(ns: f64) -> Self {
        assert!(!ns.is_nan(), "virtual-time value is NaN");
        if ns <= 0.0 {
            SimDuration(0)
        } else if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.ceil() as u64)
        }
    }

    /// Lossy ingest of an `f64` second span.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(ns_from_f64(secs * 1e9))
    }

    /// The span as `f64` nanoseconds — the metrics boundary.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64
    }

    /// The span as `f64` microseconds — the metrics boundary.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span as `f64` milliseconds — the metrics boundary.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span as `f64` seconds — the metrics boundary.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Integer multiple of the span, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics on overflow past [`SimTime::MAX`]; use
    /// [`SimTime::saturating_add`] for "never"-style sentinels.
    fn add(self, d: SimDuration) -> SimTime {
        match self.0.checked_add(d.0) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime overflow: {self:?} + {d:?}"),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics if the right operand is later than the left; use
    /// [`SimTime::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, earlier: SimTime) -> SimDuration {
        match self.checked_sub(earlier) {
            Some(d) => d,
            None => panic!("SimTime subtraction went negative: {self:?} - {earlier:?}"),
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics on overflow.
    fn add(self, other: SimDuration) -> SimDuration {
        match self.0.checked_add(other.0) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration overflow: {self:?} + {other:?}"),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_exact() {
        let mut t = SimTime::ZERO;
        for _ in 0..1_000_000 {
            t += SimDuration::from_ns(3);
        }
        assert_eq!(t.as_ns(), 3_000_000);
        assert_eq!(t - SimTime::from_ns(1), SimDuration::from_ns(2_999_999));
    }

    #[test]
    fn f64_ingest_rounds_clamps_and_saturates() {
        assert_eq!(SimDuration::from_ns_f64(1.4).as_ns(), 1);
        assert_eq!(SimDuration::from_ns_f64(1.5).as_ns(), 2);
        assert_eq!(SimDuration::from_ns_f64(-7.0).as_ns(), 0);
        assert_eq!(SimDuration::from_ns_f64(f64::INFINITY).as_ns(), u64::MAX);
        assert_eq!(SimDuration::from_ns_f64_ceil(0.001).as_ns(), 1);
        assert_eq!(SimDuration::from_ns_f64_ceil(0.0).as_ns(), 0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert_eq!(SimTime::from_ns_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_ingest_panics() {
        let _ = SimDuration::from_ns_f64(f64::NAN);
    }

    #[test]
    fn seconds_round_trip_is_exact_at_simulation_scale() {
        // as_secs_f64 → from_secs_f64 must return the identical instant for
        // any clock a multi-hour run can reach: the controller rewrites
        // request arrival times through this round trip.
        for ns in [0u64, 1, 999, 1_000_000_007, 86_400_000_000_000] {
            let t = SimTime::from_ns(ns);
            assert_eq!(SimTime::from_secs_f64(t.as_secs_f64()), t, "{ns}");
        }
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_ns(5)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_ns(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::ZERO.checked_sub(SimTime::from_ns(5)), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(SimTime::from_ns(42).to_string(), "42 ns");
        assert_eq!(SimDuration::from_ns(7).to_string(), "7 ns");
    }
}
