/root/repo/target/debug/deps/kv_cache-e4d4b3551865db87.d: crates/kv-cache/src/lib.rs crates/kv-cache/src/allocator.rs crates/kv-cache/src/block.rs crates/kv-cache/src/cache_manager.rs crates/kv-cache/src/prefix_tree.rs crates/kv-cache/src/radix.rs crates/kv-cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libkv_cache-e4d4b3551865db87.rmeta: crates/kv-cache/src/lib.rs crates/kv-cache/src/allocator.rs crates/kv-cache/src/block.rs crates/kv-cache/src/cache_manager.rs crates/kv-cache/src/prefix_tree.rs crates/kv-cache/src/radix.rs crates/kv-cache/src/stats.rs Cargo.toml

crates/kv-cache/src/lib.rs:
crates/kv-cache/src/allocator.rs:
crates/kv-cache/src/block.rs:
crates/kv-cache/src/cache_manager.rs:
crates/kv-cache/src/prefix_tree.rs:
crates/kv-cache/src/radix.rs:
crates/kv-cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
