//! The multi-replica cluster simulator.
//!
//! Instantiates N independent replicas — each a [`ReplicaModel`] with its
//! own prefix residency and (for kernel-level fidelities) attention backend
//! — and co-simulates them event-driven on the shared [`sim_core`] spine:
//! arrivals are drained from a deterministic [`EventQueue`], and before each
//! arrival is routed, every *busy* replica is advanced to the arrival
//! instant so the router observes loads and cache contents as they would be
//! at that moment (idle replicas are never ticked — their clocks jump
//! forward on the next submission). The routed request is then submitted to
//! exactly one replica. Replicas never share KV state, which is precisely
//! why placement matters: a prefix cached on replica A is recomputed from
//! scratch on replica B.
//!
//! Replica fidelity is selectable per cluster (or per replica via
//! [`Cluster::with_fidelities`]): exact kernel simulation, step-cache
//! replay, or the calibrated analytical model — see the
//! [`replica_fidelity`] crate. The driver logic is fidelity-blind.
//!
//! Replicas with identical integer clocks advance in replica-index order —
//! an exact guarantee under [`SimTime`], where equal instants compare equal
//! instead of hiding an ulp of float drift.

use crate::metrics::{
    duplicated_blocks, kv_block_bytes, load_imbalance, ClusterResult, FleetMergeScratch,
    ReplicaSummary,
};
use crate::router::{ReplicaView, Router};
use pat_core::LazyPat;
use replica_fidelity::{fidelity_from_env, new_replica, Fidelity, ReplicaModel};
use serving::{ServingAttention, ServingConfig, StepOutcome};
use sim_core::{par, EventQueue, SimTime};
use workloads::Request;

/// Cluster shape: how many replicas, each running the same engine config.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of independent replicas.
    pub replicas: usize,
    /// Per-replica engine configuration.
    pub engine: ServingConfig,
}

impl ClusterConfig {
    /// `replicas` copies of `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize, engine: ServingConfig) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        ClusterConfig { replicas, engine }
    }
}

/// A fleet of simulated replicas behind a routing policy.
pub struct Cluster {
    replicas: Vec<Box<dyn ReplicaModel>>,
    router: Box<dyn Router>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas.len())
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds an exact-fidelity cluster whose replicas each get a backend
    /// from `backend`.
    pub fn new(
        config: &ClusterConfig,
        router: Box<dyn Router>,
        backend: impl FnMut() -> Box<dyn ServingAttention>,
    ) -> Self {
        Cluster::with_fidelity(config, router, Fidelity::Exact, backend)
    }

    /// Builds a cluster at one uniform fidelity. The backend factory is
    /// consulted for every replica slot regardless of fidelity (analytical
    /// replicas drop theirs), so slot → backend assignment is stable across
    /// fidelities.
    pub fn with_fidelity(
        config: &ClusterConfig,
        router: Box<dyn Router>,
        fidelity: Fidelity,
        backend: impl FnMut() -> Box<dyn ServingAttention>,
    ) -> Self {
        let fidelities = vec![fidelity; config.replicas];
        Cluster::with_fidelities(config, router, &fidelities, backend)
    }

    /// Builds a mixed-fidelity cluster: replica `i` runs at
    /// `fidelities[i % fidelities.len()]`.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero or `fidelities` is empty.
    pub fn with_fidelities(
        config: &ClusterConfig,
        router: Box<dyn Router>,
        fidelities: &[Fidelity],
        mut backend: impl FnMut() -> Box<dyn ServingAttention>,
    ) -> Self {
        assert!(config.replicas > 0, "a cluster needs at least one replica");
        assert!(!fidelities.is_empty(), "need at least one fidelity");
        let replicas = (0..config.replicas)
            .map(|i| new_replica(fidelities[i % fidelities.len()], &config.engine, backend()))
            .collect();
        Cluster { replicas, router }
    }

    /// A cluster of PAT ([`LazyPat`]) replicas at the fidelity selected by
    /// `PAT_REPLICA_FIDELITY` (exact when unset) and the tile policy
    /// selected by `PAT_TILE_POLICY` (heuristic when unset) — the common
    /// case.
    pub fn with_lazy_pat(config: &ClusterConfig, router: Box<dyn Router>) -> Self {
        Cluster::with_fidelity(config, router, fidelity_from_env(), || {
            Box::new(LazyPat::from_env())
        })
    }

    /// Advances every replica until its clock reaches `t` or it goes idle.
    /// Replicas with no outstanding work are skipped outright: stepping an
    /// idle replica is a no-op, and its lagging clock jumps forward on the
    /// next submission.
    ///
    /// Replicas are independent between fleet event barriers — no shared
    /// state is touched until the router runs at `t` — so they advance
    /// concurrently on the `sim_core::par` workers. Each replica's step
    /// sequence is a pure function of its own state; parallelism reorders
    /// wall-clock execution only, so fleet results are bit-identical at any
    /// `PAT_SIM_THREADS`.
    fn advance_all_to(&mut self, t: SimTime) {
        let mut busy: Vec<&mut Box<dyn ReplicaModel>> = self
            .replicas
            .iter_mut()
            .filter(|m| m.outstanding() > 0 && m.clock() < t)
            .collect();
        par::for_each_mut(&mut busy, |_, model| {
            while model.clock() < t {
                if model.step() == StepOutcome::Idle {
                    break;
                }
            }
        });
    }

    /// Routes and serves `requests` (must be sorted by arrival), then drains
    /// every replica and aggregates fleet metrics.
    ///
    /// # Panics
    ///
    /// Panics if requests are unsorted or the router returns an out-of-range
    /// replica index.
    pub fn run(mut self, requests: &[Request]) -> ClusterResult {
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s),
            "requests must be sorted by arrival"
        );
        let n = self.replicas.len();
        let mut assignments: Vec<(u64, usize)> = Vec::with_capacity(requests.len());
        let mut routed = vec![0usize; n];
        // Arrivals drain from the event queue in (time, submission-order):
        // simultaneous arrivals route in trace order, deterministically.
        let mut events: EventQueue<usize> = EventQueue::new();
        for (idx, request) in requests.iter().enumerate() {
            events.push(SimTime::from_secs_f64(request.arrival_s), idx);
        }
        while let Some((t, idx)) = events.pop() {
            let request = &requests[idx];
            // Bring every busy replica up to the arrival instant so the
            // router sees loads and caches as of "now", not as of the last
            // arrival. Replicas advance concurrently between barriers.
            self.advance_all_to(t);
            let choice = {
                let views: Vec<ReplicaView<'_>> = self
                    .replicas
                    .iter()
                    .map(|m| ReplicaView::new(m.as_ref()))
                    .collect();
                self.router.route(request, &views)
            };
            // The fixed fleet is all-healthy, so a router returning `None`
            // is a policy bug, not an operational condition.
            let Some(target) = choice else {
                panic!("router returned no replica for an all-healthy fleet of {n}");
            };
            assert!(target < n, "router picked replica {target} of {n}");
            self.replicas[target].submit(request.clone());
            assignments.push((request.id, target));
            routed[target] += 1;
        }
        // Drain: run every replica to quiescence (or its drain deadline),
        // concurrently — no more routing barriers exist past this point.
        par::for_each_mut(&mut self.replicas, |_, model| {
            while model.step() == StepOutcome::Progress {}
        });

        // Cache-level fleet metrics, read before finalization consumes the
        // replicas.
        let block_bytes = kv_block_bytes(
            &self.replicas[0].config().model,
            self.replicas[0].block_size(),
        );
        let resident: Vec<Vec<u64>> = self
            .replicas
            .iter()
            .map(|m| m.resident_block_hashes())
            .collect();
        let dup_blocks = duplicated_blocks(&resident);
        let hit_rates: Vec<f64> = self.replicas.iter().map(|m| m.cache_hit_rate()).collect();
        let fidelities: Vec<Fidelity> = self.replicas.iter().map(|m| m.fidelity()).collect();
        let (mut hit_tokens, mut total_tokens) = (0u64, 0u64);
        for model in &self.replicas {
            let (hit, miss) = model.cache_hit_miss_tokens();
            hit_tokens += hit;
            total_tokens += hit + miss;
        }

        let results: Vec<_> = self.replicas.into_iter().map(|m| m.into_result()).collect();
        let fleet =
            FleetMergeScratch::default().merge(results.iter().map(|r| r.per_request.as_slice()));
        let (mut unfinished, mut preemptions, mut dropped) = (0usize, 0u64, 0u64);
        for r in &results {
            unfinished += r.unfinished;
            preemptions += r.preemptions;
            dropped += r.dropped;
        }
        let per_replica = results
            .into_iter()
            .zip(routed.iter())
            .zip(hit_rates)
            .zip(fidelities)
            .map(
                |(((result, &routed), prefix_hit_rate), fidelity)| ReplicaSummary {
                    routed,
                    prefix_hit_rate,
                    fidelity,
                    result,
                },
            )
            .collect();
        ClusterResult {
            per_replica,
            fleet,
            fleet_hit_rate: if total_tokens == 0 {
                0.0
            } else {
                hit_tokens as f64 / total_tokens as f64
            },
            load_imbalance: load_imbalance(&routed),
            duplicated_kv_blocks: dup_blocks,
            duplicated_kv_bytes: dup_blocks as u64 * block_bytes,
            assignments,
            unfinished,
            preemptions,
            dropped,
        }
    }
}
