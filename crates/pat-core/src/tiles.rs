//! The offline multi-tile configuration solver (§5.2, Fig. 8b).
//!
//! Enumerates the `(m, n)` grid and applies the paper's three constraints:
//!
//! 1. **① Resources** — per-CTA shared memory within the addressable limit,
//!    per-thread registers below the spill threshold, and the CTA's aggregate
//!    registers within the SM register file.
//! 2. **② Bandwidth** — enough data in flight device-wide to cover the
//!    memory latency: `S · C · in_flight(n) ≥ L · B`, i.e.
//!    `n ≥ L·B / (S·C·2·h·b)`, where `C` is the occupancy from ①.
//! 3. **③ CUTLASS** — both tile sizes powers of two and ≥ 16.
//!
//! The surviving set is the *performance-equivalent kernel suite*: all
//! members saturate HBM bandwidth (validated in Fig. 8c/d and Fig. 9).

use attn_kernel::TileConfig;
use sim_gpu::{GpuSpec, Occupancy};
use std::fmt;

/// The tile-size grid the solver searches (constraint ③'s domain).
pub const TILE_GRID: [usize; 4] = [16, 32, 64, 128];

/// Which constraint rejected a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileConstraint {
    /// ① shared-memory or register limits.
    Resources,
    /// ② bandwidth lower bound on in-flight data.
    Bandwidth,
    /// ③ CUTLASS/CuTe tile-shape requirements.
    Cutlass,
}

impl fmt::Display for TileConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileConstraint::Resources => write!(f, "① resources"),
            TileConstraint::Bandwidth => write!(f, "② bandwidth"),
            TileConstraint::Cutlass => write!(f, "③ cutlass"),
        }
    }
}

/// Solver verdict for one `(m, n)` candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileVerdict {
    /// The candidate configuration.
    pub tile: TileConfig,
    /// Resident CTAs per SM (0 when ① is violated).
    pub ctas_per_sm: usize,
    /// The violated constraint, or `None` if feasible.
    pub violated: Option<TileConstraint>,
}

impl TileVerdict {
    /// Whether the configuration is feasible.
    pub fn is_feasible(&self) -> bool {
        self.violated.is_none()
    }
}

/// The offline tile solver for one device + head geometry.
///
/// # Examples
///
/// ```
/// use pat_core::TileSolver;
/// use sim_gpu::GpuSpec;
///
/// let solver = TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2);
/// let feasible = solver.feasible_tiles();
/// assert!(feasible.len() >= 9);
/// ```
#[derive(Debug, Clone)]
pub struct TileSolver {
    spec: GpuSpec,
    head_dim: usize,
    dtype_bytes: usize,
}

impl TileSolver {
    /// Creates a solver.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` or `dtype_bytes` is zero.
    pub fn new(spec: GpuSpec, head_dim: usize, dtype_bytes: usize) -> Self {
        assert!(head_dim > 0 && dtype_bytes > 0, "geometry must be positive");
        TileSolver {
            spec,
            head_dim,
            dtype_bytes,
        }
    }

    /// The device this solver targets.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Judges one candidate against constraints ①–③.
    pub fn judge(&self, tile: TileConfig) -> TileVerdict {
        // ③ CUTLASS shape requirements.
        let pow2 = |x: usize| x.is_power_of_two();
        if !pow2(tile.m) || !pow2(tile.n) || tile.m < 16 || tile.n < 16 {
            return TileVerdict {
                tile,
                ctas_per_sm: 0,
                violated: Some(TileConstraint::Cutlass),
            };
        }
        // ① resource limits via the occupancy calculator.
        let occupancy = Occupancy::new(self.spec.clone());
        let resources = tile.resources(self.head_dim, self.dtype_bytes);
        let c = match occupancy.ctas_per_sm(resources) {
            Ok(c) => c,
            Err(_) => {
                return TileVerdict {
                    tile,
                    ctas_per_sm: 0,
                    violated: Some(TileConstraint::Resources),
                }
            }
        };
        // ② bandwidth: all resident CTAs together must keep L·B in flight.
        let device_rate = self.spec.num_sms as f64
            * c as f64
            * tile.rate_cap(&self.spec, self.head_dim, self.dtype_bytes);
        if device_rate < self.spec.global_bandwidth {
            return TileVerdict {
                tile,
                ctas_per_sm: c,
                violated: Some(TileConstraint::Bandwidth),
            };
        }
        TileVerdict {
            tile,
            ctas_per_sm: c,
            violated: None,
        }
    }

    /// Judges the full grid (the Fig. 8b table).
    pub fn grid_verdicts(&self) -> Vec<TileVerdict> {
        let mut out = Vec::with_capacity(TILE_GRID.len() * TILE_GRID.len());
        for &m in &TILE_GRID {
            for &n in &TILE_GRID {
                out.push(self.judge(TileConfig::new(m, n)));
            }
        }
        out
    }

    /// The feasible (performance-equivalent) tile set, sorted by `(m, n)`.
    pub fn feasible_tiles(&self) -> Vec<TileConfig> {
        self.grid_verdicts()
            .into_iter()
            .filter(TileVerdict::is_feasible)
            .map(|v| v.tile)
            .collect()
    }

    /// Renders the Fig. 8b feasibility table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} (h={}, b={}):\n",
            self.spec.name, self.head_dim, self.dtype_bytes
        ));
        out.push_str("        ");
        for &n in &TILE_GRID {
            out.push_str(&format!(" n={n:<5}"));
        }
        out.push('\n');
        for &m in &TILE_GRID {
            out.push_str(&format!("  m={m:<4}"));
            for &n in &TILE_GRID {
                let v = self.judge(TileConfig::new(m, n));
                let cell = match v.violated {
                    None => format!("✓ C={}", v.ctas_per_sm),
                    Some(TileConstraint::Resources) => "①".to_string(),
                    Some(TileConstraint::Bandwidth) => "②".to_string(),
                    Some(TileConstraint::Cutlass) => "③".to_string(),
                };
                out.push_str(&format!(" {cell:<6}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> TileSolver {
        TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2)
    }

    fn h100() -> TileSolver {
        TileSolver::new(GpuSpec::h100_sxm5_80gb(), 128, 2)
    }

    #[test]
    fn a100_feasible_set_matches_figure_8b() {
        let tiles = a100().feasible_tiles();
        assert_eq!(
            tiles.len(),
            11,
            "paper reports 11 available configs:\n{}",
            a100().render_table()
        );
        // All m=16 and m=32 configs are feasible.
        for m in [16, 32] {
            for n in TILE_GRID {
                assert!(tiles.contains(&TileConfig::new(m, n)), "({m},{n}) missing");
            }
        }
        // (64,32), (64,64), (64,128) are feasible; (64,16) starves bandwidth.
        assert!(tiles.contains(&TileConfig::new(64, 32)));
        assert!(tiles.contains(&TileConfig::new(64, 64)));
        assert!(tiles.contains(&TileConfig::new(64, 128)));
        assert!(!tiles.contains(&TileConfig::new(64, 16)));
        // m=128 exceeds the per-thread register budget.
        assert!(tiles.iter().all(|t| t.m < 128));
    }

    #[test]
    fn h100_removes_64_32_and_64_64() {
        let a = a100().feasible_tiles();
        let h = h100().feasible_tiles();
        assert_eq!(
            h.len(),
            9,
            "paper: A100 set minus two:\n{}",
            h100().render_table()
        );
        assert!(a.contains(&TileConfig::new(64, 32)));
        assert!(a.contains(&TileConfig::new(64, 64)));
        assert!(!h.contains(&TileConfig::new(64, 32)));
        assert!(!h.contains(&TileConfig::new(64, 64)));
        assert!(h.contains(&TileConfig::new(64, 128)));
        // H100's set is a strict subset of A100's.
        assert!(h.iter().all(|t| a.contains(t)));
    }

    #[test]
    fn non_power_of_two_is_cutlass_violation() {
        let v = a100().judge(TileConfig::new(24, 16));
        assert_eq!(v.violated, Some(TileConstraint::Cutlass));
        let v = a100().judge(TileConfig::new(16, 8));
        assert_eq!(v.violated, Some(TileConstraint::Cutlass));
    }

    #[test]
    fn violated_constraints_annotate_the_grid() {
        let verdicts = a100().grid_verdicts();
        assert_eq!(verdicts.len(), 16);
        let m128: Vec<_> = verdicts.iter().filter(|v| v.tile.m == 128).collect();
        assert!(m128
            .iter()
            .all(|v| v.violated == Some(TileConstraint::Resources)));
        let v6416 = verdicts
            .iter()
            .find(|v| v.tile == TileConfig::new(64, 16))
            .unwrap();
        assert_eq!(v6416.violated, Some(TileConstraint::Bandwidth));
    }

    #[test]
    fn render_table_mentions_device() {
        let t = a100().render_table();
        assert!(t.contains("A100"));
        assert!(t.contains('✓'));
    }
}
