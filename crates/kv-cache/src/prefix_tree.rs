//! Tree-structure block table (Fig. 7b).
//!
//! The pack scheduler's first step (§5.1) converts a decode batch's
//! two-dimensional block table into a path-compressed prefix forest: each
//! internal node is a run of KV blocks shared by the same set of queries, with
//! attributes `l` (KV token length of the run) and `s` (number of sharing
//! queries); each leaf is one query's non-shared suffix, and the root-to-leaf
//! path reconstructs the query's full KV sequence.

use crate::{BlockId, BlockTable};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A node of the prefix forest: a run of blocks shared by `queries`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixNode {
    /// The run of physical blocks this node represents (may be empty for a
    /// query that ends exactly at its parent's boundary).
    pub blocks: Vec<BlockId>,
    /// KV tokens covered by the run (`l` in the paper's profit model).
    pub token_len: usize,
    /// Queries (batch indices) sharing this run (`s = queries.len()`).
    pub queries: Vec<usize>,
    /// Child nodes partitioning the continuation.
    pub children: Vec<PrefixNode>,
}

impl PrefixNode {
    /// Whether this node is a leaf (exactly one query, no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of sharing queries (`s`).
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Nodes in this subtree (including self).
    pub fn num_nodes(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PrefixNode::num_nodes)
            .sum::<usize>()
    }
}

/// The prefix forest of one decode batch.
///
/// # Examples
///
/// ```
/// use kv_cache::{BlockId, BlockTable, PrefixForest};
///
/// let b = |ids: &[u32], tokens: usize| {
///     BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
/// };
/// // Two queries share blocks [0, 1]; each has a private suffix.
/// let forest = PrefixForest::from_block_tables(&[
///     b(&[0, 1, 2], 48),
///     b(&[0, 1, 3, 4], 64),
/// ]);
/// assert_eq!(forest.roots().len(), 1);
/// let root = &forest.roots()[0];
/// assert_eq!(root.token_len, 32);
/// assert_eq!(root.num_queries(), 2);
/// assert_eq!(root.children.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixForest {
    roots: Vec<PrefixNode>,
    num_queries: usize,
}

impl PrefixForest {
    /// Builds the forest from a batch's block tables. Row `q` of `tables`
    /// belongs to query `q`.
    pub fn from_block_tables(tables: &[BlockTable]) -> Self {
        let queries: Vec<usize> = (0..tables.len()).collect();
        let roots = Self::build(tables, &queries, 0);
        PrefixForest {
            roots,
            num_queries: tables.len(),
        }
    }

    /// The first-level shared prefixes (roots).
    pub fn roots(&self) -> &[PrefixNode] {
        &self.roots
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Total node count (|V| of Algorithm 1's complexity bound).
    pub fn num_nodes(&self) -> usize {
        self.roots.iter().map(PrefixNode::num_nodes).sum()
    }

    /// Internal (shared, `s > 1`) node count — the "distinct shared prefixes"
    /// statistic of §3.1.
    pub fn num_shared_nodes(&self) -> usize {
        fn count(node: &PrefixNode) -> usize {
            let own = usize::from(node.num_queries() > 1 && node.token_len > 0);
            own + node.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// KV tokens covered by shared prefixes, counted once per sharing query
    /// (the "intra-batch shared prefix coverage" numerator of §3.1).
    pub fn shared_token_coverage(&self) -> usize {
        fn walk(node: &PrefixNode) -> usize {
            let own = if node.num_queries() > 1 {
                node.token_len * node.num_queries()
            } else {
                0
            };
            own + node.children.iter().map(walk).sum::<usize>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// A stable fingerprint of the forest structure, used by the lazy-update
    /// mechanism (§5.1) to detect block-table changes across decode steps.
    pub fn fingerprint(&self) -> u64 {
        fn feed(node: &PrefixNode, h: &mut DefaultHasher) {
            node.blocks.hash(h);
            node.token_len.hash(h);
            node.queries.hash(h);
            0xB10C_u16.hash(h);
            for child in &node.children {
                feed(child, h);
            }
        }
        let mut h = DefaultHasher::new();
        self.num_queries.hash(&mut h);
        for root in &self.roots {
            feed(root, &mut h);
        }
        h.finish()
    }

    fn build(tables: &[BlockTable], queries: &[usize], depth: usize) -> Vec<PrefixNode> {
        // Partition queries by their block at `depth`; queries exhausted at
        // this depth become zero-length leaves at the caller's level.
        let mut by_block: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
        let mut nodes = Vec::new();
        for &q in queries {
            match tables[q].blocks().get(depth) {
                Some(&b) => by_block.entry(b).or_default().push(q),
                None => nodes.push(PrefixNode {
                    blocks: Vec::new(),
                    token_len: 0,
                    queries: vec![q],
                    children: Vec::new(),
                }),
            }
        }
        for (_, group) in by_block {
            if group.len() == 1 {
                let q = group[0];
                let run: Vec<BlockId> = tables[q].blocks()[depth..].to_vec();
                let token_len = Self::run_tokens(tables, &[q], depth, run.len());
                nodes.push(PrefixNode {
                    blocks: run,
                    token_len,
                    queries: vec![q],
                    children: Vec::new(),
                });
                continue;
            }
            // Longest common run among the group starting at `depth`.
            let mut lcp = 1;
            'extend: loop {
                let probe = tables[group[0]].blocks().get(depth + lcp);
                let Some(&candidate) = probe else { break };
                for &q in &group[1..] {
                    if tables[q].blocks().get(depth + lcp) != Some(&candidate) {
                        break 'extend;
                    }
                }
                lcp += 1;
            }
            let run: Vec<BlockId> = tables[group[0]].blocks()[depth..depth + lcp].to_vec();
            let token_len = Self::run_tokens(tables, &group, depth, lcp);
            let children = Self::build(tables, &group, depth + lcp);
            nodes.push(PrefixNode {
                blocks: run,
                token_len,
                queries: group,
                children,
            });
        }
        nodes
    }

    /// Tokens covered by blocks `[depth, depth+len)`, taking the minimum over
    /// sharers so a partially filled final block is not over-counted.
    fn run_tokens(tables: &[BlockTable], queries: &[usize], depth: usize, len: usize) -> usize {
        (depth..depth + len)
            .map(|i| {
                queries
                    .iter()
                    .map(|&q| tables[q].tokens_in_block(i))
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(ids: &[u32], tokens: usize) -> BlockTable {
        BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
    }

    #[test]
    fn paper_figure7_structure() {
        // Fig. 7a: 4 queries; q0/q1/q2/q3 share blocks [0]; q0,q1 share [0,1];
        // each query has a private suffix.
        let tables = vec![
            table(&[0, 1, 2], 48),
            table(&[0, 1, 3], 48),
            table(&[0, 4, 5], 48),
            table(&[0, 4, 6, 7], 64),
        ];
        let forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots().len(), 1);
        let root = &forest.roots()[0];
        assert_eq!(root.blocks, vec![BlockId(0)]);
        assert_eq!(root.num_queries(), 4);
        assert_eq!(root.children.len(), 2);
        let left = &root.children[0];
        assert_eq!(left.blocks, vec![BlockId(1)]);
        assert_eq!(left.num_queries(), 2);
        assert_eq!(left.children.len(), 2);
        assert!(left.children.iter().all(PrefixNode::is_leaf));
        // Two shared internal nodes: [0] and [1] ... plus [4].
        assert_eq!(forest.num_shared_nodes(), 3);
    }

    #[test]
    fn disjoint_queries_form_separate_roots() {
        let tables = vec![table(&[0, 1], 32), table(&[2, 3], 32)];
        let forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots().len(), 2);
        assert!(forest.roots().iter().all(PrefixNode::is_leaf));
        assert_eq!(forest.num_shared_nodes(), 0);
        assert_eq!(forest.shared_token_coverage(), 0);
    }

    #[test]
    fn identical_tables_share_everything() {
        let tables = vec![table(&[0, 1, 2], 40), table(&[0, 1, 2], 40)];
        let forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots().len(), 1);
        let root = &forest.roots()[0];
        assert_eq!(root.blocks.len(), 3);
        // 16 + 16 + 8 tokens, shared by both queries.
        assert_eq!(root.token_len, 40);
        assert_eq!(root.children.len(), 2);
        assert!(root
            .children
            .iter()
            .all(|c| c.token_len == 0 && c.is_leaf()));
        assert_eq!(forest.shared_token_coverage(), 80);
    }

    #[test]
    fn leaf_token_length_counts_partial_block() {
        let tables = vec![table(&[0, 1], 20), table(&[0, 2], 28)];
        let forest = PrefixForest::from_block_tables(&tables);
        let root = &forest.roots()[0];
        assert_eq!(root.token_len, 16);
        let mut leaf_lens: Vec<usize> = root.children.iter().map(|c| c.token_len).collect();
        leaf_lens.sort_unstable();
        assert_eq!(leaf_lens, vec![4, 12]);
    }

    #[test]
    fn fingerprint_changes_with_structure() {
        let a = PrefixForest::from_block_tables(&[table(&[0, 1], 32), table(&[0, 2], 32)]);
        let b = PrefixForest::from_block_tables(&[table(&[0, 1], 32), table(&[0, 1], 32)]);
        let a2 = PrefixForest::from_block_tables(&[table(&[0, 1], 32), table(&[0, 2], 32)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn node_count_is_linear_in_queries() {
        let tables: Vec<BlockTable> = (0..64).map(|q| table(&[0, 1, 100 + q], 48)).collect();
        let forest = PrefixForest::from_block_tables(&tables);
        // One shared root + 64 leaves.
        assert_eq!(forest.num_nodes(), 65);
        assert_eq!(forest.num_queries(), 64);
    }

    #[test]
    fn empty_batch_is_empty_forest() {
        let forest = PrefixForest::from_block_tables(&[]);
        assert!(forest.roots().is_empty());
        assert_eq!(forest.num_nodes(), 0);
    }
}
