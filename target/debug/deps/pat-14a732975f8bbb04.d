/root/repo/target/debug/deps/pat-14a732975f8bbb04.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpat-14a732975f8bbb04.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
