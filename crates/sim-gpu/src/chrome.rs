//! Chrome trace-event export.
//!
//! Converts an [`ExecutionTrace`] into the Trace Event Format consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one track per
//! SM, one complete event (`ph: "X"`) per CTA, kernels as a separate process
//! row. Useful for inspecting the Fig. 15 pipelines interactively.

use crate::trace::ExecutionTrace;

/// Serializes the trace into Trace Event Format JSON (object form).
///
/// Timestamps are microseconds (the format's native unit); SMs map to
/// thread ids under process 0, kernels to process 1 keyed by stream. The
/// events sit under `traceEvents`, and `otherData.knobs` records the
/// output-scoped knob snapshot (`sim_core::knobs`) so every exported
/// trace carries the configuration that produced it.
///
/// # Examples
///
/// ```
/// use sim_gpu::{chrome_trace_json, ExecutionTrace};
///
/// let json = chrome_trace_json(&ExecutionTrace::default());
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"knobs\""));
/// ```
pub fn chrome_trace_json(trace: &ExecutionTrace) -> String {
    let mut events = Vec::new();
    for cta in &trace.ctas {
        events.push(format!(
            concat!(
                "{{\"name\":{},\"cat\":\"cta\",\"ph\":\"X\",\"ts\":{:.3},",
                "\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"stream\":{},\"tag\":{}}}}}"
            ),
            json_string(&cta.kernel),
            cta.start_ns / 1000.0,
            (cta.end_ns - cta.start_ns) / 1000.0,
            cta.sm,
            cta.stream,
            cta.tag,
        ));
    }
    for kernel in &trace.kernels {
        events.push(format!(
            concat!(
                "{{\"name\":{},\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":{:.3},",
                "\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"launch_us\":{:.3}}}}}"
            ),
            json_string(&kernel.label),
            kernel.start_ns / 1000.0,
            (kernel.end_ns - kernel.start_ns) / 1000.0,
            kernel.stream,
            kernel.launch_ns / 1000.0,
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"otherData\":{{\"knobs\":{}}}}}",
        events.join(","),
        sim_core::knobs::snapshot().artifact_json(),
    )
}

/// Minimal JSON string escaping for labels.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CtaSpan, KernelSpan};

    fn sample() -> ExecutionTrace {
        ExecutionTrace {
            ctas: vec![CtaSpan {
                stream: 1,
                kernel: "attn(m=16,n=64)".into(),
                tag: 7,
                sm: 3,
                start_ns: 1000.0,
                end_ns: 5000.0,
            }],
            kernels: vec![KernelSpan {
                stream: 1,
                kernel_index: 0,
                label: "attn(m=16,n=64)".into(),
                launch_ns: 0.0,
                start_ns: 1000.0,
                end_ns: 5000.0,
            }],
        }
    }

    #[test]
    fn events_carry_sm_and_duration() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"dur\":4.000"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("attn(m=16,n=64)"));
    }

    #[test]
    fn output_is_parseable_json() {
        // No serde dependency here; check balance and quoting manually.
        let json = chrome_trace_json(&sample());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_trace_still_carries_the_knob_snapshot() {
        let json = chrome_trace_json(&ExecutionTrace::default());
        assert!(json.starts_with("{\"traceEvents\":[]"), "{json}");
        assert!(json.contains("\"otherData\":{\"knobs\":{"), "{json}");
        assert!(json.contains("\"PAT_GPU_MODEL\""), "{json}");
    }
}
