/root/repo/target/debug/examples/tile_explorer-26c2aece4e337839.d: examples/tile_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libtile_explorer-26c2aece4e337839.rmeta: examples/tile_explorer.rs Cargo.toml

examples/tile_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
