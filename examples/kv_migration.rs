//! Warm-prefix migration: failover without paying for the prefill twice.
//!
//! A three-replica fleet serves a toolagent stream whose requests share a
//! couple dozen hot tool prefixes. The crash script is chosen to make the
//! cold-failover cost visible: replica 0 dies at t = 3 s and revives
//! *cold* at 5 s; then replica 1 dies at 6 s. Its orphans fail over onto
//! the freshly revived, empty replica 0 (least outstanding) — which holds
//! none of the warm prefixes that the untouched replica 2 still does.
//!
//! The same stream and crashes run twice:
//!
//! * **cold failover** — every orphan re-prefills its whole prompt on the
//!   cold target, from token zero;
//! * **migration** — the controller finds the donor with the largest
//!   resident prefix overlap, streams those KV blocks over a 200 Gb RDMA
//!   link (modelled as `latency + bytes/bandwidth` with NIC
//!   serialization), the target ingests them without recompute, and only
//!   the uncovered suffix pays prefill. When moving the blocks would
//!   finish later than recomputing them, the controller falls back to the
//!   cold path — migration never makes a request slower.
//!
//! Run with `cargo run --release --example kv_migration`. Pass
//! `--trace out.json` to dump the migration run's event-queue timeline as
//! a Chrome trace — the `transfer` spans (with real durations) and the
//! `migrate-ingest` instants show the KV movement plane at work (open in
//! `chrome://tracing` or Perfetto).

use controller::{timeline_chrome_json, window_stats, FaultEvent, FaultKind, FaultPlan};
use pat::prelude::*;
use workloads::{generate_trace, TraceConfig};

const REPLICAS: usize = 3;
const CRASH0_AT_S: f64 = 3.0;
const RESTART0_AFTER_S: f64 = 2.0;
const CRASH1_AT_S: f64 = 6.0;
const RESTART1_AFTER_S: f64 = 6.0;

/// Parses `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args
                .next()
                .expect("--trace requires a path, e.g. --trace out.json");
            return Some(path);
        }
    }
    None
}

fn faults() -> FaultPlan {
    FaultPlan::scripted(vec![
        FaultEvent {
            at_s: CRASH0_AT_S,
            kind: FaultKind::Crash {
                replica: 0,
                restart_after_s: Some(RESTART0_AFTER_S),
            },
        },
        FaultEvent {
            at_s: CRASH1_AT_S,
            kind: FaultKind::Crash {
                replica: 1,
                restart_after_s: Some(RESTART1_AFTER_S),
            },
        },
    ])
}

fn main() {
    let trace = generate_trace(TraceConfig {
        kind: TraceKind::ToolAgent,
        rate_per_s: 8.0,
        duration_s: 14.0,
        seed: 11,
    });
    println!(
        "{} requests over 14 s; replica 0 dies at {CRASH0_AT_S:.0} s and revives cold at \
         {:.0} s; replica 1 dies at {CRASH1_AT_S:.0} s — its orphans land on the cold replica",
        trace.len(),
        CRASH0_AT_S + RESTART0_AFTER_S,
    );

    let engine = ServingConfig::single_gpu(ModelSpec::llama3_8b());
    let cold = FleetController::with_lazy_pat(
        ControllerConfig::managed(REPLICAS, engine.clone()),
        Box::new(LeastOutstanding::new()),
        faults(),
    )
    .run(&trace);

    let mut config = ControllerConfig::managed(REPLICAS, engine);
    config.transfer = Some(TransferConfig::migration(FleetTopology::uniform(
        REPLICAS,
        LinkSpec::rdma_200g(),
    )));
    let migrated =
        FleetController::with_lazy_pat(config, Box::new(LeastOutstanding::new()), faults())
            .run(&trace);

    println!("\ncontrol-plane timeline (migration fleet):");
    for e in &migrated.events {
        println!("  t={:>6.2}s  {}", e.t_s, e.what);
    }

    println!(
        "\n{:<14} {:>9} {:>9} {:>13} {:>13} {:>11} {:>13}",
        "fleet",
        "completed",
        "failovers",
        "refilled cold",
        "after-migr.",
        "migrated",
        "P99 TTFT(ms)"
    );
    for (name, r) in [("cold-failover", &cold), ("migration", &migrated)] {
        println!(
            "{name:<14} {:>9} {:>9} {:>13} {:>13} {:>11} {:>13.0}",
            r.completed,
            r.failovers,
            r.refilled_cold,
            r.refilled_after_partial_migration,
            r.migrated_prefix_tokens,
            r.fleet.p99_ttft_ms,
        );
    }

    let outage_to = CRASH1_AT_S + RESTART1_AFTER_S;
    let c = window_stats(&trace, &cold, CRASH0_AT_S, outage_to);
    let m = window_stats(&trace, &migrated, CRASH0_AT_S, outage_to);
    println!(
        "\nthrough the outages ({CRASH0_AT_S:.0}-{outage_to:.0} s): goodput {:.1}% cold vs \
         {:.1}% migrated, P99 TTFT {:.0} vs {:.0} ms",
        100.0 * c.goodput,
        100.0 * m.goodput,
        c.p99_ttft_ms,
        m.p99_ttft_ms,
    );
    println!(
        "{} migrations moved {} prefix tokens ({:.1} MB) over the wire; the cold fleet \
         recomputed {} tokens, the migrating fleet only {}",
        migrated.migrations,
        migrated.migrated_prefix_tokens,
        migrated.kv_transfer_bytes as f64 / 1e6,
        cold.refilled_prefill_tokens,
        migrated.refilled_prefill_tokens,
    );

    if let Some(path) = trace_path() {
        std::fs::write(&path, timeline_chrome_json(&migrated.timeline))
            .expect("write chrome trace");
        let transfers = migrated
            .timeline
            .iter()
            .filter(|e| e.kind == "transfer")
            .count();
        println!(
            "\nwrote {} timeline events to {path} ({transfers} transfer spans; load in \
             chrome://tracing)",
            migrated.timeline.len()
        );
    }
}
