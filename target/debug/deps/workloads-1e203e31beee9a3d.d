/root/repo/target/debug/deps/workloads-1e203e31beee9a3d.d: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

/root/repo/target/debug/deps/workloads-1e203e31beee9a3d: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrival.rs:
crates/workloads/src/io.rs:
crates/workloads/src/requests.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tenants.rs:
crates/workloads/src/traces.rs:
