//! Property tests of the GPU engine itself: work conservation, resource
//! bounds, and stream semantics under randomized CTA populations.

use proptest::prelude::*;
use sim_gpu::{CtaResources, CtaWork, Engine, GpuSpec, KernelSpec, StreamSpec};

fn res(smem_kb: usize, regs: usize, threads: usize) -> CtaResources {
    CtaResources {
        smem_bytes: smem_kb * 1024,
        regs_per_thread: regs,
        threads,
    }
}

prop_compose! {
    fn random_kernel()(
        n_ctas in 1usize..64,
        smem_kb in 8usize..96,
        regs in 32usize..128,
        bytes_exp in 12u32..22,
        cap in 8.0f64..300.0,
        floor in 0.0f64..50_000.0,
        tail in 0.0f64..2_000.0,
    ) -> KernelSpec {
        KernelSpec {
            label: format!("k(smem={smem_kb})"),
            resources: res(smem_kb, regs, 128),
            ctas: (0..n_ctas)
                .map(|i| CtaWork {
                    tag: i as u64,
                    dram_bytes: 2f64.powi(bytes_exp as i32),
                    l2_bytes: 0.0,
                    min_exec_ns: floor,
                    rate_cap: cap,
                    tail_ns: tail,
                })
                .collect(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Makespan is never below the bandwidth floor, and utilization never
    /// exceeds the achievable DRAM efficiency.
    #[test]
    fn work_is_conserved(kernels in prop::collection::vec(random_kernel(), 1..4)) {
        let spec = GpuSpec::a100_sxm4_80gb();
        let engine = Engine::new(spec.clone());
        let total_bytes: f64 = kernels
            .iter()
            .flat_map(|k| k.ctas.iter())
            .map(|c| c.dram_bytes)
            .sum();
        let streams: Vec<StreamSpec> =
            kernels.into_iter().map(|k| StreamSpec { kernels: vec![k] }).collect();
        let run = engine.run(streams).expect("feasible kernels");
        let floor = total_bytes / (spec.global_bandwidth * spec.dram_efficiency);
        prop_assert!(run.total_ns >= floor * 0.999, "{} < {}", run.total_ns, floor);
        prop_assert!(run.bandwidth_utilization <= spec.dram_efficiency + 1e-9);
        prop_assert!((run.dram_bytes - total_bytes).abs() < 1.0);
    }

    /// Every CTA executes exactly once and respects its floor and tail.
    #[test]
    fn every_cta_runs_once_with_its_floor(kernel in random_kernel()) {
        let spec = GpuSpec::a100_sxm4_80gb();
        let engine = Engine::new(spec);
        let n = kernel.ctas.len();
        let floor = kernel.ctas[0].min_exec_ns;
        let run = engine
            .run(vec![StreamSpec { kernels: vec![kernel] }])
            .expect("feasible kernel");
        prop_assert_eq!(run.trace.ctas.len(), n);
        let mut tags: Vec<u64> = run.trace.ctas.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), n, "duplicate or missing CTAs");
        for span in &run.trace.ctas {
            prop_assert!(span.end_ns - span.start_ns >= floor - 1e-6);
        }
    }

    /// Kernels within one stream never overlap; a later kernel starts after
    /// the earlier one ends (plus launch overhead).
    #[test]
    fn stream_kernels_serialize(a in random_kernel(), b in random_kernel()) {
        let spec = GpuSpec::a100_sxm4_80gb();
        let launch = spec.kernel_launch_ns;
        let engine = Engine::new(spec);
        let run = engine
            .run(vec![StreamSpec { kernels: vec![a, b] }])
            .expect("feasible kernels");
        prop_assert_eq!(run.trace.kernels.len(), 2);
        let first = &run.trace.kernels[0];
        let second = &run.trace.kernels[1];
        prop_assert!(
            second.launch_ns >= first.end_ns + launch - 1e-6,
            "second kernel launched at {} before {} + {launch}",
            second.launch_ns,
            first.end_ns
        );
    }

    /// SM residency never exceeds shared-memory capacity at any instant
    /// (checked at every CTA start event).
    #[test]
    fn smem_capacity_is_respected(kernel in random_kernel()) {
        let spec = GpuSpec::a100_sxm4_80gb();
        let smem_per_cta = kernel.resources.smem_bytes;
        let engine = Engine::new(spec.clone());
        let run = engine
            .run(vec![StreamSpec { kernels: vec![kernel] }])
            .expect("feasible kernel");
        for probe in &run.trace.ctas {
            let resident = run
                .trace
                .ctas
                .iter()
                .filter(|c| {
                    c.sm == probe.sm
                        && c.start_ns <= probe.start_ns + 1e-9
                        && c.end_ns > probe.start_ns + 1e-9
                })
                .count();
            prop_assert!(
                resident * smem_per_cta <= spec.smem_per_sm,
                "{resident} CTAs x {smem_per_cta} B on one SM"
            );
        }
    }
}
