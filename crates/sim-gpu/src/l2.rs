//! L2 cache reuse model.
//!
//! Redundant KV loads (the one-query-per-CTA pattern of §3.2) may be partially
//! served by the 40 MB L2 instead of HBM. The paper's measurements (Fig. 6a)
//! show L2 only partially hides the redundancy because the re-accessed working
//! set exceeds L2 capacity and concurrently executing CTAs drift apart. We
//! model this two ways:
//!
//! * [`L2Simulator`] replays a block-granular access sequence through an LRU
//!   cache and reports exactly which bytes were served from L2 vs DRAM.
//! * [`reuse_fraction`] is the closed-form footprint approximation used by the
//!   timing fast path: a re-access hits L2 with probability
//!   `min(1, capacity / working-set footprint)`.

use std::collections::BTreeMap;

/// Bytes served by each memory level for an access sequence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficSplit {
    /// Bytes that had to come from global memory (DRAM).
    pub dram_bytes: f64,
    /// Bytes served by the L2 cache.
    pub l2_bytes: f64,
}

impl TrafficSplit {
    /// Total bytes requested.
    pub fn total(&self) -> f64 {
        self.dram_bytes + self.l2_bytes
    }

    /// Fraction of requested bytes served by L2 (0 when nothing was moved).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.l2_bytes / total
        }
    }

    /// Accumulates another split into this one.
    pub fn merge(&mut self, other: TrafficSplit) {
        self.dram_bytes += other.dram_bytes;
        self.l2_bytes += other.l2_bytes;
    }
}

/// Closed-form probability that a *re-access* of previously touched data hits
/// L2, given the working-set footprint competing for the cache.
///
/// # Examples
///
/// ```
/// use sim_gpu::l2::reuse_fraction;
///
/// assert_eq!(reuse_fraction(40e6, 10e6), 1.0); // fits entirely
/// assert!((reuse_fraction(40e6, 160e6) - 0.25).abs() < 1e-12);
/// ```
pub fn reuse_fraction(l2_capacity_bytes: f64, footprint_bytes: f64) -> f64 {
    if footprint_bytes <= 0.0 {
        1.0
    } else {
        (l2_capacity_bytes / footprint_bytes).clamp(0.0, 1.0)
    }
}

/// An LRU cache simulator at KV-block granularity.
///
/// Keys identify cache lines/blocks; each access states its size in bytes.
/// The simulator evicts least-recently-used blocks when capacity is exceeded.
///
/// # Examples
///
/// ```
/// use sim_gpu::l2::L2Simulator;
///
/// let mut l2 = L2Simulator::new(1024);
/// assert_eq!(l2.access(1, 512.0).l2_bytes, 0.0); // cold miss
/// assert_eq!(l2.access(1, 512.0).dram_bytes, 0.0); // hit
/// ```
#[derive(Debug, Clone)]
pub struct L2Simulator {
    capacity: u64,
    used: u64,
    /// block key -> (size, last-use tick). A BTreeMap so the eviction scan
    /// iterates in key order: LRU ties (impossible today — ticks are
    /// unique — but structurally guaranteed) resolve deterministically
    /// (sim-lint R2).
    resident: BTreeMap<u64, (u64, u64)>,
    tick: u64,
    totals: TrafficSplit,
}

impl L2Simulator {
    /// Creates an empty cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        L2Simulator {
            capacity,
            used: 0,
            resident: BTreeMap::new(),
            tick: 0,
            totals: TrafficSplit::default(),
        }
    }

    /// Accesses block `key` of `bytes` bytes, returning where it was served
    /// from. Blocks larger than the cache bypass it entirely.
    pub fn access(&mut self, key: u64, bytes: f64) -> TrafficSplit {
        self.tick += 1;
        let size = bytes.max(0.0) as u64;
        let split = if let Some(entry) = self.resident.get_mut(&key) {
            entry.1 = self.tick;
            TrafficSplit {
                dram_bytes: 0.0,
                l2_bytes: bytes,
            }
        } else {
            if size <= self.capacity {
                while self.used + size > self.capacity {
                    self.evict_lru();
                }
                self.resident.insert(key, (size, self.tick));
                self.used += size;
            }
            TrafficSplit {
                dram_bytes: bytes,
                l2_bytes: 0.0,
            }
        };
        self.totals.merge(split);
        split
    }

    /// Cumulative traffic split over all accesses so far.
    pub fn totals(&self) -> TrafficSplit {
        self.totals
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    fn evict_lru(&mut self) {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, (_, tick))| *tick)
            .map(|(&k, &(size, _))| (k, size));
        if let Some((key, size)) = victim {
            self.resident.remove(&key);
            self.used -= size;
        } else {
            // Nothing resident; avoid an infinite loop on zero capacity.
            debug_assert_eq!(self.used, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_within_capacity_hits() {
        let mut l2 = L2Simulator::new(10_000);
        for round in 0..3 {
            for key in 0..5u64 {
                let split = l2.access(key, 1000.0);
                if round == 0 {
                    assert_eq!(split.dram_bytes, 1000.0);
                } else {
                    assert_eq!(split.l2_bytes, 1000.0);
                }
            }
        }
        let totals = l2.totals();
        assert_eq!(totals.dram_bytes, 5000.0);
        assert_eq!(totals.l2_bytes, 10_000.0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut l2 = L2Simulator::new(4_000);
        // 8 blocks of 1000 bytes cycled in LRU order always miss.
        for _ in 0..4 {
            for key in 0..8u64 {
                let split = l2.access(key, 1000.0);
                assert_eq!(split.l2_bytes, 0.0);
            }
        }
        assert_eq!(l2.totals().hit_rate(), 0.0);
    }

    #[test]
    fn oversized_block_bypasses() {
        let mut l2 = L2Simulator::new(1_000);
        let s1 = l2.access(7, 5_000.0);
        let s2 = l2.access(7, 5_000.0);
        assert_eq!(s1.dram_bytes, 5_000.0);
        assert_eq!(s2.dram_bytes, 5_000.0);
        assert_eq!(l2.used_bytes(), 0);
    }

    #[test]
    fn reuse_fraction_clamps() {
        assert_eq!(reuse_fraction(10.0, 0.0), 1.0);
        assert_eq!(reuse_fraction(10.0, 5.0), 1.0);
        assert!((reuse_fraction(10.0, 40.0) - 0.25).abs() < 1e-12);
    }

    /// R2 regression: replaying the same access sequence twice must produce
    /// bit-identical traffic splits and residency — eviction may not depend
    /// on container iteration order.
    #[test]
    fn replay_is_deterministic_across_runs() {
        let drive = || {
            let mut l2 = L2Simulator::new(4_000);
            let mut splits = Vec::new();
            for round in 0..3u64 {
                for key in 0..7u64 {
                    splits.push(l2.access(key * 31 % 7, 900.0 + (round * 100) as f64));
                }
            }
            (splits, l2.totals(), l2.used_bytes())
        };
        let a = drive();
        let b = drive();
        assert_eq!(a.0, b.0, "per-access split sequence must be identical");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn eviction_keeps_recently_used() {
        let mut l2 = L2Simulator::new(2_000);
        l2.access(1, 1000.0);
        l2.access(2, 1000.0);
        l2.access(1, 1000.0); // refresh 1
        l2.access(3, 1000.0); // evicts 2
        assert_eq!(l2.access(1, 1000.0).l2_bytes, 1000.0);
        assert_eq!(l2.access(2, 1000.0).dram_bytes, 1000.0);
    }
}
