//! Fleet resilience: what the control plane buys when a replica dies.
//!
//! A three-replica fleet serves a steady toolagent stream. At t = 5 s,
//! replica 0 crashes — its warm prefix cache and everything in flight die
//! with it — and comes back cold 6 s later. The same stream and the same
//! crash are run twice:
//!
//! * **managed** — health checks notice the crash within one tick, strand-
//!   ed requests fail over to the survivors (re-prefilling whatever prefix
//!   overlap the new replica lacks), and new arrivals route around the
//!   hole;
//! * **static** — the classic fixed fleet: round-robin keeps addressing
//!   the dead replica, whose share of the traffic simply waits out the
//!   outage (in-flight work at the crash is lost outright).
//!
//! Run with `cargo run --release --example fleet_resilience`. Pass
//! `--trace out.json` to also dump the managed fleet's event-queue
//! timeline as a Chrome trace (open in `chrome://tracing` or Perfetto).

use controller::{
    result_chrome_json, window_stats, ControllerConfig, FaultEvent, FaultKind, FaultPlan,
    FleetController,
};
use pat::prelude::*;
use workloads::{generate_trace, TraceConfig};

const CRASH_AT_S: f64 = 5.0;
const RESTART_AFTER_S: f64 = 6.0;

/// Parses `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args
                .next()
                .expect("--trace requires a path, e.g. --trace out.json");
            return Some(path);
        }
    }
    None
}

fn main() {
    let trace = generate_trace(TraceConfig {
        kind: TraceKind::ToolAgent,
        rate_per_s: 9.0,
        duration_s: 15.0,
        seed: 7,
    });
    let faults = FaultPlan::scripted(vec![FaultEvent {
        at_s: CRASH_AT_S,
        kind: FaultKind::Crash {
            replica: 0,
            restart_after_s: Some(RESTART_AFTER_S),
        },
    }]);
    println!(
        "{} requests over 15 s; replica 0 dies at {CRASH_AT_S:.0} s, returns cold at {:.0} s",
        trace.len(),
        CRASH_AT_S + RESTART_AFTER_S
    );

    let engine = ServingConfig::single_gpu(ModelSpec::llama3_8b());
    let managed = FleetController::with_lazy_pat(
        ControllerConfig::managed(3, engine.clone()),
        Box::new(PrefixAffinity::new()),
        faults.clone(),
    )
    .run(&trace);
    let static_fleet = FleetController::with_lazy_pat(
        ControllerConfig::static_fleet(3, engine),
        Box::new(RoundRobin::new()),
        faults,
    )
    .run(&trace);

    println!("\ncontrol-plane timeline (managed fleet):");
    for e in &managed.events {
        println!("  t={:>6.2}s  {}", e.t_s, e.what);
    }

    println!(
        "\n{:<9} {:>9} {:>6} {:>6} {:>9} {:>13} {:>14}",
        "fleet", "completed", "lost", "shed", "goodput", "P99 TTFT(ms)", "refill tokens"
    );
    for (name, r) in [("managed", &managed), ("static", &static_fleet)] {
        println!(
            "{name:<9} {:>9} {:>6} {:>6} {:>8.1}% {:>13.0} {:>14}",
            r.completed,
            r.lost,
            r.shed,
            100.0 * r.goodput,
            r.fleet.p99_ttft_ms,
            r.refilled_prefill_tokens,
        );
    }

    let outage_to = CRASH_AT_S + RESTART_AFTER_S;
    let m = window_stats(&trace, &managed, CRASH_AT_S, outage_to);
    let s = window_stats(&trace, &static_fleet, CRASH_AT_S, outage_to);
    println!(
        "\nthrough the outage ({CRASH_AT_S:.0}-{outage_to:.0} s): goodput {:.1}% vs {:.1}%, \
         P99 TTFT {:.0} vs {:.0} ms",
        100.0 * m.goodput,
        100.0 * s.goodput,
        m.p99_ttft_ms,
        s.p99_ttft_ms,
    );
    println!(
        "failover replayed {} requests at the cost of {} re-prefilled prefix tokens — \
         the price of losing a warm PAT cache",
        managed.failovers, managed.refilled_prefill_tokens
    );

    if let Some(path) = trace_path() {
        std::fs::write(&path, result_chrome_json(&managed)).expect("write chrome trace");
        println!(
            "\nwrote {} timeline events to {path} (load in chrome://tracing)",
            managed.timeline.len()
        );
    }
}
