/root/repo/target/debug/deps/fig18_cluster_routing-f3935a4c43c235ff.d: crates/bench/benches/fig18_cluster_routing.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_cluster_routing-f3935a4c43c235ff.rmeta: crates/bench/benches/fig18_cluster_routing.rs Cargo.toml

crates/bench/benches/fig18_cluster_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
