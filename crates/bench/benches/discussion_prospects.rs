//! §9 "Prospects and Limitations" — two quantified discussion points:
//!
//! 1. **Hardware compute-to-bandwidth ratio.** As GPUs become more
//!    compute-dominant (V100 → B200: 139 → 312 FLOP/Byte), memory-focused
//!    designs like PAT become increasingly valuable. We sweep four
//!    generations and report PAT's speedup over FlashAttention on the same
//!    shared-prefix batch.
//!
//! 2. **Model architecture.** PAT's gains are large for KV-retaining
//!    attention (MHA, GQA) and shrink as the KV state is compressed
//!    (MQA / MLA-like single-kv-head, reduced head dim): less KV traffic
//!    means less redundancy to eliminate.

use attn_kernel::{simulate_plan, AttentionBackend};
use attn_math::HeadConfig;
use baselines::{FlashAttention, FlashInfer};
use pat_bench::{banner, save_json};
use pat_core::PatBackend;
use serde::Serialize;
use serving::{latency_breakdown, ModelSpec};
use sim_gpu::GpuSpec;
use workloads::BatchSpec;

#[derive(Serialize)]
struct HwRow {
    device: String,
    flops_per_byte: f64,
    pat_us: f64,
    fa_us: f64,
    speedup: f64,
    attention_share_pct: f64,
}

#[derive(Serialize)]
struct ArchRow {
    architecture: String,
    kv_bytes_per_token: usize,
    pat_us: f64,
    baseline_us: f64,
    saved_us: f64,
}

fn vs_backend(
    batch: &attn_kernel::DecodeBatch,
    spec: &GpuSpec,
    baseline: &dyn AttentionBackend,
) -> (f64, f64) {
    let pat = simulate_plan(batch, &PatBackend::new().plan(batch, spec), spec).unwrap();
    let base = simulate_plan(batch, &baseline.plan(batch, spec), spec).unwrap();
    (pat.total_ns / 1000.0, base.total_ns / 1000.0)
}

fn main() {
    let workload = BatchSpec::new(vec![1, 4, 64], vec![2048, 512, 256]);

    banner("§9(1) — PAT benefit across GPU generations (B=[1,4,64], L=[2048,512,256])");
    println!(
        "{:<18} {:>11} {:>11} {:>11} {:>9} {:>16}",
        "device", "FLOP/Byte", "PAT (us)", "FA (us)", "speedup", "attn share @8k"
    );
    let mut hw_rows = Vec::new();
    for spec in [
        GpuSpec::v100_sxm2_32gb(),
        GpuSpec::a100_sxm4_80gb(),
        GpuSpec::h100_sxm5_80gb(),
        GpuSpec::b200_sxm_192gb(),
    ] {
        let batch = workload.build(HeadConfig::new(32, 8, 128));
        let (pat_us, fa_us) = vs_backend(&batch, &spec, &FlashAttention::new());
        // Decode attention's share of a full decode step (Llama-3-8B,
        // batch 64, 8K context) on this generation: the motivation metric.
        let share =
            latency_breakdown(&ModelSpec::llama3_8b(), &spec, 64, &[8192])[0].attention_fraction;
        println!(
            "{:<18} {:>11.0} {:>11.1} {:>11.1} {:>8.2}x {:>15.1}%",
            spec.name,
            spec.flops_per_byte(),
            pat_us,
            fa_us,
            fa_us / pat_us,
            share * 100.0
        );
        hw_rows.push(HwRow {
            device: spec.name.to_string(),
            flops_per_byte: spec.flops_per_byte(),
            pat_us,
            fa_us,
            speedup: fa_us / pat_us,
            attention_share_pct: share * 100.0,
        });
    }
    println!(
        "
note: the raw PAT-vs-FA speedup shrinks on newer parts because their much"
    );
    println!("larger L2 absorbs more of FA's redundancy; the memory-bound attention share");
    println!("of the decode step stays dominant, which is §9's actual argument.");

    banner("§9(2) — PAT benefit across attention architectures (A100, vs GQA-aware FlashInfer)");
    println!(
        "{:<26} {:>14} {:>12} {:>16} {:>12}",
        "architecture", "KV B/token", "PAT (us)", "FlashInfer (us)", "saved (us)"
    );
    let mut arch_rows = Vec::new();
    let spec = GpuSpec::a100_sxm4_80gb();
    for (label, head) in [
        ("MHA 32/32 d128", HeadConfig::new(32, 32, 128)),
        ("GQA 32/8 d128", HeadConfig::new(32, 8, 128)),
        ("MQA 32/1 d128", HeadConfig::new(32, 1, 128)),
        ("MLA-like 32/1 d64", HeadConfig::new(32, 1, 64)),
    ] {
        let batch = workload.build(head);
        let (pat_us, base_us) = vs_backend(&batch, &spec, &FlashInfer::new());
        println!(
            "{:<26} {:>14} {:>12.1} {:>16.1} {:>12.1}",
            label,
            head.kv_bytes_per_token(2),
            pat_us,
            base_us,
            base_us - pat_us
        );
        arch_rows.push(ArchRow {
            architecture: label.to_string(),
            kv_bytes_per_token: head.kv_bytes_per_token(2),
            pat_us,
            baseline_us: base_us,
            saved_us: base_us - pat_us,
        });
    }
    println!("\npaper §9: benefits shrink for architectures that compress or remove KV");
    println!("state (MLA, linear attention, MLKV) — the absolute time PAT saves per");
    println!("attention call drops with the KV footprint.");
    save_json("discussion_prospects", &(&hw_rows, &arch_rows)).expect("persist bench results");
}
