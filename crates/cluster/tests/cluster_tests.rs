//! Integration tests for the cluster simulator: single-replica equivalence
//! with the plain serving engine, routing-output invariance, and the
//! qualitative behavior of each routing policy.

use cluster::{
    Cluster, ClusterConfig, ConsistentHashPrefix, FleetRow, LeastOutstanding, PrefixAffinity,
    RoundRobin, Router,
};
use pat_core::LazyPat;
use proptest::prelude::*;
use serving::{simulate_serving, ModelSpec, ServingConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use workloads::{generate_trace, Request, TraceConfig, TraceKind};

fn policies() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(LeastOutstanding::new()),
        Box::new(ConsistentHashPrefix::default()),
        Box::new(PrefixAffinity::new()),
    ]
}

fn engine_config() -> ServingConfig {
    ServingConfig::single_gpu(ModelSpec::llama3_8b())
}

/// The simulator's decode output is a pure function of the request: the
/// engine emits exactly `produced` tokens whose identity is determined by
/// the prompt. This digest stands in for the decoded text.
fn output_digest(request: &Request, produced: usize) -> u64 {
    let mut h = DefaultHasher::new();
    request.prompt.to_tokens().hash(&mut h);
    produced.hash(&mut h);
    h.finish()
}

#[test]
fn one_replica_cluster_matches_single_engine_bit_for_bit() {
    let requests = generate_trace(TraceConfig {
        kind: TraceKind::Conversation,
        rate_per_s: 4.0,
        duration_s: 6.0,
        seed: 3,
    });
    let mut pat = LazyPat::new();
    let reference = simulate_serving(&engine_config(), &mut pat, &requests);
    assert!(reference.metrics.completed > 0);
    for router in policies() {
        let name = router.name();
        let config = ClusterConfig::new(1, engine_config());
        let result = Cluster::with_lazy_pat(&config, router).run(&requests);
        let replica = &result.per_replica[0].result;
        // Exact f64 equality throughout: the cluster driver must execute the
        // identical step sequence, not an approximation of it.
        assert_eq!(
            replica.per_request, reference.per_request,
            "{name}: per-request metrics"
        );
        assert_eq!(
            replica.decode_steps, reference.decode_steps,
            "{name}: decode steps"
        );
        assert_eq!(
            replica.preemptions, reference.preemptions,
            "{name}: preemptions"
        );
        assert_eq!(
            replica.unfinished, reference.unfinished,
            "{name}: unfinished"
        );
        assert!(
            replica.metrics.mean_tpot_ms == reference.metrics.mean_tpot_ms
                && replica.metrics.p99_tpot_ms == reference.metrics.p99_tpot_ms
                && replica.metrics.mean_ttft_ms == reference.metrics.mean_ttft_ms,
            "{name}: aggregate metrics drifted"
        );
        assert_eq!(
            result.fleet.completed, reference.metrics.completed,
            "{name}"
        );
        assert_eq!(
            result.load_imbalance, 0.0,
            "{name}: one replica is trivially balanced"
        );
        assert_eq!(
            result.duplicated_kv_blocks, 0,
            "{name}: no peers to duplicate against"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn routing_policy_never_changes_any_decoded_output(
        seed in 0u64..1_000,
        replicas in 1usize..4,
        kind_ix in 0usize..4,
    ) {
        let kind = TraceKind::all()[kind_ix];
        let requests = generate_trace(TraceConfig {
            kind,
            rate_per_s: 3.0,
            duration_s: 3.0,
            seed,
        });
        let mut reference: Option<BTreeMap<u64, (usize, u64)>> = None;
        for router in policies() {
            let name = router.name();
            let config = ClusterConfig::new(replicas, engine_config());
            let result = Cluster::with_lazy_pat(&config, router).run(&requests);
            let outputs: BTreeMap<u64, (usize, u64)> = result
                .per_replica
                .iter()
                .flat_map(|r| r.result.per_request.iter())
                .map(|m| {
                    let request = &requests[m.request_id as usize];
                    (m.request_id, (m.decode_tokens, output_digest(request, m.decode_tokens)))
                })
                .collect();
            // Every request completes exactly once somewhere in the fleet...
            prop_assert_eq!(outputs.len(), requests.len(), "{} lost requests", name);
            // ...and emits the same decoded output no matter the placement.
            match &reference {
                None => reference = Some(outputs),
                Some(expected) => prop_assert_eq!(&outputs, expected, "{} changed outputs", name),
            }
        }
    }
}

/// Zero-completion and single-replica runs must produce finite metrics all
/// the way through `FleetRow` — no NaN from empty means or percentiles.
#[test]
fn empty_and_single_replica_fleet_metrics_are_finite() {
    for (replicas, requests) in [
        (1usize, Vec::new()),
        (4, Vec::new()),
        (
            1,
            generate_trace(TraceConfig {
                kind: TraceKind::Conversation,
                rate_per_s: 1.0,
                duration_s: 2.0,
                seed: 11,
            }),
        ),
    ] {
        let config = ClusterConfig::new(replicas, engine_config());
        let result = Cluster::with_lazy_pat(&config, Box::new(RoundRobin::new())).run(&requests);
        let row = FleetRow::new("round-robin", "probe", 0.0, &result);
        for v in [
            row.mean_ttft_ms,
            row.mean_tpot_ms,
            row.p99_tpot_ms,
            row.fleet_hit_rate,
            row.load_imbalance,
            row.duplicated_kv_mib,
        ] {
            assert!(
                v.is_finite(),
                "non-finite metric in {replicas}-replica run of {} requests: {row:?}",
                requests.len()
            );
        }
        assert_eq!(row.completed, requests.len());
    }
}

#[test]
fn round_robin_balances_and_consistent_hash_pins_prefix_families() {
    let requests = generate_trace(TraceConfig {
        kind: TraceKind::ToolAgent,
        rate_per_s: 6.0,
        duration_s: 8.0,
        seed: 17,
    });
    let config = ClusterConfig::new(3, engine_config());
    let rr = Cluster::with_lazy_pat(&config, Box::new(RoundRobin::new())).run(&requests);
    // Round-robin is balanced by construction (counts differ by at most 1).
    let counts: Vec<usize> = rr.per_replica.iter().map(|r| r.routed).collect();
    assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    assert!(rr.load_imbalance < 0.05);

    let ch =
        Cluster::with_lazy_pat(&config, Box::new(ConsistentHashPrefix::default())).run(&requests);
    // Every request of a prefix family (same tool prompt) lands on the same
    // replica.
    let mut family_to_replica: BTreeMap<u64, usize> = BTreeMap::new();
    for (id, replica) in &ch.assignments {
        let family = requests[*id as usize].prompt.segments[0].id;
        let seen = family_to_replica.entry(family).or_insert(*replica);
        assert_eq!(seen, replica, "family {family:#x} split across replicas");
    }
    assert!(
        family_to_replica
            .values()
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1
    );
}

#[test]
fn prefix_affinity_beats_round_robin_on_a_toolagent_fleet() {
    // The Fig. 18 headline in miniature: at 4 replicas on the toolagent
    // trace, prefix-affinity routing must improve fleet hit rate and mean
    // TPOT over round-robin, and hold less duplicated KV memory.
    let requests = generate_trace(TraceConfig {
        kind: TraceKind::ToolAgent,
        rate_per_s: 16.0,
        duration_s: 10.0,
        seed: 9,
    });
    let config = ClusterConfig::new(4, engine_config());
    let rr = Cluster::with_lazy_pat(&config, Box::new(RoundRobin::new())).run(&requests);
    let aff = Cluster::with_lazy_pat(&config, Box::new(PrefixAffinity::new())).run(&requests);
    assert_eq!(rr.unfinished, 0);
    assert_eq!(aff.unfinished, 0);
    assert!(
        aff.fleet_hit_rate > rr.fleet_hit_rate,
        "affinity hit rate {:.3} !> round-robin {:.3}",
        aff.fleet_hit_rate,
        rr.fleet_hit_rate
    );
    assert!(
        aff.fleet.mean_tpot_ms < rr.fleet.mean_tpot_ms,
        "affinity TPOT {:.3} ms !< round-robin {:.3} ms",
        aff.fleet.mean_tpot_ms,
        rr.fleet.mean_tpot_ms
    );
    assert!(
        aff.duplicated_kv_blocks < rr.duplicated_kv_blocks,
        "affinity duplication {} !< round-robin {}",
        aff.duplicated_kv_blocks,
        rr.duplicated_kv_blocks
    );
}

/// Two replicas doing identical work hold *identical* integer clocks — not
/// clocks an ulp apart — and the cluster's advance loop visits equal-clock
/// replicas in replica-index order. Under f64 clocks neither half of this
/// was a guarantee; under the `SimTime` spine both are exact.
#[test]
fn identical_clocks_advance_in_replica_index_order() {
    use serving::{ServingAttention, ServingEngine, StepOutcome};
    use sim_core::{EventQueue, SimTime};

    let requests = generate_trace(TraceConfig {
        kind: TraceKind::Conversation,
        rate_per_s: 3.0,
        duration_s: 4.0,
        seed: 21,
    });
    let mut engines: Vec<ServingEngine> = (0..2)
        .map(|_| ServingEngine::new(engine_config()))
        .collect();
    let mut backends: Vec<LazyPat> = (0..2).map(|_| LazyPat::new()).collect();
    for request in &requests {
        for engine in &mut engines {
            engine.submit(request.clone());
        }
    }
    // Lockstep: after every step, the two replicas' integer clocks are
    // exactly equal — bit-for-bit, no tolerance.
    loop {
        let outcomes: Vec<StepOutcome> = engines
            .iter_mut()
            .zip(backends.iter_mut())
            .map(|(e, b)| e.step(b as &mut dyn ServingAttention))
            .collect();
        assert_eq!(
            engines[0].clock(),
            engines[1].clock(),
            "identical work must produce identical integer clocks"
        );
        if outcomes.iter().all(|&o| o == StepOutcome::Idle) {
            break;
        }
    }
    assert!(engines[0].clock() > SimTime::ZERO);
    assert_eq!(
        engines[0].completed_requests(),
        engines[1].completed_requests()
    );

    // And when the fleet schedules advances for that shared instant, the
    // queue hands them back in replica-index order, every time.
    let tied = engines[0].clock();
    let mut queue: EventQueue<usize> = EventQueue::new();
    for replica in 0..4 {
        queue.push(tied, replica);
    }
    let order: Vec<usize> = std::iter::from_fn(|| queue.pop().map(|(_, r)| r)).collect();
    assert_eq!(order, [0, 1, 2, 3], "equal instants must pop in push order");
}

#[test]
fn least_outstanding_tracks_load_under_skewed_service_times() {
    let requests = generate_trace(TraceConfig {
        kind: TraceKind::QwenB,
        rate_per_s: 8.0,
        duration_s: 8.0,
        seed: 5,
    });
    let config = ClusterConfig::new(3, engine_config());
    let result = Cluster::with_lazy_pat(&config, Box::new(LeastOutstanding::new())).run(&requests);
    assert_eq!(result.unfinished, 0);
    assert_eq!(result.fleet.completed, requests.len());
    assert!(
        result.load_imbalance < 0.25,
        "imbalance {:.3}",
        result.load_imbalance
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// `sim_core::par`'s thread count is a pure performance knob at the
    /// cluster layer too: a random routed fleet run on 1 and on 4 worker
    /// threads must produce byte-identical serialized results.
    #[test]
    fn cluster_results_are_thread_count_invariant(
        seed in 0u64..1_000,
        kind_ix in 0usize..4,
        rate in 4.0f64..10.0,
        policy_ix in 0usize..4,
    ) {
        let requests = generate_trace(TraceConfig {
            kind: TraceKind::all()[kind_ix],
            rate_per_s: rate,
            duration_s: 5.0,
            seed,
        });
        let run = |threads: usize| {
            sim_core::par::set_thread_override(Some(threads));
            let config = ClusterConfig::new(3, engine_config());
            let router = policies().swap_remove(policy_ix);
            let result = Cluster::with_lazy_pat(&config, router).run(&requests);
            sim_core::par::set_thread_override(None);
            serde_json::to_string(&result).expect("ClusterResult serializes")
        };
        prop_assert_eq!(run(1), run(4), "cluster metrics diverge across thread counts");
    }
}
