//! Property tests for the tile-policy seam.
//!
//! The committed autotuned cache must be a conservative refinement of the
//! §5.2 heuristic: on the A100 — the device whose profile points the
//! paper's decision tree encodes (e.g. KV 192 → the n=64 class) — the two
//! policies are *pinned equal* for every reachable (rows, KV) input,
//! because every feasible tile there sits inside the paper's 1%
//! performance-equivalence band and the tuner only departs from the
//! heuristic on wins that clear the band. The offline tuner itself must be
//! bit-deterministic: repeated in-process runs and different
//! `PAT_SIM_THREADS` worker counts produce byte-identical
//! `tile_cache.json` payloads.

use attn_kernel::TileConfig;
use pat_core::{generate_tile_cache, TileContext, TilePolicyKind, TileSelector, TileSolver};
use proptest::prelude::*;
use sim_core::par::set_thread_override;
use sim_gpu::GpuSpec;

fn choose(kind: TilePolicyKind, spec: &GpuSpec, rows: usize, kv: usize) -> TileConfig {
    let solver = TileSolver::new(spec.clone(), 128, 2);
    let selector = TileSelector::new(solver.feasible_tiles()).expect("A100 suite is non-empty");
    let ctx = TileContext {
        selector: &selector,
        spec,
        head_dim: 128,
        dtype_bytes: 2,
    };
    kind.policy()
        .choose(&ctx, rows, kv)
        .expect("rows within max m")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Heuristic == Autotuned on A100 across the whole reachable input
    /// space (rows up to the largest feasible m, KV through every bucket
    /// including the open one).
    #[test]
    fn autotuned_matches_heuristic_on_a100(
        rows in 1usize..=64,
        kv in 0usize..=16_384,
    ) {
        let spec = GpuSpec::a100_sxm4_80gb();
        let heuristic = choose(TilePolicyKind::Heuristic, &spec, rows, kv);
        let autotuned = choose(TilePolicyKind::Autotuned, &spec, rows, kv);
        prop_assert_eq!(
            heuristic,
            autotuned,
            "A100 profile points must pin the policies equal (rows {}, kv {})",
            rows,
            kv
        );
    }
}

/// The paper's documented A100 profile point: KV 192 falls in the n=64
/// class, and both policies must say so.
#[test]
fn documented_kv_192_profile_point_is_the_n64_class() {
    let spec = GpuSpec::a100_sxm4_80gb();
    for rows in [1, 16, 20, 32] {
        let h = choose(TilePolicyKind::Heuristic, &spec, rows, 192);
        let a = choose(TilePolicyKind::Autotuned, &spec, rows, 192);
        assert_eq!(h.n, 64, "KV 192 is the n=64 class (rows {rows})");
        assert_eq!(h, a);
    }
}

/// Two in-process tune runs emit byte-identical canonical JSON.
#[test]
fn tune_runs_are_byte_identical() {
    let first = generate_tile_cache().to_canonical_json();
    let second = generate_tile_cache().to_canonical_json();
    assert_eq!(first, second, "tune must be deterministic run-to-run");
}

/// The tune output is invariant under the `PAT_SIM_THREADS` worker count
/// (exercised via the same override the env knob sets).
#[test]
fn tune_is_invariant_across_worker_counts() {
    set_thread_override(Some(1));
    let one = generate_tile_cache().to_canonical_json();
    set_thread_override(Some(4));
    let four = generate_tile_cache().to_canonical_json();
    set_thread_override(None);
    assert_eq!(one, four, "tile cache must not depend on PAT_SIM_THREADS");
}
