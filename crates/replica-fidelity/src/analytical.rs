//! The analytical fidelity: closed-form replica timing, no kernel sim.
//!
//! [`AnalyticalReplica`] reproduces the serving engine's *scheduling*
//! behavior — prefill-priority admission with the vLLM KV watermark,
//! continuous batching, recompute preemption under KV pressure, drain
//! limits — but prices every step with closed forms instead of simulating
//! kernels: prefill from the engine's own FLOPs/bandwidth roofline
//! ([`serving::CostModel::prefill_ns`]), decode attention from the fitted
//! [`crate::calibration`] coefficients, and the non-attention linear parts
//! from [`serving::CostModel::decode_linear_ns`] — the same formula shape
//! the exact engine uses, with the kernel-simulated report replaced by the
//! calibrated closed form. A decode step costs O(batch) arithmetic.
//!
//! KV bookkeeping is block-count arithmetic (no block tables): each active
//! request pins `ceil(context / block_size)` blocks, and prefix warmth
//! lives in a bounded [`PrefixStore`] of block-chain hashes. Divergences
//! from exact fidelity are therefore: (a) timing is linear in batch and
//! KV-bytes rather than kernel-simulated, (b) block sharing between
//! concurrent same-prefix requests is not modeled (admission is slightly
//! conservative), and (c) chunked prefill is approximated by
//! prefill-priority scheduling. Fleet-level mean TTFT/TPOT stay within
//! [`crate::ANALYTICAL_REL_ERROR_BOUND`] of exact on the validation
//! scenarios; see DESIGN.md §2e for when this fidelity is sound.

use crate::calibration::{key_for, shard_head, AttnCalibration, CalibrationTable};
use crate::{Fidelity, PrefixStore, ReplicaModel};
use kv_cache::{CacheManager, IngestReport, Token, DEFAULT_BLOCK_SIZE};
use serving::{
    AggregateMetrics, CostModel, RequestMetrics, ServingConfig, SimulationResult, StepOutcome,
    StepSimStats,
};
use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;
use workloads::Request;

/// Blocks of prefix warmth an analytical replica tracks (bounded so a
/// 1k-replica fleet stays within a few hundred MB; the real KV pool is
/// usually larger, making warmth slightly pessimistic at huge working
/// sets).
pub const ANALYTICAL_PREFIX_STORE_BLOCKS: usize = 65_536;

#[derive(Debug, Clone)]
struct ActiveLite {
    req_idx: usize,
    produced: usize,
    target: usize,
    context_tokens: usize,
    blocks: usize,
    first_token: SimTime,
    arrival: SimTime,
}

/// A replica priced entirely by closed-form cost models.
#[derive(Debug)]
pub struct AnalyticalReplica {
    config: ServingConfig,
    cost: CostModel,
    attn: AttnCalibration,
    layers_per_stage: usize,
    prefix: PrefixStore,
    requests: Vec<Request>,
    waiting: VecDeque<usize>,
    active: Vec<ActiveLite>,
    completed: Vec<RequestMetrics>,
    next_arrival: usize,
    clock: SimTime,
    decode_steps: usize,
    batch_acc: usize,
    attn_time: SimDuration,
    total_time: SimDuration,
    preemptions: u64,
    dropped: u64,
    speed_factor: f64,
    draining: bool,
    used_blocks: usize,
}

impl AnalyticalReplica {
    /// A fresh analytical replica. Attention coefficients come from the
    /// committed calibration table when the (model, GPU) pair is fitted,
    /// otherwise from the first-principles roofline fallback.
    pub fn new(config: ServingConfig) -> Self {
        let tp = config.parallel.tp;
        let head = shard_head(&config.model, tp);
        let key = key_for(head, &config.gpu);
        let attn = CalibrationTable::committed()
            .lookup(&key)
            .cloned()
            .unwrap_or_else(|| AttnCalibration::roofline(head, &config.gpu, 2));
        let cost = CostModel::with_tp(config.model, config.gpu.clone(), tp);
        let layers_per_stage = config.model.num_layers.div_ceil(config.parallel.pp);
        let prefix_blocks = config
            .kv_capacity_blocks
            .min(ANALYTICAL_PREFIX_STORE_BLOCKS);
        AnalyticalReplica {
            prefix: PrefixStore::new(prefix_blocks, DEFAULT_BLOCK_SIZE),
            cost,
            attn,
            layers_per_stage,
            config,
            requests: Vec::new(),
            waiting: VecDeque::new(),
            active: Vec::new(),
            completed: Vec::new(),
            next_arrival: 0,
            clock: SimTime::ZERO,
            decode_steps: 0,
            batch_acc: 0,
            attn_time: SimDuration::ZERO,
            total_time: SimDuration::ZERO,
            preemptions: 0,
            dropped: 0,
            speed_factor: 1.0,
            draining: false,
            used_blocks: 0,
        }
    }

    /// The attention calibration pricing this replica's decode steps.
    pub fn calibration(&self) -> &AttnCalibration {
        &self.attn
    }

    fn deadline(&self) -> SimTime {
        self.requests
            .last()
            .map_or(SimTime::ZERO, |r| SimTime::from_secs_f64(r.arrival_s))
            + SimDuration::from_secs_f64(self.config.drain_limit_s)
    }

    /// Frees the most recently arrived active request and requeues it for
    /// recompute (the engine's preemption policy). Returns its index.
    fn preempt_latest(&mut self) -> Option<usize> {
        let victim = self
            .active
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.arrival)?
            .0;
        let a = self.active.swap_remove(victim);
        self.used_blocks = self.used_blocks.saturating_sub(a.blocks);
        self.waiting.push_front(a.req_idx);
        Some(a.req_idx)
    }

    fn complete(&mut self, a: ActiveLite) {
        self.used_blocks = self.used_blocks.saturating_sub(a.blocks);
        let gaps = (a.produced - 1).max(1) as f64;
        self.completed.push(RequestMetrics {
            request_id: self.requests[a.req_idx].id,
            ttft_ns: (a.first_token - a.arrival).as_ns_f64(),
            tpot_ns: (self.clock - a.first_token).as_ns_f64() / gaps,
            completion_ns: (self.clock - a.arrival).as_ns_f64(),
            decode_tokens: a.produced,
        });
    }
}

impl ReplicaModel for AnalyticalReplica {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Analytical
    }

    fn submit(&mut self, request: Request) {
        assert!(!self.draining, "cannot submit to a draining replica");
        if let Some(last) = self.requests.last() {
            assert!(
                last.arrival_s <= request.arrival_s,
                "requests must be submitted in arrival order"
            );
        }
        self.requests.push(request);
    }

    fn step(&mut self) -> StepOutcome {
        // Admit arrivals onto the integer spine, exactly as the engine does.
        while self.next_arrival < self.requests.len()
            && SimTime::from_secs_f64(self.requests[self.next_arrival].arrival_s) <= self.clock
        {
            self.waiting.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
        if self.active.is_empty() && self.waiting.is_empty() {
            if self.next_arrival >= self.requests.len() {
                return StepOutcome::Idle;
            }
            self.clock = SimTime::from_secs_f64(self.requests[self.next_arrival].arrival_s);
            return StepOutcome::Progress;
        }
        if self.clock > self.deadline() {
            return StepOutcome::Idle;
        }

        let bs = self.prefix.block_size();
        let capacity = self.config.kv_capacity_blocks;
        // Prefill-priority admission with the vLLM watermark, mirrored from
        // the exact engine (block counts instead of an allocator).
        if !self.waiting.is_empty() && self.active.len() < self.config.max_batch {
            let mut chunk_tokens = 0usize;
            let mut admitted: Vec<(usize, usize)> = Vec::new();
            let mut budget_blocks = capacity.saturating_sub(self.used_blocks);
            while let Some(&idx) = self.waiting.front() {
                let req = &self.requests[idx];
                let budget = self
                    .config
                    .model
                    .max_context
                    .saturating_sub(req.decode_tokens)
                    .max(16);
                let prompt_tokens = req.prompt.total_tokens().min(budget);
                if self.active.len() + admitted.len() >= self.config.max_batch
                    || (chunk_tokens + prompt_tokens > self.config.max_prefill_tokens
                        && !admitted.is_empty())
                {
                    break;
                }
                let needed = prompt_tokens.div_ceil(bs) + req.decode_tokens.div_ceil(bs) + 2;
                if needed > capacity {
                    self.waiting.pop_front();
                    self.dropped += 1;
                    continue;
                }
                let engine_busy = !self.active.is_empty() || !admitted.is_empty();
                if needed > budget_blocks && engine_busy {
                    break;
                }
                budget_blocks = budget_blocks.saturating_sub(needed);
                self.waiting.pop_front();
                chunk_tokens += prompt_tokens;
                admitted.push((idx, prompt_tokens));
                if chunk_tokens >= self.config.max_prefill_tokens {
                    break;
                }
            }
            if !admitted.is_empty() {
                let mut computed_tokens = 0usize;
                for &(idx, prompt_tokens) in &admitted {
                    let tokens = self.requests[idx].prompt.to_tokens();
                    let hit = self.prefix.insert_sequence(&tokens[..prompt_tokens]);
                    computed_tokens += prompt_tokens.saturating_sub(hit).max(1);
                }
                self.clock += SimDuration::from_ns_f64(
                    self.cost.prefill_ns(computed_tokens) / self.speed_factor,
                );
                for (idx, prompt_tokens) in admitted {
                    let req = &self.requests[idx];
                    let arrival = SimTime::from_secs_f64(req.arrival_s);
                    if req.decode_tokens <= 1 {
                        let latency = (self.clock - arrival).as_ns_f64();
                        self.completed.push(RequestMetrics {
                            request_id: req.id,
                            ttft_ns: latency,
                            tpot_ns: 0.0,
                            completion_ns: latency,
                            decode_tokens: 1,
                        });
                    } else {
                        let blocks = prompt_tokens.div_ceil(bs);
                        self.used_blocks += blocks;
                        let target = req.decode_tokens;
                        self.active.push(ActiveLite {
                            req_idx: idx,
                            produced: 1,
                            target,
                            context_tokens: prompt_tokens,
                            blocks,
                            first_token: self.clock,
                            arrival,
                        });
                    }
                }
                return StepOutcome::Progress;
            }
        }
        if self.active.is_empty() {
            // Everything waiting was dropped or nothing is admissible yet.
            return StepOutcome::Progress;
        }

        // Decode step: closed-form pricing with the exact engine's step
        // formula, the kernel-simulated report replaced by the calibration.
        let batch = self.active.len();
        let kv_total: u64 = self.active.iter().map(|a| a.context_tokens as u64).sum();
        let kv_max: u64 = self
            .active
            .iter()
            .map(|a| a.context_tokens as u64)
            .max()
            .unwrap_or(0);
        let kernel_ns = self.attn.kernel_ns(batch, kv_total, kv_max);
        let sched_ns = self.attn.sched_ns(batch);
        let attention_ns =
            (kernel_ns * self.config.model.num_layers as f64 + sched_ns) / self.speed_factor;
        let pp = self.config.parallel.pp;
        let linear_ns = self.cost.decode_linear_ns(batch, self.layers_per_stage) * pp as f64;
        let pp_transfer_ns = (pp - 1) as f64
            * (8_000.0 + batch as f64 * self.config.model.hidden as f64 * 2.0 / 300.0);
        let step_ns = attention_ns + (linear_ns + pp_transfer_ns) / self.speed_factor;
        let step = SimDuration::from_ns_f64(step_ns);
        self.clock += step;
        self.decode_steps += 1;
        self.batch_acc += batch;
        self.attn_time += SimDuration::from_ns_f64(attention_ns);
        self.total_time += step;
        self.prefix.note_decode_tokens(batch as u64);

        // Grow each request by one token, preempting the youngest under KV
        // pressure (the engine's recompute policy, on block arithmetic).
        let mut i = 0;
        while i < self.active.len() {
            let my_req = self.active[i].req_idx;
            let mut appended = false;
            while let Some(pos) = self.active.iter().position(|a| a.req_idx == my_req) {
                i = pos;
                let needs_block = self.active[i]
                    .context_tokens
                    .is_multiple_of(self.prefix.block_size());
                if !needs_block || self.used_blocks < capacity {
                    self.active[i].context_tokens += 1;
                    if needs_block {
                        self.active[i].blocks += 1;
                        self.used_blocks += 1;
                    }
                    appended = true;
                    break;
                }
                self.preemptions += 1;
                if self.preempt_latest().is_none() {
                    break;
                }
            }
            if !appended {
                continue;
            }
            self.active[i].produced += 1;
            if self.active[i].produced >= self.active[i].target {
                let a = self.active.swap_remove(i);
                self.complete(a);
            } else {
                i += 1;
            }
        }
        StepOutcome::Progress
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn config(&self) -> &ServingConfig {
        &self.config
    }

    fn queue_depth(&self) -> usize {
        self.waiting.len()
    }

    fn num_active(&self) -> usize {
        self.active.len()
    }

    fn outstanding(&self) -> usize {
        self.waiting.len() + self.active.len() + (self.requests.len() - self.next_arrival)
    }

    fn cache(&self) -> Option<&CacheManager> {
        None
    }

    fn block_size(&self) -> usize {
        self.prefix.block_size()
    }

    fn prefix_overlap_tokens(&self, prompt_tokens: &[Token]) -> usize {
        self.prefix.overlap_tokens(prompt_tokens)
    }

    fn cache_hit_rate(&self) -> f64 {
        self.prefix.hit_rate()
    }

    fn cache_hit_miss_tokens(&self) -> (u64, u64) {
        self.prefix.hit_miss_tokens()
    }

    fn resident_block_hashes(&self) -> Vec<u64> {
        // PrefixStore hashes are not comparable with CacheManager block
        // hashes, so analytical replicas opt out of cross-replica
        // duplication accounting rather than pollute it.
        Vec::new()
    }

    fn ingest_prefix(&mut self, tokens: &[Token]) -> IngestReport {
        self.prefix.ingest_prefix(tokens)
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn completed_requests(&self) -> &[RequestMetrics] {
        &self.completed
    }

    fn set_speed_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed factor must be positive and finite"
        );
        self.speed_factor = factor;
    }

    fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    fn begin_drain(&mut self) {
        self.draining = true;
    }

    fn is_draining(&self) -> bool {
        self.draining
    }

    fn take_incomplete(&mut self) -> Vec<Request> {
        let mut indices: Vec<usize> = Vec::new();
        for a in self.active.drain(..) {
            indices.push(a.req_idx);
        }
        self.used_blocks = 0;
        indices.extend(self.waiting.drain(..));
        indices.extend(self.next_arrival..self.requests.len());
        self.next_arrival = self.requests.len();
        indices.sort_unstable();
        indices.dedup();
        indices
            .into_iter()
            .map(|i| self.requests[i].clone())
            .collect()
    }

    fn step_sim_stats(&self) -> StepSimStats {
        StepSimStats::default()
    }

    fn into_result(self: Box<Self>) -> SimulationResult {
        SimulationResult {
            metrics: AggregateMetrics::from_requests(&self.completed),
            per_request: self.completed,
            decode_steps: self.decode_steps,
            mean_batch: if self.decode_steps == 0 {
                0.0
            } else {
                self.batch_acc as f64 / self.decode_steps as f64
            },
            attention_fraction: if self.total_time == SimDuration::ZERO {
                0.0
            } else {
                self.attn_time.as_ns_f64() / self.total_time.as_ns_f64()
            },
            overhead_samples: Vec::new(),
            step_sim: StepSimStats::default(),
            unfinished: self.active.len()
                + self.waiting.len()
                + (self.requests.len() - self.next_arrival),
            preemptions: self.preemptions,
            dropped: self.dropped,
            plan_error: None,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::ModelSpec;
    use workloads::PromptSpec;

    fn config() -> ServingConfig {
        ServingConfig::single_gpu(ModelSpec::llama3_8b())
    }

    fn request(id: u64, arrival_s: f64, prompt: usize, decode: usize) -> Request {
        Request {
            id,
            arrival_s,
            prompt: PromptSpec::from_parts([(id + 1, prompt)]),
            decode_tokens: decode,
        }
    }

    fn run_to_idle(r: &mut AnalyticalReplica) {
        while r.step() == StepOutcome::Progress {}
    }

    #[test]
    fn completes_requests_with_plausible_latencies() {
        let mut r = AnalyticalReplica::new(config());
        for i in 0..8 {
            r.submit(request(i, i as f64 * 0.05, 512, 32));
        }
        run_to_idle(&mut r);
        let result = Box::new(r).into_result();
        assert_eq!(result.per_request.len(), 8);
        assert_eq!(result.unfinished, 0);
        for m in &result.per_request {
            // TTFT at least one prefill (~10ms at 512 tokens on A100),
            // TPOT within an order of magnitude of the exact engine's
            // ~10-40ms decode steps.
            assert!(m.ttft_ns > 1e6, "ttft {}", m.ttft_ns);
            assert!(m.tpot_ns > 1e6 && m.tpot_ns < 1e9, "tpot {}", m.tpot_ns);
        }
    }

    #[test]
    fn repeat_runs_are_bit_identical() {
        let run = || {
            let mut r = AnalyticalReplica::new(config());
            for i in 0..32 {
                r.submit(request(
                    i,
                    i as f64 * 0.02,
                    256 + (i as usize % 5) * 100,
                    16,
                ));
            }
            run_to_idle(&mut r);
            let result = Box::new(r).into_result();
            serde_json::to_string(&result.per_request).unwrap_or_default()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shared_prefixes_cut_ttft_via_the_prefix_store() {
        let shared = |id: u64, arrival: f64| Request {
            id,
            arrival_s: arrival,
            prompt: PromptSpec::from_parts([(7, 2048), (100 + id, 32)]),
            decode_tokens: 8,
        };
        let mut r = AnalyticalReplica::new(config());
        r.submit(shared(0, 0.0));
        r.submit(shared(1, 5.0)); // Arrives after the first finishes.
        run_to_idle(&mut r);
        let result = Box::new(r).into_result();
        assert_eq!(result.per_request.len(), 2);
        let first = &result.per_request[0];
        let second = &result.per_request[1];
        assert!(
            second.ttft_ns < first.ttft_ns * 0.5,
            "warm prefix must discount prefill: {} vs {}",
            second.ttft_ns,
            first.ttft_ns
        );
    }

    #[test]
    fn kv_pressure_preempts_and_still_completes() {
        let mut cfg = config();
        cfg.kv_capacity_blocks = 200; // Tiny pool forces preemption.
        let mut r = AnalyticalReplica::new(cfg);
        for i in 0..6 {
            r.submit(request(i, 0.0, 512, 256));
        }
        run_to_idle(&mut r);
        let result = Box::new(r).into_result();
        assert_eq!(result.per_request.len() + result.unfinished, 6);
        assert!(result.preemptions > 0, "tiny pool must preempt");
    }

    #[test]
    fn drain_and_take_incomplete_conserve_requests() {
        let mut r = AnalyticalReplica::new(config());
        for i in 0..10 {
            r.submit(request(i, i as f64, 256, 64));
        }
        // Step a little, then pull everything incomplete.
        for _ in 0..20 {
            r.step();
        }
        let completed = r.completed_requests().len();
        let incomplete = r.take_incomplete();
        assert_eq!(completed + incomplete.len(), 10);
        assert_eq!(r.outstanding(), 0);
        // Arrival order is preserved.
        assert!(incomplete
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
    }
}
