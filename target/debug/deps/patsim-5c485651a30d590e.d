/root/repo/target/debug/deps/patsim-5c485651a30d590e.d: src/bin/patsim.rs

/root/repo/target/debug/deps/patsim-5c485651a30d590e: src/bin/patsim.rs

src/bin/patsim.rs:
