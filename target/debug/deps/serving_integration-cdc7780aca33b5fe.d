/root/repo/target/debug/deps/serving_integration-cdc7780aca33b5fe.d: tests/serving_integration.rs Cargo.toml

/root/repo/target/debug/deps/libserving_integration-cdc7780aca33b5fe.rmeta: tests/serving_integration.rs Cargo.toml

tests/serving_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
