//! Tile explorer: prints the offline constraint solver's feasibility grids
//! for A100 and H100 (Fig. 8b / Fig. 9) and walks the runtime tile
//! selector's decisions across query counts and KV lengths (§5.2).
//!
//! Run with `cargo run --release --example tile_explorer`.

use pat::prelude::*;

fn main() {
    for spec in [GpuSpec::a100_sxm4_80gb(), GpuSpec::h100_sxm5_80gb()] {
        let solver = TileSolver::new(spec.clone(), 128, 2);
        println!("{}", solver.render_table());
        let tiles = solver.feasible_tiles();
        println!("-> {} performance-equivalent configurations\n", tiles.len());
    }

    let solver = TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2);
    let selector = TileSelector::new(solver.feasible_tiles());
    println!("runtime tile selection on A100 (rows = packed queries x GQA group):");
    println!("{:>6} {:>8} {:>12}", "rows", "kv len", "tile (m,n)");
    for rows in [1usize, 4, 8, 20, 32, 64] {
        for kv in [64usize, 192, 512, 2048, 8192] {
            match selector.select(rows, kv) {
                Some(tile) => println!("{rows:>6} {kv:>8} {:>12}", tile.to_string()),
                None => println!("{rows:>6} {kv:>8} {:>12}", "row split"),
            }
        }
    }
    println!("\nNote the paper's §5.2 examples: 20 rows round up to m=32, and");
    println!("KV 192 picks n=64 over 128 to avoid a 50% final-tile compute bubble.");
}
