//! A deterministic discrete-event queue.
//!
//! A binary heap keyed on `(SimTime, sequence)`: events pop in time order,
//! and events scheduled for the *same* instant pop in the order they were
//! pushed. The sequence tie-break is what turns "two replicas happened to
//! reach the same clock" from unspecified-float-comparison territory into a
//! guaranteed, seed-exact ordering.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Orderings are reversed so the max-heap pops the earliest (time, seq).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A future-event list over payload type `E`.
///
/// # Examples
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_at", &self.peek_time())
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at instant `at`. Events at equal instants pop in
    /// push order.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, ties broken by push order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the next event only if it is scheduled exactly at
    /// `at` — the batching primitive for "process every event of this
    /// instant under one `now`". Peek-and-pop without an intervening
    /// `expect`.
    pub fn pop_at(&mut self, at: SimTime) -> Option<E> {
        if self.peek_time() == Some(at) {
            self.heap.pop().map(|e| e.event)
        } else {
            None
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &ns in &[50u64, 10, 40, 20, 30] {
            q.push(SimTime::from_ns(ns), ns);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [10, 20, 30, 40, 50]);
    }

    #[test]
    fn equal_instants_pop_in_push_order() {
        // The regression the integer spine exists to close: under f64
        // clocks, tie order was whatever the float comparison happened to
        // say; here it is the insertion sequence, always.
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(1_000);
        for label in ["replica-0", "replica-1", "replica-2", "replica-3"] {
            q.push(t, label);
        }
        q.push(SimTime::from_ns(999), "earlier");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            [
                "earlier",
                "replica-0",
                "replica-1",
                "replica-2",
                "replica-3"
            ]
        );
    }

    #[test]
    fn pop_at_drains_exactly_one_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(100);
        q.push(t, "a");
        q.push(t, "b");
        q.push(SimTime::from_ns(200), "later");
        assert_eq!(q.pop_at(SimTime::from_ns(99)), None);
        assert_eq!(q.pop_at(t), Some("a"));
        assert_eq!(q.pop_at(t), Some("b"));
        assert_eq!(q.pop_at(t), None, "later instants stay queued");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_ordering() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), 'a');
        q.push(SimTime::from_ns(5), 'b');
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'a')));
        q.push(SimTime::from_ns(5), 'c');
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'c')));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.len(), 1);
    }
}
