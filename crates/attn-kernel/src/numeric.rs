//! Numeric plan executor: runs a [`KernelPlan`] through the exact attention
//! math and checks it against the naive reference.
//!
//! This is the correctness half of the reproduction: for *any* backend's plan
//! (PAT, baselines, ablations), executing pack → forward → merge numerically
//! must give the same output as unpacked attention.

use crate::{DecodeBatch, KernelPlan, KvStore, PlanError, QueryActivations};
use attn_math::{attend_segment, reference_attention, Matrix, PartialAttn};

/// Attention outputs: one `(num_heads × head_dim)` matrix per query.
#[derive(Debug, Clone, PartialEq)]
pub struct AttnOutput {
    per_query: Vec<Matrix>,
}

impl AttnOutput {
    /// Output matrix of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn query(&self, q: usize) -> &Matrix {
        &self.per_query[q]
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.per_query.len()
    }

    /// Whether the output is empty.
    pub fn is_empty(&self) -> bool {
        self.per_query.is_empty()
    }

    /// Maximum absolute element difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &AttnOutput) -> f32 {
        assert_eq!(self.len(), other.len(), "query count mismatch");
        let mut worst = 0.0f32;
        for (a, b) in self.per_query.iter().zip(&other.per_query) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }
}

/// Executes `plan` numerically: each CTA attends its packed queries over its
/// KV slice (tiled by the CTA's `n`), partials are merged per (query, head)
/// — the §7 merge kernel — and normalized into final outputs.
///
/// # Errors
///
/// Returns [`PlanError`] if the plan does not cover the batch exactly.
///
/// # Panics
///
/// Panics if `store`/`acts` shapes disagree with the batch.
pub fn execute_numeric(
    batch: &DecodeBatch,
    acts: &QueryActivations,
    store: &KvStore,
    plan: &KernelPlan,
) -> Result<AttnOutput, PlanError> {
    plan.validate(batch)?;
    let head = batch.head();
    let (nh, d) = (head.num_heads(), head.head_dim());
    let bs = batch.block_size();
    let scale = head.scale();
    let mut partials: Vec<Vec<PartialAttn>> = (0..batch.num_queries())
        .map(|_| (0..nh).map(|_| PartialAttn::empty(d)).collect())
        .collect();

    for cta in &plan.ctas {
        if cta.kv.blocks.is_empty() {
            continue;
        }
        // Assemble the slice's K/V once per kv-head (the shared-memory load).
        for kvh in 0..head.num_kv_heads() {
            let mut keys = store.keys(cta.kv.blocks[0], kvh, cta.kv.tokens_in_block(0, bs));
            let mut values = store.values(cta.kv.blocks[0], kvh, cta.kv.tokens_in_block(0, bs));
            for (i, &b) in cta.kv.blocks.iter().enumerate().skip(1) {
                let t = cta.kv.tokens_in_block(i, bs);
                keys.append_rows(&store.keys(b, kvh, t));
                values.append_rows(&store.values(b, kvh, t));
            }
            for &q in &cta.queries {
                for h in head.q_heads_of(kvh) {
                    let part = attend_segment(acts.q(q, h), &keys, &values, scale, cta.tile.n);
                    partials[q][h].merge(&part);
                }
            }
        }
    }

    let per_query = finalize_partials(partials, nh, d)?;
    Ok(AttnOutput { per_query })
}

/// Finalizes the per-(query, head) accumulators into output rows. An empty
/// accumulator means the plan left a (query, head) unattended, which
/// `validate` should have rejected — surface it as a coverage error rather
/// than panicking.
fn finalize_partials(
    partials: Vec<Vec<PartialAttn>>,
    nh: usize,
    d: usize,
) -> Result<Vec<Matrix>, PlanError> {
    let mut per_query = Vec::with_capacity(partials.len());
    for (q, heads) in partials.into_iter().enumerate() {
        let mut out = Matrix::zeros(nh, d);
        for (h, p) in heads.iter().enumerate() {
            let row = p.finalize().map_err(|_| PlanError::CoverageMismatch {
                query: q,
                detail: format!("no CTA attended head {h}"),
            })?;
            out.row_mut(h).copy_from_slice(&row);
        }
        per_query.push(out);
    }
    Ok(per_query)
}

/// The unpacked reference: every query attends over its full KV sequence.
///
/// # Panics
///
/// Panics if `store`/`acts` shapes disagree with the batch.
pub fn reference_output(
    batch: &DecodeBatch,
    acts: &QueryActivations,
    store: &KvStore,
) -> AttnOutput {
    let head = batch.head();
    let (nh, d) = (head.num_heads(), head.head_dim());
    let scale = head.scale();
    let per_query = batch
        .tables()
        .iter()
        .enumerate()
        .map(|(q, table)| {
            let mut out = Matrix::zeros(nh, d);
            for kvh in 0..head.num_kv_heads() {
                let mut keys = store.keys(table.blocks()[0], kvh, table.tokens_in_block(0));
                let mut values = store.values(table.blocks()[0], kvh, table.tokens_in_block(0));
                for i in 1..table.blocks().len() {
                    let t = table.tokens_in_block(i);
                    keys.append_rows(&store.keys(table.blocks()[i], kvh, t));
                    values.append_rows(&store.values(table.blocks()[i], kvh, t));
                }
                for h in head.q_heads_of(kvh) {
                    let row = reference_attention(acts.q(q, h), &keys, &values, scale);
                    out.row_mut(h).copy_from_slice(&row);
                }
            }
            out
        })
        .collect();
    AttnOutput { per_query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtaPlan, KvSlice, TileConfig};
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    fn setup() -> (DecodeBatch, QueryActivations, KvStore) {
        let head = HeadConfig::new(4, 2, 8);
        let tables = vec![
            BlockTable::new(vec![BlockId(0), BlockId(1), BlockId(2)], 40, 16),
            BlockTable::new(vec![BlockId(0), BlockId(1), BlockId(3)], 44, 16),
            BlockTable::new(vec![BlockId(0), BlockId(4)], 20, 16),
        ];
        let batch = DecodeBatch::new(head, tables, 2);
        let acts = QueryActivations::synthetic(head, 3, 11);
        let store = KvStore::synthetic_for(&batch, 17);
        (batch, acts, store)
    }

    fn slice(ids: &[u32], tokens: usize) -> KvSlice {
        KvSlice::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
    }

    fn cta(queries: &[usize], kv: KvSlice) -> CtaPlan {
        CtaPlan {
            queries: queries.to_vec(),
            kv,
            tile: TileConfig::new(16, 16),
            stream: 0,
            phase: 0,
        }
    }

    #[test]
    fn one_query_per_cta_matches_reference() {
        let (batch, acts, store) = setup();
        let plan = KernelPlan::new(vec![
            cta(&[0], slice(&[0, 1, 2], 40)),
            cta(&[1], slice(&[0, 1, 3], 44)),
            cta(&[2], slice(&[0, 4], 20)),
        ]);
        let got = execute_numeric(&batch, &acts, &store, &plan).unwrap();
        let want = reference_output(&batch, &acts, &store);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn prefix_packed_plan_matches_reference() {
        let (batch, acts, store) = setup();
        // Shared prefix [0] for all three; [1] shared by q0,q1; private tails.
        let plan = KernelPlan::new(vec![
            cta(&[0, 1, 2], slice(&[0], 16)),
            cta(&[0, 1], slice(&[1], 16)),
            cta(&[0], slice(&[2], 8)),
            cta(&[1], slice(&[3], 12)),
            cta(&[2], slice(&[4], 4)),
        ]);
        let got = execute_numeric(&batch, &acts, &store, &plan).unwrap();
        let want = reference_output(&batch, &acts, &store);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn kv_split_plan_matches_reference() {
        let (batch, acts, store) = setup();
        // Query 0's KV split across two CTAs at a block boundary.
        let plan = KernelPlan::new(vec![
            cta(&[0], slice(&[0, 1], 32)),
            cta(&[0], slice(&[2], 8)),
            cta(&[1], slice(&[0, 1, 3], 44)),
            cta(&[2], slice(&[0, 4], 20)),
        ]);
        let got = execute_numeric(&batch, &acts, &store, &plan).unwrap();
        let want = reference_output(&batch, &acts, &store);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let (batch, acts, store) = setup();
        let plan = KernelPlan::new(vec![cta(&[0], slice(&[0], 16))]);
        assert!(execute_numeric(&batch, &acts, &store, &plan).is_err());
    }

    #[test]
    fn tile_n_does_not_change_results() {
        let (batch, acts, store) = setup();
        let mk = |n: usize| {
            let mut plan = KernelPlan::new(vec![
                cta(&[0], slice(&[0, 1, 2], 40)),
                cta(&[1], slice(&[0, 1, 3], 44)),
                cta(&[2], slice(&[0, 4], 20)),
            ]);
            for c in &mut plan.ctas {
                c.tile = TileConfig::new(16, n);
            }
            execute_numeric(&batch, &acts, &store, &plan).unwrap()
        };
        assert!(mk(16).max_abs_diff(&mk(128)) < 1e-5);
    }
}

/// Parallel variant of [`execute_numeric`]: fans CTAs out across worker
/// threads with `std::thread` scoped threads, merging per-(query, head)
/// partials at the end. Bit-identical ordering is *not* guaranteed (merge
/// order differs), but online-softmax merging is order-insensitive up to
/// f32 rounding, which the tests bound.
///
/// # Errors
///
/// Returns [`PlanError`] if the plan does not cover the batch exactly.
///
/// # Panics
///
/// Panics if `store`/`acts` shapes disagree with the batch, or `threads`
/// is zero.
pub fn execute_numeric_parallel(
    batch: &DecodeBatch,
    acts: &QueryActivations,
    store: &KvStore,
    plan: &KernelPlan,
    threads: usize,
) -> Result<AttnOutput, PlanError> {
    assert!(threads > 0, "need at least one worker");
    plan.validate(batch)?;
    let head = batch.head();
    let (nh, d) = (head.num_heads(), head.head_dim());
    let bs = batch.block_size();
    let scale = head.scale();

    // Each worker owns a disjoint chunk of CTAs and produces its own partial
    // table; the main thread merges the tables.
    let chunk = plan.ctas.len().div_ceil(threads).max(1);
    // simlint: allow(R6) -- kernel-internal worker pool predating sim_core::par: CTA chunks are disjoint and partial tables merge in spawn order, so the result is thread-count invariant
    let tables: Vec<Vec<Vec<PartialAttn>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .ctas
            .chunks(chunk)
            .map(|ctas| {
                scope.spawn(move || {
                    let mut partials: Vec<Vec<PartialAttn>> = (0..batch.num_queries())
                        .map(|_| (0..nh).map(|_| PartialAttn::empty(d)).collect())
                        .collect();
                    for cta in ctas {
                        if cta.kv.blocks.is_empty() {
                            continue;
                        }
                        for kvh in 0..head.num_kv_heads() {
                            let mut keys =
                                store.keys(cta.kv.blocks[0], kvh, cta.kv.tokens_in_block(0, bs));
                            let mut values =
                                store.values(cta.kv.blocks[0], kvh, cta.kv.tokens_in_block(0, bs));
                            for (i, &b) in cta.kv.blocks.iter().enumerate().skip(1) {
                                let t = cta.kv.tokens_in_block(i, bs);
                                keys.append_rows(&store.keys(b, kvh, t));
                                values.append_rows(&store.values(b, kvh, t));
                            }
                            for &q in &cta.queries {
                                for h in head.q_heads_of(kvh) {
                                    let part = attend_segment(
                                        acts.q(q, h),
                                        &keys,
                                        &values,
                                        scale,
                                        cta.tile.n,
                                    );
                                    partials[q][h].merge(&part);
                                }
                            }
                        }
                    }
                    partials
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker panic is re-raised on the caller's thread with its
            // original payload, not wrapped in a second panic message.
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut merged: Vec<Vec<PartialAttn>> = (0..batch.num_queries())
        .map(|_| (0..nh).map(|_| PartialAttn::empty(d)).collect())
        .collect();
    for table in &tables {
        for (q, heads) in table.iter().enumerate() {
            for (h, p) in heads.iter().enumerate() {
                merged[q][h].merge(p);
            }
        }
    }
    let per_query = finalize_partials(merged, nh, d)?;
    Ok(AttnOutput { per_query })
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::{CtaPlan, KvSlice, TileConfig};
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    #[test]
    fn parallel_matches_sequential_and_reference() {
        let head = HeadConfig::new(8, 4, 16);
        let tables: Vec<BlockTable> = (0..12u32)
            .map(|q| {
                let mut ids: Vec<BlockId> = (0..6).map(BlockId).collect();
                ids.push(BlockId(100 + q));
                BlockTable::new(ids, 7 * 16 - 3, 16)
            })
            .collect();
        let batch = DecodeBatch::new(head, tables, 2);
        let acts = QueryActivations::synthetic(head, batch.num_queries(), 5);
        let store = KvStore::synthetic_for(&batch, 6);
        // Prefix-packed plan with a KV split for query 0.
        let mut ctas = vec![CtaPlan {
            queries: (0..12).collect(),
            kv: KvSlice::new((0..6).map(BlockId).collect(), 96, 16),
            tile: TileConfig::new(64, 16),
            stream: 0,
            phase: 0,
        }];
        for q in 0..12u32 {
            ctas.push(CtaPlan {
                queries: vec![q as usize],
                kv: KvSlice::new(vec![BlockId(100 + q)], 13, 16),
                tile: TileConfig::new(16, 16),
                stream: 1,
                phase: 0,
            });
        }
        let plan = KernelPlan::new(ctas);
        let sequential = execute_numeric(&batch, &acts, &store, &plan).unwrap();
        for threads in [1, 2, 5, 16] {
            let parallel = execute_numeric_parallel(&batch, &acts, &store, &plan, threads).unwrap();
            assert!(
                parallel.max_abs_diff(&sequential) < 1e-5,
                "threads={threads}"
            );
        }
        let want = reference_output(&batch, &acts, &store);
        let got = execute_numeric_parallel(&batch, &acts, &store, &plan, 4).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn parallel_rejects_invalid_plans() {
        let head = HeadConfig::new(8, 4, 16);
        let batch = DecodeBatch::new(head, vec![BlockTable::new(vec![BlockId(0)], 16, 16)], 2);
        let acts = QueryActivations::synthetic(head, 1, 1);
        let store = KvStore::synthetic_for(&batch, 2);
        let empty = KernelPlan::new(vec![]);
        assert!(execute_numeric_parallel(&batch, &acts, &store, &empty, 4).is_err());
    }
}
