//! # pat-bench — harnesses regenerating every table and figure of the paper
//!
//! Each `cargo bench -p pat-bench --bench <name>` target is a standalone
//! harness (no criterion timing loop — the numbers *are* simulation outputs)
//! that prints the same rows/series the paper reports and persists them as
//! JSON under `target/bench-results/`. The `micro` target additionally runs
//! criterion micro-benchmarks of the host-side hot paths (pack scheduler,
//! online-softmax merge, tiled attention).
//!
//! See `DESIGN.md` for the experiment ↔ module index and `EXPERIMENTS.md`
//! for paper-vs-measured numbers.

use attn_kernel::{simulate_plan, AttentionBackend, DecodeBatch, TimingReport};
use baselines::{
    Cascade, Deft, FastTree, FlashAttention, FlashInfer, RelayAttention, RelayAttentionPP,
};
use pat_core::PatBackend;
use serde::Serialize;
use sim_gpu::GpuSpec;
use std::fs;
use std::path::PathBuf;

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// A bench-harness failure: filesystem trouble under
/// `target/bench-results/`, result-set serialization, or a backend plan the
/// kernel simulator rejects. Harness `main`s `.expect()` these — a figure
/// regeneration that cannot persist its output should abort loudly — while
/// library code propagates them.
#[derive(Debug)]
pub enum BenchError {
    /// A filesystem operation failed.
    Io {
        /// The path being created or written.
        path: PathBuf,
        /// The underlying IO error.
        source: std::io::Error,
    },
    /// JSON serialization of a result set failed.
    Serialize(String),
    /// A backend produced a plan the kernel simulator rejected, or failed
    /// to plan a batch the harness requires it to support.
    Plan {
        /// The system whose plan failed.
        system: String,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            BenchError::Serialize(e) => write!(f, "serializing results: {e}"),
            BenchError::Plan { system, detail } => write!(f, "{system}: {detail}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Directory where bench harnesses persist their JSON series.
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the directory cannot be created.
pub fn results_dir() -> Result<PathBuf, BenchError> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-results");
    fs::create_dir_all(&dir).map_err(|source| BenchError::Io {
        path: dir.clone(),
        source,
    })?;
    Ok(dir)
}

/// Writes a JSON-serializable result set for later inspection. Every
/// persisted artifact embeds the output-scoped PAT_* knob snapshot under a
/// top-level `"knobs"` field (see `sim_core::knobs`), so a result file
/// always records the configuration that produced it.
///
/// # Errors
///
/// Returns [`BenchError::Serialize`] when the value cannot be rendered and
/// [`BenchError::Io`] when the file cannot be written.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> Result<(), BenchError> {
    let path = results_dir()?.join(format!("{name}.json"));
    let json = artifact_json(value)?;
    fs::write(&path, json).map_err(|source| BenchError::Io {
        path: path.clone(),
        source,
    })?;
    println!("[saved {}]", path.display());
    Ok(())
}

/// Renders a result set as the exact bytes [`save_json`] persists: pretty
/// JSON with the output-scoped knob snapshot embedded. Use this for
/// additional committed copies of an artifact (the `BENCH_*.json` records
/// at the repository root) so every persisted form carries its knobs.
///
/// # Errors
///
/// Returns [`BenchError::Serialize`] when the value cannot be rendered.
pub fn artifact_json<T: Serialize>(value: &T) -> Result<String, BenchError> {
    let json =
        serde_json::to_string_pretty(value).map_err(|e| BenchError::Serialize(e.to_string()))?;
    Ok(embed_knobs(&json))
}

/// Splices the knob snapshot into a pretty-printed top-level JSON object
/// (or array, which is wrapped as `{"knobs": …, "data": […]}`). Inputs
/// that are neither are returned unchanged.
fn embed_knobs(json: &str) -> String {
    let knobs = sim_core::knobs::snapshot().artifact_json();
    let trimmed = json.trim_end();
    if let Some(rest) = trimmed.strip_prefix('{') {
        // `{}` → `{"knobs": …}`; `{…}` → `{"knobs": …, …}`.
        let rest = rest.trim_start();
        if rest == "}" {
            format!("{{\n  \"knobs\": {knobs}\n}}")
        } else {
            format!("{{\n  \"knobs\": {knobs},\n  {rest}")
        }
    } else if trimmed.starts_with('[') {
        let indented = trimmed.replace('\n', "\n  ");
        format!("{{\n  \"knobs\": {knobs},\n  \"data\": {indented}\n}}")
    } else {
        json.to_string()
    }
}

/// The eight systems of the kernel benchmark (Fig. 11/17), PAT first.
pub fn kernel_systems() -> Vec<Box<dyn AttentionBackend>> {
    vec![
        Box::new(PatBackend::new()),
        Box::new(FlashAttention::new()),
        Box::new(FlashInfer::new()),
        Box::new(FastTree::new()),
        Box::new(RelayAttention::new()),
        Box::new(RelayAttentionPP::new()),
        Box::new(Deft::new()),
        Box::new(Cascade::new()),
    ]
}

/// One measured cell of a kernel benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct KernelCell {
    /// System name.
    pub system: String,
    /// Batch-spec label.
    pub config: String,
    /// Head configuration label.
    pub heads: String,
    /// Attention latency in microseconds (`None` when unsupported).
    pub latency_us: Option<f64>,
    /// Normalized performance (PAT = 1.0).
    pub normalized: Option<f64>,
}

/// Simulates one backend on one batch; `Ok(None)` if unsupported.
///
/// # Errors
///
/// Returns [`BenchError::Plan`] when the backend's plan fails validation or
/// kernel simulation.
pub fn time_backend(
    backend: &dyn AttentionBackend,
    batch: &DecodeBatch,
    spec: &GpuSpec,
) -> Result<Option<TimingReport>, BenchError> {
    if !backend.supports(batch) {
        return Ok(None);
    }
    let plan = backend.plan(batch, spec);
    plan.validate(batch).map_err(|e| BenchError::Plan {
        system: backend.name().to_string(),
        detail: format!("produced an invalid plan: {e}"),
    })?;
    let report = simulate_plan(batch, &plan, spec).map_err(|e| BenchError::Plan {
        system: backend.name().to_string(),
        detail: format!("plan failed kernel simulation: {e}"),
    })?;
    Ok(Some(report))
}

/// Formats an optional latency for table output.
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:8.1}"),
        None => format!("{:>8}", "--"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    #[test]
    fn kernel_systems_has_eight_entries_pat_first() {
        let systems = kernel_systems();
        assert_eq!(systems.len(), 8);
        assert_eq!(systems[0].name(), "PAT");
    }

    #[test]
    fn time_backend_returns_none_for_unsupported() {
        let batch = DecodeBatch::new(
            HeadConfig::new(16, 8, 128), // group size 2: FastTree unsupported
            vec![BlockTable::new(vec![BlockId(0)], 16, 16)],
            2,
        );
        let spec = GpuSpec::a100_sxm4_80gb();
        let fasttree = time_backend(&FastTree::new(), &batch, &spec).expect("simulates");
        assert!(fasttree.is_none());
        let fa = time_backend(&FlashAttention::new(), &batch, &spec).expect("simulates");
        assert!(fa.is_some());
    }

    /// Round trip: the knob snapshot embedded by [`artifact_json`] parses
    /// back to exactly `knobs::snapshot().artifact_map()`, overrides
    /// included, and perf-only knobs never leak into the artifact.
    #[test]
    fn artifact_json_round_trips_the_knob_snapshot() {
        use serde::Value;
        use sim_core::knobs;

        fn knob_strings(json: &str) -> Vec<(String, String)> {
            let value: Value = serde_json::from_str(json).expect("valid JSON");
            let embedded = value
                .get("knobs")
                .and_then(Value::as_map)
                .expect("knobs map");
            embedded
                .iter()
                .map(|(k, v)| match v {
                    Value::Str(s) => (k.clone(), s.clone()),
                    other => panic!("knob {k} must be a string, got {other:?}"),
                })
                .collect()
        }

        knobs::set_override("PAT_GPU_MODEL", Some("h100"));
        let json = artifact_json(&vec![1u64, 2, 3]).expect("serializes");
        knobs::set_override("PAT_GPU_MODEL", None);
        let overridden = knob_strings(&json);
        assert!(
            overridden
                .iter()
                .any(|(k, v)| k == "PAT_GPU_MODEL" && v == "h100"),
            "override must be captured in the artifact: {overridden:?}"
        );
        assert!(
            overridden
                .iter()
                .all(|(k, _)| k != "PAT_SIM_THREADS" && k != "PAT_STEP_CACHE"),
            "perf-only knobs must not appear in artifacts: {overridden:?}"
        );
        // Non-object payloads are wrapped so the snapshot always fits.
        let value: Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(
            value.get("data").is_some(),
            "array payload wrapped under `data`"
        );

        // With the override cleared, a fresh embed matches the registry
        // snapshot key-for-key and value-for-value.
        let fresh: std::collections::BTreeMap<String, String> =
            knob_strings(&artifact_json(&vec![0u64]).expect("serializes"))
                .into_iter()
                .collect();
        let expected = knobs::snapshot().artifact_map();
        assert_eq!(fresh, expected, "embedded snapshot must round-trip exactly");
    }
}

/// Runs the full kernel benchmark grid (Fig. 11 on A100, Fig. 17 on H100):
/// 20 decode-batch configurations × 4 head configurations × 8 systems.
/// Prints normalized performance (PAT = 1.00, higher is better) and returns
/// all cells.
///
/// # Errors
///
/// Returns [`BenchError::Plan`] when any system's plan fails simulation, or
/// when PAT itself reports a grid batch unsupported (it must support all of
/// them to serve as the normalization baseline).
pub fn run_kernel_figure(spec: &GpuSpec, figure: &str) -> Result<Vec<KernelCell>, BenchError> {
    use attn_math::HeadConfig;
    use workloads::figure11_specs;

    let systems = kernel_systems();
    let mut cells = Vec::new();
    for head in HeadConfig::paper_benchmark_set() {
        banner(&format!(
            "{figure} — heads {}/{} on {}  (normalized perf, PAT = 1.00; -- = unsupported)",
            head.num_heads(),
            head.num_kv_heads(),
            spec.name
        ));
        print!("{:<28}", "config");
        for s in &systems {
            print!(" {:>10}", shorten(s.name()));
        }
        println!();
        for (i, batch_spec) in figure11_specs().iter().enumerate() {
            let batch = batch_spec.build(head);
            let mut times: Vec<Option<f64>> = Vec::with_capacity(systems.len());
            for s in &systems {
                times.push(time_backend(s.as_ref(), &batch, spec)?.map(|r| r.total_ns));
            }
            let pat_ns = times[0].ok_or_else(|| BenchError::Plan {
                system: "PAT".to_string(),
                detail: format!(
                    "reported grid batch `{}` unsupported; it is the normalization baseline",
                    batch_spec.label()
                ),
            })?;
            print!("({:>2}) {:<23}", i + 1, batch_spec.label());
            for (s, t) in systems.iter().zip(&times) {
                let normalized = t.map(|ns| pat_ns / ns);
                match normalized {
                    Some(x) => print!(" {x:>10.2}"),
                    None => print!(" {:>10}", "--"),
                }
                cells.push(KernelCell {
                    system: s.name().to_string(),
                    config: batch_spec.label(),
                    heads: format!("{}/{}", head.num_heads(), head.num_kv_heads()),
                    latency_us: t.map(|ns| ns / 1000.0),
                    normalized,
                });
            }
            println!();
        }
    }
    summarize_kernel_cells(&cells);
    Ok(cells)
}

fn shorten(name: &str) -> String {
    match name {
        "FlashAttention" => "FA".into(),
        "FlashInfer" => "FI".into(),
        "RelayAttention" => "Relay".into(),
        "RelayAttention++" => "Relay++".into(),
        other => other.into(),
    }
}

/// Prints the §8.3-style summary: average latency reduction and max speedup
/// of PAT vs each baseline over the prefixed configurations.
pub fn summarize_kernel_cells(cells: &[KernelCell]) {
    use std::collections::BTreeMap;
    let mut per_system: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
    for cell in cells {
        if cell.system == "PAT"
            || !cell.config.contains("B=[1,")
                && !cell.config.contains("B=[2,")
                && !cell.config.contains("B=[4,")
                && !cell.config.contains("B=[8,")
        {
            continue;
        }
        // Pair this cell with PAT's latency on the same (config, heads).
        let pat = cells
            .iter()
            .find(|c| c.system == "PAT" && c.config == cell.config && c.heads == cell.heads)
            .and_then(|c| c.latency_us);
        if let (Some(pat_us), Some(base_us)) = (pat, cell.latency_us) {
            per_system
                .entry(cell.system.as_str())
                .or_default()
                .push((pat_us, base_us));
        }
    }
    banner("Summary over shared-prefix configs (paper §8.3)");
    let mut all_reductions = Vec::new();
    for (system, pairs) in per_system {
        let mean_reduction = pairs
            .iter()
            .map(|(p, b)| (1.0 - p / b) * 100.0)
            .sum::<f64>()
            / pairs.len() as f64;
        let max_speedup = pairs.iter().map(|(p, b)| b / p).fold(0.0f64, f64::max);
        println!(
            "vs {system:<18} mean attention-latency reduction {mean_reduction:5.1}%   max speedup {max_speedup:5.1}x   (n={})",
            pairs.len()
        );
        all_reductions.extend(pairs.iter().map(|(p, b)| (1.0 - p / b) * 100.0));
    }
    if !all_reductions.is_empty() {
        let overall = all_reductions.iter().sum::<f64>() / all_reductions.len() as f64;
        println!("overall mean reduction: {overall:.1}%  (paper: 53.5%)");
    }
}

/// One row of the kernel-equivalence validation (Fig. 8c/d, Fig. 9).
#[derive(Debug, Clone, Serialize)]
pub struct EquivalenceRow {
    /// Tile configuration label.
    pub tile: String,
    /// Resident CTAs per SM.
    pub ctas_per_sm: usize,
    /// Average HBM bandwidth utilization.
    pub bandwidth_utilization: f64,
    /// Kernel latency in microseconds.
    pub latency_us: f64,
}

/// Runs the kernel-equivalence validation of §5.2: a no-prefix decode batch
/// (KV length 1024) executed under every feasible tile configuration. All
/// feasible tiles should sustain similar bandwidth utilization and latency.
///
/// # Errors
///
/// Returns [`BenchError::Plan`] when a feasible tile's plan fails kernel
/// simulation.
pub fn kernel_equivalence(
    spec: &GpuSpec,
    batch_size: usize,
) -> Result<Vec<EquivalenceRow>, BenchError> {
    use attn_kernel::{CtaPlan, KernelPlan, KvSlice};
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};
    use pat_core::TileSolver;
    use sim_gpu::Occupancy;

    let head = HeadConfig::new(32, 8, 128);
    let bs = 16;
    let blocks_per_q = 1024 / bs;
    let tables: Vec<BlockTable> = (0..batch_size)
        .map(|q| {
            let ids: Vec<BlockId> = (0..blocks_per_q as u32)
                .map(|i| BlockId(q as u32 * 1000 + i))
                .collect();
            BlockTable::new(ids, 1024, bs)
        })
        .collect();
    let batch = DecodeBatch::new(head, tables, 2);
    let solver = TileSolver::new(spec.clone(), head.head_dim(), 2);
    let occupancy = Occupancy::new(spec.clone());

    let mut rows = Vec::new();
    for tile in solver.feasible_tiles() {
        let ctas: Vec<CtaPlan> = (0..batch_size)
            .map(|q| CtaPlan {
                queries: vec![q],
                kv: KvSlice::new(batch.tables()[q].blocks().to_vec(), 1024, bs),
                tile,
                stream: 0,
                phase: 0,
            })
            .collect();
        let plan = KernelPlan::new(ctas);
        let report = simulate_plan(&batch, &plan, spec).map_err(|e| BenchError::Plan {
            system: format!("tile {tile}"),
            detail: format!("plan failed kernel simulation: {e}"),
        })?;
        rows.push(EquivalenceRow {
            tile: tile.to_string(),
            ctas_per_sm: occupancy.ctas_per_sm(tile.resources(128, 2)).unwrap_or(0),
            bandwidth_utilization: report.bandwidth_utilization,
            latency_us: report.forward_ns / 1000.0,
        });
    }
    Ok(rows)
}
