/root/repo/target/release/deps/serde-d6b3feba08ab3036.d: crates/compat-serde/src/lib.rs

/root/repo/target/release/deps/libserde-d6b3feba08ab3036.rlib: crates/compat-serde/src/lib.rs

/root/repo/target/release/deps/libserde-d6b3feba08ab3036.rmeta: crates/compat-serde/src/lib.rs

crates/compat-serde/src/lib.rs:
