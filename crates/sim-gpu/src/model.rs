//! Named hardware models: the curated [`GpuSpec`] presets as an enum.
//!
//! [`GpuSpec`] itself is open — any parameterization can be built or
//! deserialized — but most of the stack (env knobs, the tile-cache tuner,
//! calibration tables, bench sweeps) wants a small closed family it can
//! enumerate deterministically. [`GpuModel`] is that family; the
//! `PAT_GPU_MODEL` environment variable selects one by name.

use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Environment variable selecting the simulated hardware model
/// (`a100`, `h100`, `v100`, `b200`, or `tpu`; unset means `a100`).
pub const GPU_MODEL_ENV: &str = "PAT_GPU_MODEL";

/// A named, curated hardware model — one of the [`GpuSpec`] presets.
///
/// Ordered by the §9 compute-to-bandwidth trend for the NVIDIA parts, with
/// the TPU-like systolic model last.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum GpuModel {
    /// NVIDIA V100-SXM2-32GB (Volta).
    V100,
    /// NVIDIA A100-SXM4-80GB (Ampere) — the paper's testbed and the default.
    #[default]
    A100,
    /// NVIDIA H100-SXM5-80GB (Hopper).
    H100,
    /// NVIDIA B200-SXM-192GB (Blackwell).
    B200,
    /// TPU-v5p-like systolic accelerator (Ragged Paged Attention's target).
    TpuLike,
}

impl GpuModel {
    /// Every curated model, in a fixed deterministic order. Sweeps and the
    /// tile tuner iterate this, so the order is part of committed artifacts.
    pub fn all() -> [GpuModel; 5] {
        [
            GpuModel::V100,
            GpuModel::A100,
            GpuModel::H100,
            GpuModel::B200,
            GpuModel::TpuLike,
        ]
    }

    /// Parses a model name (`"a100"`, `"h100"`, `"v100"`, `"b200"`,
    /// `"tpu"`/`"tpu-like"`, case-insensitive). Returns `None` otherwise.
    pub fn parse(name: &str) -> Option<GpuModel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "v100" => Some(GpuModel::V100),
            "a100" => Some(GpuModel::A100),
            "h100" => Some(GpuModel::H100),
            "b200" => Some(GpuModel::B200),
            "tpu" | "tpu-like" | "tpulike" => Some(GpuModel::TpuLike),
            _ => None,
        }
    }

    /// Canonical lowercase knob name (`"a100"`, ..., `"tpu"`).
    pub fn name(self) -> &'static str {
        match self {
            GpuModel::V100 => "v100",
            GpuModel::A100 => "a100",
            GpuModel::H100 => "h100",
            GpuModel::B200 => "b200",
            GpuModel::TpuLike => "tpu",
        }
    }

    /// The full hardware specification for this model.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::V100 => GpuSpec::v100_sxm2_32gb(),
            GpuModel::A100 => GpuSpec::a100_sxm4_80gb(),
            GpuModel::H100 => GpuSpec::h100_sxm5_80gb(),
            GpuModel::B200 => GpuSpec::b200_sxm_192gb(),
            GpuModel::TpuLike => GpuSpec::tpu_v5p_like(),
        }
    }

    /// Looks a model up by its spec's marketing name (the inverse of
    /// `spec().name`), so artifacts keyed by spec name can be resolved
    /// back to a model. Returns `None` for non-preset specs.
    pub fn from_spec_name(spec_name: &str) -> Option<GpuModel> {
        GpuModel::all()
            .into_iter()
            .find(|m| m.spec().name == spec_name)
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The hardware model selected by [`GPU_MODEL_ENV`], defaulting to
/// [`GpuModel::A100`] when unset or unrecognized.
pub fn gpu_model_from_env() -> GpuModel {
    sim_core::knobs::raw(GPU_MODEL_ENV)
        .and_then(|v| GpuModel::parse(&v))
        .unwrap_or(GpuModel::A100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_canonical_names() {
        for m in GpuModel::all() {
            assert_eq!(GpuModel::parse(m.name()), Some(m));
            assert_eq!(GpuModel::parse(&m.name().to_uppercase()), Some(m));
        }
        assert_eq!(GpuModel::parse("mi300"), None);
        assert_eq!(GpuModel::parse(""), None);
    }

    #[test]
    fn spec_names_are_distinct_and_invertible() {
        let mut names: Vec<String> = GpuModel::all().iter().map(|m| m.spec().name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5, "spec names must be distinct: {names:?}");
        for m in GpuModel::all() {
            assert_eq!(GpuModel::from_spec_name(&m.spec().name), Some(m));
        }
        assert_eq!(GpuModel::from_spec_name("A100-PCIe-40GB"), None);
    }

    #[test]
    fn default_is_the_paper_testbed() {
        assert_eq!(GpuModel::default(), GpuModel::A100);
        assert_eq!(GpuModel::default().spec(), GpuSpec::a100_sxm4_80gb());
    }

    #[test]
    fn serde_round_trips() {
        for m in GpuModel::all() {
            let json = serde_json::to_string(&m).unwrap();
            let back: GpuModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
    }
}
