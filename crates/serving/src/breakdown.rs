//! Latency breakdown across context length (Fig. 1).
//!
//! For a fixed decode batch, measures how the share of decode-step time spent
//! in attention grows with context length — the paper's motivation that
//! decode attention reaches ~53% of latency for 8B models on A100.

use crate::costs::CostModel;
use crate::model::ModelSpec;
use attn_kernel::{simulate_plan, AttentionBackend, DecodeBatch};
use baselines::FlashAttention;
use kv_cache::{BlockId, BlockTable, DEFAULT_BLOCK_SIZE};
use sim_core::cast::usize_to_u32;
use sim_gpu::GpuSpec;

/// One row of the Fig. 1 breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownRow {
    /// Context length (KV tokens per request).
    pub context_len: usize,
    /// Decode attention time per step, ms.
    pub attention_ms: f64,
    /// Linear (QKVO + FFN + head) time per step, ms.
    pub linear_ms: f64,
    /// Attention share of the decode step, `[0, 1]`.
    pub attention_fraction: f64,
}

/// Computes the decode-phase latency breakdown for `model` at `batch` and
/// the given context lengths, using the stock FlashAttention backend (the
/// breakdown motivates PAT, so it measures the status quo).
pub fn latency_breakdown(
    model: &ModelSpec,
    gpu: &GpuSpec,
    batch: usize,
    context_lens: &[usize],
) -> Vec<BreakdownRow> {
    let cost = CostModel::new(*model, gpu.clone());
    let backend = FlashAttention::new();
    context_lens
        .iter()
        .map(|&ctx| {
            let bs = DEFAULT_BLOCK_SIZE;
            let blocks = ctx.div_ceil(bs);
            let tables: Vec<BlockTable> = (0..batch)
                .map(|q| {
                    let ids: Vec<BlockId> = (0..usize_to_u32(blocks))
                        .map(|i| BlockId(usize_to_u32(q) * 100_000 + i))
                        .collect();
                    BlockTable::new(ids, ctx, bs)
                })
                .collect();
            let decode = DecodeBatch::new(model.head, tables, 2);
            let plan = backend.plan(&decode, gpu);
            let report = simulate_plan(&decode, &plan, gpu).expect("valid plan");
            let attention_ns = report.total_ns * model.num_layers as f64;
            let linear_ns = cost.decode_linear_ns(batch, model.num_layers);
            BreakdownRow {
                context_len: ctx,
                attention_ms: attention_ns / 1e6,
                linear_ms: linear_ns / 1e6,
                attention_fraction: attention_ns / (attention_ns + linear_ns),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_share_grows_with_context() {
        let rows = latency_breakdown(
            &ModelSpec::llama3_8b(),
            &GpuSpec::a100_sxm4_80gb(),
            64,
            &[1024, 4096, 8192],
        );
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(w[1].attention_fraction > w[0].attention_fraction);
        }
    }

    #[test]
    fn attention_dominates_at_long_context_like_fig1() {
        let rows = latency_breakdown(
            &ModelSpec::qwen3_8b(),
            &GpuSpec::a100_sxm4_80gb(),
            64,
            &[8192],
        );
        // Fig. 1: decode attention comes to dominate decode-step latency (the
        // paper's 53% figure is the share of *end-to-end* latency including
        // prefill; within a decode step the share is higher still).
        assert!(
            rows[0].attention_fraction > 0.5,
            "fraction {}",
            rows[0].attention_fraction
        );
    }
}
