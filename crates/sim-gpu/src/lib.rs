//! # sim-gpu — a discrete-event GPU simulator for memory-bound kernels
//!
//! This crate is the hardware substrate of the PAT reproduction. It models the
//! parts of an NVIDIA data-center GPU that determine decode-attention latency
//! (§2.3 of the paper): the global-memory latency/bandwidth curve, SM
//! occupancy limits from shared memory and registers, the GigaThread CTA
//! dispatcher, CUDA streams, the L2 cache, and tensor-core compute floors.
//!
//! The simulator does **not** execute instructions; callers describe each CTA
//! by its memory traffic, sustainable load rate, and compute floor, and the
//! engine resolves contention over time. Exact attention numerics live in the
//! `attn-math` crate.
//!
//! ## Example
//!
//! ```
//! use sim_gpu::{CtaResources, CtaWork, Engine, GpuSpec, KernelSpec, StreamSpec};
//!
//! let spec = GpuSpec::a100_sxm4_80gb();
//! let engine = Engine::new(spec);
//! let ctas = (0..216)
//!     .map(|tag| CtaWork {
//!         tag,
//!         dram_bytes: 1.0e6,
//!         l2_bytes: 0.0,
//!         min_exec_ns: 2_000.0,
//!         rate_cap: 65.0,
//!         tail_ns: 300.0,
//!     })
//!     .collect();
//! let kernel = KernelSpec {
//!     label: "decode-attn(m=32,n=64)".into(),
//!     resources: CtaResources { smem_bytes: 64 * 1024, regs_per_thread: 96, threads: 128 },
//!     ctas,
//! };
//! let result = engine.run(vec![StreamSpec { kernels: vec![kernel] }])?;
//! println!("latency: {:.1} us, bw util {:.0}%",
//!          result.total_ns / 1000.0, result.bandwidth_utilization * 100.0);
//! # Ok::<(), sim_gpu::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod engine;
pub mod l2;
mod memory;
mod model;
mod occupancy;
mod spec;
mod trace;

pub use chrome::chrome_trace_json;
pub use engine::{CtaWork, Engine, EngineError, KernelSpec, RunResult, StreamSpec};
pub use l2::{L2Simulator, TrafficSplit};
pub use memory::TransferModel;
pub use model::{gpu_model_from_env, GpuModel, GPU_MODEL_ENV};
pub use occupancy::{CtaResources, Occupancy, OccupancyViolation};
pub use spec::{GpuSpec, MemoryLevel};
pub use trace::{CtaSpan, ExecutionTrace, KernelSpan};
