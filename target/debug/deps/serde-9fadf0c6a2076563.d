/root/repo/target/debug/deps/serde-9fadf0c6a2076563.d: crates/compat-serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9fadf0c6a2076563.rlib: crates/compat-serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9fadf0c6a2076563.rmeta: crates/compat-serde/src/lib.rs

crates/compat-serde/src/lib.rs:
