/root/repo/target/debug/examples/tile_explorer-ea7341c81c04253d.d: examples/tile_explorer.rs

/root/repo/target/debug/examples/tile_explorer-ea7341c81c04253d: examples/tile_explorer.rs

examples/tile_explorer.rs:
