/root/repo/target/debug/deps/cluster-a9045069cca6e04c.d: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-a9045069cca6e04c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/metrics.rs:
crates/cluster/src/router.rs:
crates/cluster/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
