//! # baselines — the seven comparator attention implementations of §8.2
//!
//! Each baseline is an [`AttentionBackend`](attn_kernel::AttentionBackend)
//! re-implemented as its packing + tiling + launch policy over the shared
//! simulator, with the paper's reported tile configurations and feature
//! restrictions (missing bars in Fig. 11 reproduce via `supports`):
//!
//! | Backend | Paradigm | Tiles | Notes |
//! |---|---|---|---|
//! | [`FlashAttention`] | query-centric | (64,128) | one query per CTA |
//! | [`FlashInfer`] | query-centric | (16,128) | dynamic CTA partitioning |
//! | [`FastTree`] | KV-centric | (64,32)+(16,32) | compute-oriented packing, serial |
//! | [`RelayAttention`] | KV-centric | (64,128) | single first-level prefix only |
//! | [`RelayAttentionPP`] | KV-centric | (64,128) | + L2 reuse for deep prefixes |
//! | [`Deft`] | KV-centric | (32,16) | naive tree packing + load balance |
//! | [`Cascade`] | KV-centric | (64,128)+(16,128) | fixed-level packing |
//!
//! ## Example
//!
//! ```
//! use attn_kernel::{AttentionBackend, DecodeBatch};
//! use attn_math::HeadConfig;
//! use baselines::{all_baselines, FlashAttention};
//! use kv_cache::{BlockId, BlockTable};
//! use sim_gpu::GpuSpec;
//!
//! let head = HeadConfig::new(32, 8, 128);
//! let tables = (0..4u32)
//!     .map(|q| BlockTable::new(vec![BlockId(0), BlockId(10 + q)], 32, 16))
//!     .collect();
//! let batch = DecodeBatch::new(head, tables, 2);
//! let spec = GpuSpec::a100_sxm4_80gb();
//! for backend in all_baselines() {
//!     if backend.supports(&batch) {
//!         backend.plan(&batch, &spec).validate(&batch).unwrap();
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cascade;
mod common;
mod deft;
mod fasttree;
mod flash;
mod relay;

pub use cascade::Cascade;
pub use deft::Deft;
pub use fasttree::FastTree;
pub use flash::{FlashAttention, FlashInfer};
pub use relay::{RelayAttention, RelayAttentionPP};

use attn_kernel::AttentionBackend;

/// All seven baselines in the paper's Fig. 11 order.
pub fn all_baselines() -> Vec<Box<dyn AttentionBackend>> {
    vec![
        Box::new(FlashAttention::new()),
        Box::new(FlashInfer::new()),
        Box::new(FastTree::new()),
        Box::new(RelayAttention::new()),
        Box::new(RelayAttentionPP::new()),
        Box::new(Deft::new()),
        Box::new(Cascade::new()),
    ]
}
