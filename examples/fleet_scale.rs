//! Fleet scale: a 512-replica day, simulated at the fidelity you can afford.
//!
//! A managed 512-replica fleet (health checks, failover, autoscaling,
//! admission control, KV migration) serves a diurnal three-tenant stream —
//! two phase-shifted sinusoidal tenants plus a bursty batch tenant — through
//! two replica crashes. The whole day runs in seeded virtual time; the
//! `--fidelity` flag picks how each replica is modeled:
//!
//! * `analytical` (default) — the closed-form calibrated model: the only way
//!   to turn half a thousand replicas around in seconds;
//! * `replay` — exact engines behind an unbounded step cache;
//! * `exact` — full engines over the kernel simulator (accurate and slow:
//!   expect orders of magnitude more wall time);
//! * `mixed` — the fidelity policy: busy replicas (≥ 8 outstanding) run
//!   Exact, idle ones fall back to Analytical, switching cold mid-run.
//!
//! Run with `cargo run --release --example fleet_scale -- --fidelity mixed`.
//! Pass `--trace out.json` to dump the control plane's event timeline as a
//! Chrome trace (open in `chrome://tracing` or Perfetto).

use controller::{
    result_chrome_json, window_stats, AdmissionConfig, AutoscalerConfig, ControllerConfig,
    FaultEvent, FaultKind, FaultPlan, FidelityPolicy, FleetController, TransferConfig,
};
use pat::prelude::*;
use rand::SeedableRng;
use workloads::{generate_multi_tenant_at, Burst, BurstyArrivals, DiurnalArrivals};

const REPLICAS: usize = 512;
const DAY_S: f64 = 60.0;
const SEED: u64 = 2024;

/// Returns the value following `flag` on the command line, if present.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value, e.g. {flag} analytical")),
            );
        }
    }
    None
}

/// `--fidelity exact|replay|analytical|mixed` → (uniform fidelity, policy).
fn fidelity_choice() -> (Fidelity, Option<FidelityPolicy>) {
    match arg_value("--fidelity").as_deref() {
        None | Some("analytical") => (Fidelity::Analytical, None),
        Some("exact") => (Fidelity::Exact, None),
        Some("replay") => (Fidelity::Replay, None),
        // Mixed starts everyone cold; the policy promotes busy replicas.
        Some("mixed") => (
            Fidelity::Analytical,
            Some(FidelityPolicy::hot_exact_cold_analytical()),
        ),
        Some(other) => panic!("unknown fidelity {other:?}: use exact|replay|analytical|mixed"),
    }
}

fn main() {
    let (fidelity, policy) = fidelity_choice();

    // Three tenants, ~2 req/s per replica at the mean: a toolagent tenant
    // on the full diurnal cycle, a conversation tenant half a cycle out of
    // phase, and a batch tenant that fires one big midday burst.
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let toolagent = DiurnalArrivals::new(420.0, DAY_S, 0.5).take_until(DAY_S, &mut rng);
    let chat = DiurnalArrivals::new(380.0, DAY_S / 2.0, 0.4).take_until(DAY_S, &mut rng);
    let batch = BurstyArrivals::new(
        224.0,
        vec![Burst {
            start_s: 0.45 * DAY_S,
            end_s: 0.55 * DAY_S,
            multiplier: 2.0,
        }],
    )
    .take_until(DAY_S, &mut rng);
    let day = generate_multi_tenant_at(
        &[
            (TraceKind::ToolAgent, toolagent),
            (TraceKind::Conversation, chat),
            (TraceKind::QwenB, batch),
        ],
        SEED,
    );

    // Two crashes while the fleet is busy; both replicas return cold.
    let faults = FaultPlan::scripted(vec![
        FaultEvent {
            at_s: 0.3 * DAY_S,
            kind: FaultKind::Crash {
                replica: 17,
                restart_after_s: Some(DAY_S / 10.0),
            },
        },
        FaultEvent {
            at_s: 0.6 * DAY_S,
            kind: FaultKind::Crash {
                replica: 301,
                restart_after_s: Some(DAY_S / 10.0),
            },
        },
    ]);

    let engine = ServingConfig::single_gpu(ModelSpec::llama3_8b());
    let mut config = ControllerConfig::managed(REPLICAS, engine);
    config.fidelity = fidelity;
    config.fidelity_policy = policy;
    let mut autoscaler = AutoscalerConfig::new(REPLICAS, REPLICAS + 32);
    autoscaler.scale_up_outstanding = 24.0;
    autoscaler.provision_delay_s = 2.0;
    autoscaler.cooldown_s = 5.0;
    config.autoscaler = Some(autoscaler);
    config.admission = Some(AdmissionConfig {
        max_outstanding_per_replica: 64,
        max_queued: 8192,
    });
    config.transfer = Some(TransferConfig::migration(FleetTopology::uniform(
        REPLICAS,
        LinkSpec::rdma_200g(),
    )));

    println!(
        "{} requests over {DAY_S:.0} s on {REPLICAS} replicas at fidelity {}",
        day.requests.len(),
        match &policy {
            Some(p) => format!("mixed ({:?} when busy, {:?} when idle)", p.hot, p.cold),
            None => format!("{fidelity:?}"),
        },
    );

    let started = std::time::Instant::now();
    let result = FleetController::with_lazy_pat(config, Box::new(LeastOutstanding::new()), faults)
        .run(&day.requests);
    let wall = started.elapsed();

    println!(
        "\ncompleted {} shed {} lost {} unfinished {} | goodput {:.1}% | \
         mean TTFT {:.1} ms, P99 {:.0} ms",
        result.completed,
        result.shed,
        result.lost,
        result.unfinished,
        100.0 * result.goodput,
        result.fleet.mean_ttft_ms,
        result.fleet.p99_ttft_ms,
    );
    println!(
        "crashes {} failovers {} migrations {} fidelity switches {} | \
         scale-ups {} peak {} replicas",
        result.crashes,
        result.failovers,
        result.migrations,
        result.fidelity_switches,
        result.scale_ups,
        result.peak_replicas,
    );

    println!(
        "\n{:<9} {:>9} {:>9} {:>9} {:>13}",
        "quarter", "offered", "done", "goodput", "P99 TTFT(ms)"
    );
    for (name, a, b) in [
        ("night", 0.0, 0.25),
        ("morning", 0.25, 0.5),
        ("midday", 0.5, 0.75),
        ("evening", 0.75, 1.0),
    ] {
        let w = window_stats(&day.requests, &result, a * DAY_S, b * DAY_S);
        println!(
            "{name:<9} {:>9} {:>9} {:>8.1}% {:>13.0}",
            w.offered,
            w.completed,
            100.0 * w.goodput,
            w.p99_ttft_ms,
        );
    }
    println!(
        "\nsimulated {:.0} virtual seconds in {:.1} wall seconds",
        DAY_S,
        wall.as_secs_f64()
    );

    if let Some(path) = arg_value("--trace") {
        std::fs::write(&path, result_chrome_json(&result)).expect("write chrome trace");
        println!(
            "wrote {} timeline events to {path} (load in chrome://tracing)",
            result.timeline.len()
        );
    }
}
