//! Batch structure fingerprints — the keys behind the two caching layers.
//!
//! Both PAT's lazy-update pack cache (§5.1, `pat_core::LazyPat`) and the
//! serving simulator's step-simulation cache (`serving::StepSimCache`) key
//! on *block-granularity structure*: the set of block tables, not the exact
//! token counts. A decode step grows every active request by one token, so
//! exact-token keys would never repeat; block structure, by contrast, is
//! stable for `block_size` consecutive steps per request. Two flavours:
//!
//! * [`batch_structure_fingerprint`] hashes **raw** block ids. This is the
//!   lazy-update key: cached packs embed real [`BlockId`]s, so a hit must
//!   mean the physical blocks are unchanged.
//! * [`batch_timing_fingerprint`] hashes **canonicalized** block ids
//!   (renamed by first occurrence) plus the GPU spec identity. Simulated
//!   timing is invariant under any block-id renaming that preserves the
//!   sharing pattern — only *which* slices coincide matters, never the
//!   numeric ids — so the timing cache also hits across structurally
//!   isomorphic batches (e.g. the same requests re-admitted after a
//!   preemption with freshly allocated blocks).

use crate::batch::DecodeBatch;
use crate::fxhash::{FxHashMap, FxHasher};
use kv_cache::{BlockId, BlockTable};
use sim_gpu::GpuSpec;
use std::hash::{Hash, Hasher};

/// How one decode step's batch relates to the previous step's — the delta
/// classification behind incremental planning (`pat_core::PlanState`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepDelta {
    /// Same queries, same block tables; only token counts may have grown.
    /// The previous packing applies verbatim after a token refresh.
    Unchanged,
    /// The batch differs from its predecessor by chain-local edits only:
    /// request completions, tail-block extensions of surviving requests,
    /// and/or arrivals appended at the batch tail. The previous plan state
    /// can be *patched* instead of rebuilt.
    ChainLocal(StepPatch),
    /// Anything else — rows reordered, tables rewritten (preemption and
    /// re-admission with fresh blocks), shape changes, or no stable ids to
    /// match rows by. Requires a from-scratch rebuild.
    Structural,
}

/// The edit script of a [`StepDelta::ChainLocal`] step, in application
/// order: completions (indices into the *previous* batch), then tail
/// extensions (indices into the *new* batch), then arrivals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepPatch {
    /// Completed requests, as ascending indices into the previous batch.
    pub completed: Vec<usize>,
    /// Surviving requests whose tables appended block(s), as ascending
    /// indices into the new batch.
    pub extended: Vec<usize>,
    /// Newly arrived requests, all sitting at the new batch's tail.
    pub arrived: usize,
}

/// Classifies `batch` against the previous step's `(prev_ids, prev_tables)`.
///
/// `ChainLocal` requires the surviving rows to keep their relative order
/// (continuous batching removes completed rows and appends arrivals, so this
/// holds in steady state) and each surviving table to be a pure tail
/// extension of its predecessor. Token counts are never inspected — they are
/// refreshed, not classified.
///
/// ```
/// use attn_kernel::{classify_step_delta, DecodeBatch, StepDelta};
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
///
/// let head = HeadConfig::new(8, 4, 32);
/// let t = |ids: &[u32], tokens| {
///     BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
/// };
/// let prev = [t(&[0, 1], 20), t(&[0, 2], 24)];
/// // Request 10 finished; request 11 grew a block; request 12 arrived.
/// let next = DecodeBatch::new(head, vec![t(&[0, 2, 5], 33), t(&[7], 4)], 2)
///     .with_query_ids(vec![11, 12]);
/// let StepDelta::ChainLocal(patch) = classify_step_delta(&[10, 11], &prev, &next) else {
///     panic!("chain-local");
/// };
/// assert_eq!((patch.completed, patch.extended, patch.arrived), (vec![0], vec![0], 1));
/// ```
pub fn classify_step_delta(
    prev_ids: &[u64],
    prev_tables: &[BlockTable],
    batch: &DecodeBatch,
) -> StepDelta {
    let Some(ids) = batch.query_ids() else {
        return StepDelta::Structural;
    };
    let tables = batch.tables();
    debug_assert_eq!(prev_ids.len(), prev_tables.len());
    let mut patch = StepPatch::default();
    let (mut oi, mut nj) = (0usize, 0usize);
    while nj < ids.len() {
        // Locate the new row's id among the not-yet-matched previous rows;
        // anything skipped over completed. A miss means the arrival tail
        // starts here (verified below).
        let Some(d) = prev_ids[oi..].iter().position(|&x| x == ids[nj]) else {
            break;
        };
        patch.completed.extend(oi..oi + d);
        oi += d;
        let (old, new) = (prev_tables[oi].blocks(), tables[nj].blocks());
        if new.len() < old.len() || new[..old.len()] != *old {
            return StepDelta::Structural;
        }
        if new.len() > old.len() {
            patch.extended.push(nj);
        }
        oi += 1;
        nj += 1;
    }
    patch.completed.extend(oi..prev_ids.len());
    patch.arrived = ids.len() - nj;
    // The arrival tail must be genuinely new: an old id resurfacing out of
    // order (or duplicated) is a reorder, not an append.
    for &id in &ids[nj..] {
        if prev_ids.contains(&id) {
            return StepDelta::Structural;
        }
    }
    if patch.completed.is_empty() && patch.extended.is_empty() && patch.arrived == 0 {
        StepDelta::Unchanged
    } else {
        StepDelta::ChainLocal(patch)
    }
}

/// Separator mixed between per-request block lists so that moving a block
/// across a table boundary changes the hash.
const TABLE_SEP: u16 = 0xB10C;

fn hash_common(batch: &DecodeBatch, h: &mut FxHasher) {
    let head = batch.head();
    head.num_heads().hash(h);
    head.num_kv_heads().hash(h);
    head.head_dim().hash(h);
    batch.dtype_bytes().hash(h);
    batch.block_size().hash(h);
    batch.num_queries().hash(h);
}

/// Raw-id structure fingerprint of a decode batch: head configuration,
/// dtype width, and every per-request block-id list. Token counts within
/// the last (possibly partial) block are deliberately excluded — growing a
/// request by one token does not change its structure until a new block is
/// appended. This is the lazy-update cache key of §5.1.
///
/// ```
/// use attn_kernel::{batch_structure_fingerprint, DecodeBatch};
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
///
/// let head = HeadConfig::new(8, 4, 32);
/// let a = DecodeBatch::new(head, vec![BlockTable::new(vec![BlockId(0)], 10, 16)], 2);
/// let b = DecodeBatch::new(head, vec![BlockTable::new(vec![BlockId(0)], 11, 16)], 2);
/// let c = DecodeBatch::new(head, vec![BlockTable::new(vec![BlockId(7)], 10, 16)], 2);
/// assert_eq!(batch_structure_fingerprint(&a), batch_structure_fingerprint(&b));
/// assert_ne!(batch_structure_fingerprint(&a), batch_structure_fingerprint(&c));
/// ```
pub fn batch_structure_fingerprint(batch: &DecodeBatch) -> u64 {
    let mut h = FxHasher::default();
    hash_common(batch, &mut h);
    for t in batch.tables() {
        t.blocks().hash(&mut h);
        TABLE_SEP.hash(&mut h);
    }
    h.finish()
}

/// Canonical-id timing fingerprint: like [`batch_structure_fingerprint`]
/// but with block ids renamed to dense indices in order of first occurrence
/// across the batch, and the GPU spec's name mixed in. Two batches receive
/// the same fingerprint exactly when they are structurally isomorphic — the
/// same head/dtype shape and the same block-sharing pattern — which is the
/// precise invariance class of [`crate::simulate_plan`]'s timing output at
/// block granularity.
///
/// ```
/// use attn_kernel::{batch_timing_fingerprint, DecodeBatch};
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
/// use sim_gpu::GpuSpec;
///
/// let head = HeadConfig::new(8, 4, 32);
/// let spec = GpuSpec::a100_sxm4_80gb();
/// // Same sharing pattern under different physical ids: identical key.
/// let a = DecodeBatch::new(head, vec![
///     BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
///     BlockTable::new(vec![BlockId(0), BlockId(2)], 32, 16),
/// ], 2);
/// let b = DecodeBatch::new(head, vec![
///     BlockTable::new(vec![BlockId(90), BlockId(4)], 32, 16),
///     BlockTable::new(vec![BlockId(90), BlockId(17)], 32, 16),
/// ], 2);
/// // Different sharing pattern: different key.
/// let c = DecodeBatch::new(head, vec![
///     BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
///     BlockTable::new(vec![BlockId(3), BlockId(2)], 32, 16),
/// ], 2);
/// assert_eq!(batch_timing_fingerprint(&a, &spec), batch_timing_fingerprint(&b, &spec));
/// assert_ne!(batch_timing_fingerprint(&a, &spec), batch_timing_fingerprint(&c, &spec));
/// ```
pub fn batch_timing_fingerprint(batch: &DecodeBatch, spec: &GpuSpec) -> u64 {
    let mut h = FxHasher::default();
    hash_common(batch, &mut h);
    spec.name.hash(&mut h);
    // Dense renaming by first occurrence; lookups only (no iteration), so
    // the hash map cannot leak nondeterministic order into the fingerprint.
    let mut canon: FxHashMap<BlockId, u32> = FxHashMap::default();
    let mut next: u32 = 0;
    for t in batch.tables() {
        for &b in t.blocks() {
            let id = *canon.entry(b).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            id.hash(&mut h);
        }
        TABLE_SEP.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    fn batch(tables: Vec<BlockTable>) -> DecodeBatch {
        DecodeBatch::new(HeadConfig::new(8, 4, 32), tables, 2)
    }

    #[test]
    fn structure_key_tracks_raw_ids_timing_key_does_not() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let a = batch(vec![BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16)]);
        let b = batch(vec![BlockTable::new(vec![BlockId(5), BlockId(9)], 32, 16)]);
        assert_ne!(
            batch_structure_fingerprint(&a),
            batch_structure_fingerprint(&b)
        );
        assert_eq!(
            batch_timing_fingerprint(&a, &spec),
            batch_timing_fingerprint(&b, &spec)
        );
    }

    #[test]
    fn token_growth_within_last_block_keeps_both_keys() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let a = batch(vec![BlockTable::new(vec![BlockId(0)], 3, 16)]);
        let b = batch(vec![BlockTable::new(vec![BlockId(0)], 4, 16)]);
        assert_eq!(
            batch_structure_fingerprint(&a),
            batch_structure_fingerprint(&b)
        );
        assert_eq!(
            batch_timing_fingerprint(&a, &spec),
            batch_timing_fingerprint(&b, &spec)
        );
    }

    #[test]
    fn new_block_changes_both_keys() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let a = batch(vec![BlockTable::new(vec![BlockId(0)], 16, 16)]);
        let b = batch(vec![BlockTable::new(vec![BlockId(0), BlockId(1)], 17, 16)]);
        assert_ne!(
            batch_structure_fingerprint(&a),
            batch_structure_fingerprint(&b)
        );
        assert_ne!(
            batch_timing_fingerprint(&a, &spec),
            batch_timing_fingerprint(&b, &spec)
        );
    }

    #[test]
    fn timing_key_distinguishes_gpu_specs() {
        let a = batch(vec![BlockTable::new(vec![BlockId(0)], 16, 16)]);
        assert_ne!(
            batch_timing_fingerprint(&a, &GpuSpec::a100_sxm4_80gb()),
            batch_timing_fingerprint(&a, &GpuSpec::h100_sxm5_80gb())
        );
    }

    fn t(ids: &[u32], tokens: usize) -> BlockTable {
        BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
    }

    #[test]
    fn classify_without_ids_is_structural() {
        let prev = [t(&[0], 10)];
        let next = batch(vec![t(&[0], 11)]);
        assert_eq!(
            classify_step_delta(&[1], &prev, &next),
            StepDelta::Structural
        );
    }

    #[test]
    fn classify_token_growth_is_unchanged() {
        let prev = [t(&[0, 1], 20), t(&[0, 2], 24)];
        let next = batch(vec![t(&[0, 1], 21), t(&[0, 2], 25)]).with_query_ids(vec![7, 9]);
        assert_eq!(
            classify_step_delta(&[7, 9], &prev, &next),
            StepDelta::Unchanged
        );
    }

    #[test]
    fn classify_boundary_crossing_is_an_extension() {
        let prev = [t(&[0, 1], 32), t(&[0, 2], 30)];
        let next = batch(vec![t(&[0, 1, 5], 33), t(&[0, 2], 31)]).with_query_ids(vec![7, 9]);
        let StepDelta::ChainLocal(p) = classify_step_delta(&[7, 9], &prev, &next) else {
            panic!("expected chain-local");
        };
        assert_eq!((p.completed, p.extended, p.arrived), (vec![], vec![0], 0));
    }

    #[test]
    fn classify_mixed_completion_extension_arrival() {
        let prev = [t(&[0, 1], 32), t(&[0, 2], 32), t(&[9], 8)];
        let next = batch(vec![t(&[0, 2, 5], 33), t(&[9], 9), t(&[20], 3)])
            .with_query_ids(vec![11, 12, 13]);
        let StepDelta::ChainLocal(p) = classify_step_delta(&[10, 11, 12], &prev, &next) else {
            panic!("expected chain-local");
        };
        assert_eq!((p.completed, p.extended, p.arrived), (vec![0], vec![0], 1));
    }

    #[test]
    fn classify_rewrites_and_reorders_are_structural() {
        let prev = [t(&[0, 1], 32), t(&[0, 2], 32)];
        // Rewritten table (preemption + re-admission with fresh blocks).
        let rewritten = batch(vec![t(&[3, 4], 32), t(&[0, 2], 32)]).with_query_ids(vec![7, 9]);
        assert_eq!(
            classify_step_delta(&[7, 9], &prev, &rewritten),
            StepDelta::Structural
        );
        // Shrunk table.
        let shrunk = batch(vec![t(&[0], 16), t(&[0, 2], 32)]).with_query_ids(vec![7, 9]);
        assert_eq!(
            classify_step_delta(&[7, 9], &prev, &shrunk),
            StepDelta::Structural
        );
        // Reordered rows: id 7 resurfaces after id 9.
        let reordered = batch(vec![t(&[0, 2], 32), t(&[0, 1], 32)]).with_query_ids(vec![9, 7]);
        assert_eq!(
            classify_step_delta(&[7, 9], &prev, &reordered),
            StepDelta::Structural
        );
    }

    #[test]
    fn table_boundaries_matter() {
        let spec = GpuSpec::a100_sxm4_80gb();
        // [0,1] + [2] vs [0] + [1,2]: same flat id sequence, different split.
        let a = batch(vec![
            BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
            BlockTable::new(vec![BlockId(2)], 16, 16),
        ]);
        let b = batch(vec![
            BlockTable::new(vec![BlockId(0)], 16, 16),
            BlockTable::new(vec![BlockId(1), BlockId(2)], 32, 16),
        ]);
        assert_ne!(
            batch_structure_fingerprint(&a),
            batch_structure_fingerprint(&b)
        );
        assert_ne!(
            batch_timing_fingerprint(&a, &spec),
            batch_timing_fingerprint(&b, &spec)
        );
    }
}
