//! Exhaustive packing optimizer for small trees.
//!
//! §5.1 argues that the packing search space "grows exponentially with query
//! count and prefix lengths, so an exact solver is impractical for online
//! serving" — hence TreeHeuristic. This module implements the exact solver
//! anyway (for offline validation): it enumerates every per-edge
//! split/merge assignment, scores each resulting partition with the same
//! memory-access objective the profit model linearizes, and returns the
//! optimum. Tests confirm the linear-time heuristic stays near the
//! exhaustive optimum — and document one structural case where the greedy
//! per-child rule is strictly suboptimal (merging *all* children of a short
//! parent removes the parent pack entirely, a saving the per-child marginal
//! analysis never sees).

use crate::packer::{pack_forest, Pack};
use crate::profit::INTERMEDIATE_FACTOR;
use kv_cache::{PrefixForest, PrefixNode};

/// Total modeled memory accesses of a packing, in token·d units: every
/// pack loads its KV run once, and a query appearing in `k` packs spills
/// `k - 1` fp32 intermediates (the final pack writes output directly) at
/// the paper's `8/2 = 4` units each — exactly the accounting behind
/// Eqs. 1–2 (§5.1's problem formulation).
pub fn packing_cost(packs: &[Pack], num_queries: usize) -> f64 {
    let kv_loads: usize = packs.iter().map(|p| p.tokens).sum();
    let mut packs_per_query = vec![0usize; num_queries];
    for p in packs {
        for &q in &p.queries {
            packs_per_query[q] += 1;
        }
    }
    let intermediates: f64 = packs_per_query
        .iter()
        .map(|&k| (INTERMEDIATE_FACTOR / 2.0) * k.saturating_sub(1) as f64)
        .sum();
    kv_loads as f64 + intermediates
}

/// Enumerates all packings reachable by per-edge split/merge decisions (the
/// Scheme-1/Scheme-2 space of Algorithm 1) and returns the minimum-cost one.
///
/// # Panics
///
/// Panics if the forest has more than 20 internal edges (4^10+ candidates).
pub fn exact_pack(forest: &PrefixForest, num_queries: usize) -> (Vec<Pack>, f64) {
    let edges: usize = count_internal_edges(forest);
    assert!(
        edges <= 20,
        "exact packing is exponential; {edges} edges is too many"
    );
    let combos = 1u64 << edges;
    // Mask 0 (the all-split packing) always runs, so `best` is always
    // improved past the infinite sentinel.
    let mut best: (Vec<Pack>, f64) = (Vec::new(), f64::INFINITY);
    for mask in 0..combos {
        let mut packs = Vec::new();
        let mut bit = 0usize;
        for root in forest.roots() {
            assemble(root, &[], 0, 0, mask, &mut bit, &mut packs);
        }
        let cost = packing_cost(&packs, num_queries);
        if cost < best.1 {
            best = (packs, cost);
        }
    }
    best
}

fn count_internal_edges(forest: &PrefixForest) -> usize {
    fn walk(node: &PrefixNode) -> usize {
        node.children.len() + node.children.iter().map(walk).sum::<usize>()
    }
    forest.roots().iter().map(walk).sum()
}

/// Builds the packing for one split/merge assignment (`mask` bit per edge in
/// DFS order; 1 = merge the parent's blocks into the child's subtree).
fn assemble(
    node: &PrefixNode,
    inherited: &[kv_cache::BlockId],
    inherited_tokens: usize,
    node_depth: usize,
    mask: u64,
    bit: &mut usize,
    packs: &mut Vec<Pack>,
) {
    let mut blocks: Vec<kv_cache::BlockId> = inherited.to_vec();
    blocks.extend_from_slice(&node.blocks);
    let tokens = inherited_tokens + node.token_len;
    let start = node_depth - inherited.len();
    let child_depth = node_depth + node.blocks.len();
    if node.is_leaf() {
        if tokens > 0 {
            packs.push(Pack {
                queries: node.queries.clone(),
                blocks,
                tokens,
                start,
            });
        }
        return;
    }
    let mut remaining: Vec<usize> = node.queries.clone();
    for child in &node.children {
        let merge = (mask >> *bit) & 1 == 1;
        *bit += 1;
        if merge {
            assemble(child, &blocks, tokens, child_depth, mask, bit, packs);
            remaining.retain(|q| !child.queries.contains(q));
        } else {
            assemble(child, &[], 0, child_depth, mask, bit, packs);
        }
    }
    if !remaining.is_empty() && tokens > 0 {
        packs.push(Pack {
            queries: remaining,
            blocks,
            tokens,
            start,
        });
    }
}

/// Convenience: TreeHeuristic's cost on the same objective.
pub fn heuristic_cost(forest: &PrefixForest, num_queries: usize) -> f64 {
    packing_cost(&pack_forest(forest), num_queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_kernel::DecodeBatch;
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    fn forest_of(rows: Vec<Vec<u32>>) -> (PrefixForest, usize) {
        let n = rows.len();
        let tables: Vec<BlockTable> = rows
            .into_iter()
            .map(|ids| {
                let blocks: Vec<BlockId> = ids.into_iter().map(BlockId).collect();
                let nb = blocks.len();
                BlockTable::new(blocks, nb * 16, 16)
            })
            .collect();
        let batch = DecodeBatch::new(HeadConfig::new(32, 8, 128), tables, 2);
        (batch.forest(), n)
    }

    /// Small workloads spanning both Scheme choices.
    fn small_cases() -> Vec<Vec<Vec<u32>>> {
        let mut cases = Vec::new();
        // Long root, leaves split (Scheme 1 everywhere).
        cases.push(
            (0..4u32)
                .map(|q| {
                    let mut ids: Vec<u32> = (0..8).collect();
                    ids.push(100 + q);
                    ids
                })
                .collect(),
        );
        // Short root over two 5-query groups (Scheme 2 at the root).
        cases.push(
            (0..10u32)
                .map(|q| vec![0, 100 + (q / 5) * 50, 101 + (q / 5) * 50, 1000 + q])
                .collect(),
        );
        // Three-level tree with clear-cut decisions (long root).
        cases.push(
            (0..8u32)
                .map(|q| {
                    let mut ids: Vec<u32> = (0..8).collect();
                    ids.push(10 + q / 4);
                    ids.push(20 + q / 2);
                    ids.push(1000 + q);
                    ids
                })
                .collect(),
        );
        // No sharing.
        cases.push((0..3u32).map(|q| vec![q * 10, q * 10 + 1]).collect());
        cases
    }

    #[test]
    fn heuristic_is_near_optimal_on_small_trees() {
        for rows in small_cases() {
            let (forest, n) = forest_of(rows);
            let (_, exact) = exact_pack(&forest, n);
            let heuristic = heuristic_cost(&forest, n);
            assert!(heuristic >= exact - 1e-9, "exact must be a lower bound");
            assert!(
                heuristic <= exact * 1.10 + 1e-9,
                "heuristic {heuristic} strays >10% from optimum {exact}"
            );
        }
    }

    /// A documented finding of this reproduction: Algorithm 1's per-child
    /// greedy rule (`merge iff 4·s_i > l_u`) is not globally optimal. When a
    /// short parent has several medium children, merging *all* of them
    /// removes the parent pack entirely — a saving the per-child marginal
    /// analysis never sees. The gap is small (the rule's loss is bounded by
    /// the short parent's length), which is why the paper's heuristic works.
    #[test]
    fn greedy_rule_can_be_strictly_suboptimal() {
        // Root of 20 tokens... approximated at block granularity: 1 block
        // (16 tokens) with two 4-query children: 4*4 = 16 is NOT > 16, so
        // the heuristic splits; the optimum merges both and drops the root.
        let rows: Vec<Vec<u32>> = (0..8u32)
            .map(|q| vec![0, 100 + (q / 4) * 50, 101 + (q / 4) * 50, 1000 + q])
            .collect();
        let (forest, n) = forest_of(rows);
        let (best_packs, exact) = exact_pack(&forest, n);
        let heuristic = heuristic_cost(&forest, n);
        assert!(heuristic > exact, "heuristic {heuristic} vs exact {exact}");
        // The optimum has no root-only pack: block 0 merged into both groups.
        assert!(best_packs.iter().all(|p| p.blocks != vec![BlockId(0)]));
        // ...and the loss is bounded by the parent's length (16 tokens).
        assert!(heuristic - exact <= 16.0 + 1e-9);
    }

    #[test]
    fn exact_beats_or_ties_naive_everywhere() {
        for rows in small_cases() {
            let (forest, n) = forest_of(rows);
            let (_, exact) = exact_pack(&forest, n);
            // All-split corresponds to mask 0.
            let mut packs = Vec::new();
            for root in forest.roots() {
                let mut bit = 0usize;
                super::assemble(root, &[], 0, 0, 0, &mut bit, &mut packs);
            }
            let naive = packing_cost(&packs, n);
            assert!(exact <= naive + 1e-9);
        }
    }

    #[test]
    fn cost_counts_intermediates_for_split_queries() {
        let pack1 = Pack {
            queries: vec![0, 1],
            blocks: vec![BlockId(0)],
            tokens: 16,
            start: 0,
        };
        let pack2 = Pack {
            queries: vec![0],
            blocks: vec![BlockId(1)],
            tokens: 16,
            start: 1,
        };
        let pack3 = Pack {
            queries: vec![1],
            blocks: vec![BlockId(2)],
            tokens: 16,
            start: 1,
        };
        let cost = packing_cost(&[pack1, pack2, pack3], 2);
        // 48 tokens of KV + each query in 2 packs spills 1 intermediate (4).
        assert!((cost - (48.0 + 8.0)).abs() < 1e-9, "{cost}");
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oversized_trees_are_rejected() {
        let rows: Vec<Vec<u32>> = (0..40u32).map(|q| vec![0, 100 + q / 2, 1000 + q]).collect();
        let (forest, n) = forest_of(rows);
        let _ = exact_pack(&forest, n);
    }
}
