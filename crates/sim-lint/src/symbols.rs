//! Pass 1 of the semantic analyzer: per-file symbol tables and the
//! workspace function index.
//!
//! The token rules in [`crate::rules`] need to know what a bare identifier
//! *resolves to*: `var(…)` is harmless when it names a local helper and an
//! R7 violation when the file holds `use std::env::var`. This module builds
//! exactly that much semantic context — no full parse, just:
//!
//! * [`FileSymbols`] — the file's `use`-declaration alias map (alias →
//!   fully-qualified path, groups and `as`-renames resolved), its glob
//!   imports, and the names of functions it defines locally;
//! * [`WorkspaceIndex`] — which crates define each `pub fn` name, built
//!   from every library file in the workspace before any rule runs, so
//!   pass 2 can tell a workspace API call from an imported std one.

use crate::scan::Line;
use std::collections::{BTreeMap, BTreeSet};

/// What a bare identifier in one file resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// An imported path: the full `use` target (e.g. `std::env::var`).
    Import(String),
    /// A function defined in this file.
    LocalFn,
    /// No information — not imported, not locally defined.
    Unknown,
}

/// The symbol table of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// `use` alias map: visible name → fully-qualified path.
    pub imports: BTreeMap<String, String>,
    /// Prefixes of glob imports (`use std::env::*` records `std::env`).
    pub globs: Vec<String>,
    /// Names of `fn` items defined anywhere in this file.
    pub local_fns: BTreeSet<String>,
    /// Names of `pub fn` items defined in this file (feeds the index).
    pub pub_fns: BTreeSet<String>,
}

impl FileSymbols {
    /// Builds the symbol table from scanned lines.
    pub fn build(lines: &[Line]) -> FileSymbols {
        let mut sym = FileSymbols::default();
        let toks = all_tokens(lines);
        collect_uses(&toks, &mut sym);
        collect_fns(&toks, &mut sym);
        sym
    }

    /// Resolves a bare identifier as pass 2 sees it: explicit imports win,
    /// then local function definitions, then nothing.
    pub fn resolve(&self, name: &str) -> Resolution {
        if let Some(path) = self.imports.get(name) {
            return Resolution::Import(path.clone());
        }
        if self.local_fns.contains(name) {
            return Resolution::LocalFn;
        }
        Resolution::Unknown
    }

    /// True when the visible `name` resolves to exactly `full` (an explicit
    /// import of that path).
    pub fn resolves_to(&self, name: &str, full: &str) -> bool {
        matches!(self.resolve(name), Resolution::Import(p) if p == full)
    }
}

/// Workspace-wide function-signature index: which crates define each
/// `pub fn` name.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceIndex {
    /// `pub fn` name → crates defining one.
    pub pub_fns: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceIndex {
    /// Folds one library file's symbols into the index.
    pub fn add_file(&mut self, crate_name: &str, symbols: &FileSymbols) {
        for f in &symbols.pub_fns {
            self.pub_fns
                .entry(f.clone())
                .or_default()
                .insert(crate_name.to_string());
        }
    }

    /// Crates defining a `pub fn` with this name (empty slice view when
    /// none do).
    pub fn defining_crates(&self, fn_name: &str) -> Option<&BTreeSet<String>> {
        self.pub_fns.get(fn_name)
    }
}

/// Flattens the scanned file to one token stream (same tokenizer rules as
/// pass 2: identifier chunks plus single-char punctuation).
fn all_tokens(lines: &[Line]) -> Vec<String> {
    let mut out = Vec::new();
    for l in lines {
        let bytes = l.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                let start = i;
                while i < bytes.len() && {
                    let c = bytes[i] as char;
                    c.is_ascii_alphanumeric() || c == '_'
                } {
                    i += 1;
                }
                out.push(l.code[start..i].to_string());
            } else if c.is_whitespace() {
                i += 1;
            } else {
                out.push(l.code[i..i + 1].to_string());
                i += 1;
            }
        }
    }
    out
}

/// Extracts every `use …;` declaration (including `pub use`) and records
/// the names it makes visible. Handles multi-segment paths, `as` renames,
/// nested `{…}` groups, and `*` globs.
fn collect_uses(toks: &[String], sym: &mut FileSymbols) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i] == "use" {
            // Statement runs to the terminating `;`.
            let end = toks[i + 1..]
                .iter()
                .position(|t| t == ";")
                .map(|p| i + 1 + p)
                .unwrap_or(toks.len());
            parse_use_tree(&toks[i + 1..end], "", sym);
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// Parses one `use`-tree (the tokens after `use`, before `;`), with
/// `prefix` holding the already-resolved leading path (empty at top level).
fn parse_use_tree(toks: &[String], prefix: &str, sym: &mut FileSymbols) {
    // Split the tree at top-level commas (only possible inside groups).
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut parts: Vec<&[String]> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.as_str() {
            "{" => depth += 1,
            "}" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                parts.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&toks[start..]);

    for part in parts {
        if part.is_empty() {
            continue;
        }
        // Walk `seg :: seg :: …` until a group, glob, `as`, or the end.
        let mut path: Vec<String> = if prefix.is_empty() {
            Vec::new()
        } else {
            prefix.split("::").map(str::to_string).collect()
        };
        let mut j = 0;
        while j < part.len() {
            let t = &part[j];
            if t == ":" {
                j += 1; // path separator tokens
            } else if t == "{" {
                // Nested group: recurse with the accumulated prefix. The
                // matching close brace is the last `}` of this part.
                let inner_end = part.iter().rposition(|x| x == "}").unwrap_or(part.len());
                parse_use_tree(&part[j + 1..inner_end], &path.join("::"), sym);
                j = part.len();
                path.clear();
            } else if t == "*" {
                sym.globs.push(path.join("::"));
                j = part.len();
                path.clear();
            } else if t == "as" {
                let full = path.join("::");
                if let Some(alias) = part.get(j + 1) {
                    if alias != "_" {
                        sym.imports.insert(alias.clone(), full);
                    }
                }
                j = part.len();
                path.clear();
            } else {
                path.push(t.clone());
                j += 1;
            }
        }
        if let Some(last) = path.last() {
            // `use a::b::c;` makes `c` visible as `a::b::c`. `use a::b::self`
            // makes `b` visible.
            if last == "self" {
                if path.len() >= 2 {
                    let full = path[..path.len() - 1].join("::");
                    sym.imports.insert(path[path.len() - 2].clone(), full);
                }
            } else {
                sym.imports.insert(last.clone(), path.join("::"));
            }
        }
    }
}

/// Records every `fn name` / `pub fn name` defined in the file.
fn collect_fns(toks: &[String], sym: &mut FileSymbols) {
    for i in 0..toks.len() {
        if toks[i] == "fn" {
            if let Some(name) = toks.get(i + 1) {
                if name
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_alphabetic() || c == '_')
                    .unwrap_or(false)
                {
                    sym.local_fns.insert(name.clone());
                    if i >= 1 && toks[i - 1] == "pub" {
                        sym.pub_fns.insert(name.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn build(src: &str) -> FileSymbols {
        FileSymbols::build(&scan(src))
    }

    #[test]
    fn simple_use_maps_last_segment() {
        let s = build("use std::env;\nuse std::collections::BTreeMap;\n");
        assert_eq!(s.imports.get("env").map(String::as_str), Some("std::env"));
        assert_eq!(
            s.imports.get("BTreeMap").map(String::as_str),
            Some("std::collections::BTreeMap")
        );
    }

    #[test]
    fn grouped_and_renamed_uses_resolve() {
        let s = build("use std::env::{var, set_var as sv, vars};\n");
        assert!(s.resolves_to("var", "std::env::var"));
        assert!(s.resolves_to("sv", "std::env::set_var"));
        assert!(s.resolves_to("vars", "std::env::vars"));
        assert!(!s.imports.contains_key("set_var"));
    }

    #[test]
    fn nested_groups_and_self_resolve() {
        let s = build("use std::{env::{self, var}, thread};\n");
        assert!(s.resolves_to("env", "std::env"));
        assert!(s.resolves_to("var", "std::env::var"));
        assert!(s.resolves_to("thread", "std::thread"));
    }

    #[test]
    fn globs_are_recorded_not_resolved() {
        let s = build("use std::env::*;\n");
        assert!(s.imports.is_empty());
        assert_eq!(s.globs, vec!["std::env".to_string()]);
        assert_eq!(s.resolve("var"), Resolution::Unknown);
    }

    #[test]
    fn local_fns_shadow_nothing_but_register() {
        let s = build("fn var() {}\npub fn snapshot() {}\n");
        assert_eq!(s.resolve("var"), Resolution::LocalFn);
        assert!(s.pub_fns.contains("snapshot"));
        assert!(!s.pub_fns.contains("var"));
    }

    #[test]
    fn explicit_import_wins_over_local_fn() {
        let s = build("use std::env::var;\nfn var() {}\n");
        assert_eq!(
            s.resolve("var"),
            Resolution::Import("std::env::var".to_string())
        );
    }

    #[test]
    fn workspace_index_collects_pub_fns_per_crate() {
        let a = build("pub fn ordered_map() {}\n");
        let b = build("pub fn ordered_map() {}\nfn private() {}\n");
        let mut idx = WorkspaceIndex::default();
        idx.add_file("sim-core", &a);
        idx.add_file("cluster", &b);
        let crates = idx.defining_crates("ordered_map").expect("indexed");
        assert_eq!(crates.len(), 2);
        assert!(idx.defining_crates("private").is_none());
    }

    #[test]
    fn multiline_use_statements_parse() {
        let s = build("use std::env::{\n    var,\n    var_os,\n};\n");
        assert!(s.resolves_to("var", "std::env::var"));
        assert!(s.resolves_to("var_os", "std::env::var_os"));
    }
}
