//! Point-to-point link model and fleet topology.

use sim_core::SimDuration;
use std::collections::BTreeMap;

/// A directed point-to-point link between two replicas.
///
/// Transfer time follows the classic latency/bandwidth model
/// `t = latency + bytes / bandwidth`, rounded *up* to the next nanosecond so
/// a non-empty transfer over a finite link never completes instantaneously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation plus software latency of the link.
    pub latency: SimDuration,
    /// Sustained bandwidth in bytes per second. `f64::INFINITY` models an
    /// idealized link whose transfers cost only `latency`.
    pub bytes_per_s: f64,
}

impl LinkSpec {
    /// A link with the given latency and bandwidth (bytes per second).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_s` is not positive.
    pub fn new(latency: SimDuration, bytes_per_s: f64) -> Self {
        assert!(bytes_per_s > 0.0, "link bandwidth must be positive");
        LinkSpec {
            latency,
            bytes_per_s,
        }
    }

    /// An idealized zero-latency, infinite-bandwidth link. Any transfer over
    /// it completes in zero simulated time — migration over this link is
    /// equivalent to a free warm cache at the destination.
    pub fn instant() -> Self {
        LinkSpec {
            latency: SimDuration::ZERO,
            bytes_per_s: f64::INFINITY,
        }
    }

    /// A 200 Gbit/s RDMA NIC (25 GB/s) with 10 µs latency — the intra-rack
    /// default for GPU fleets.
    pub fn rdma_200g() -> Self {
        LinkSpec::new(SimDuration::from_ns(10_000), 25e9)
    }

    /// A 25 Gbit/s datacenter Ethernet link (3.125 GB/s) with 50 µs latency
    /// — a cross-rack worst case.
    pub fn ethernet_25g() -> Self {
        LinkSpec::new(SimDuration::from_ns(50_000), 3.125e9)
    }

    /// Time to move `bytes` over this link: `latency + bytes / bandwidth`,
    /// ceiling-rounded to integer nanoseconds.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let wire_ns = bytes as f64 / self.bytes_per_s * 1e9;
        self.latency + SimDuration::from_ns_f64_ceil(wire_ns)
    }
}

/// Link topology of a fleet: a uniform default link with optional per-pair
/// overrides, keyed by `(src, dst)` replica index.
///
/// Replica indices beyond `num_replicas` are still answered (autoscaled
/// replicas join with the default link), so the topology never needs
/// resizing mid-run.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    num_replicas: usize,
    default_link: LinkSpec,
    overrides: BTreeMap<(usize, usize), LinkSpec>,
}

impl FleetTopology {
    /// A topology where every ordered replica pair uses `link`.
    pub fn uniform(num_replicas: usize, link: LinkSpec) -> Self {
        FleetTopology {
            num_replicas,
            default_link: link,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides the link used for transfers from `src` to `dst`.
    pub fn set_link(&mut self, src: usize, dst: usize, link: LinkSpec) {
        self.overrides.insert((src, dst), link);
    }

    /// The link used for transfers from `src` to `dst`.
    pub fn link(&self, src: usize, dst: usize) -> LinkSpec {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Number of replicas the topology was declared with (informational;
    /// higher indices fall back to the default link).
    pub fn num_replicas(&self) -> usize {
        self.num_replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_wire_time() {
        let link = LinkSpec::new(SimDuration::from_ns(10_000), 1e9);
        // 1 GB/s → 1 byte per ns: 5000 bytes = 5000 ns wire time.
        assert_eq!(
            link.transfer_time(5_000),
            SimDuration::from_ns(10_000 + 5_000)
        );
    }

    #[test]
    fn wire_time_rounds_up() {
        let link = LinkSpec::new(SimDuration::ZERO, 3e9);
        // 10 bytes at 3 GB/s is 3.33 ns → ceil to 4.
        assert_eq!(link.transfer_time(10), SimDuration::from_ns(4));
    }

    #[test]
    fn instant_link_is_free() {
        let link = LinkSpec::instant();
        assert_eq!(link.transfer_time(u64::MAX), SimDuration::ZERO);
    }

    #[test]
    fn overrides_shadow_the_default() {
        let mut topo = FleetTopology::uniform(4, LinkSpec::rdma_200g());
        topo.set_link(0, 3, LinkSpec::ethernet_25g());
        assert_eq!(topo.link(0, 3), LinkSpec::ethernet_25g());
        assert_eq!(topo.link(3, 0), LinkSpec::rdma_200g());
        // Replicas beyond the declared fleet use the default link.
        assert_eq!(topo.link(9, 12), LinkSpec::rdma_200g());
    }
}
