/root/repo/target/debug/deps/fig12_end_to_end-9bd15cf26befcf6a.d: crates/bench/benches/fig12_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_end_to_end-9bd15cf26befcf6a.rmeta: crates/bench/benches/fig12_end_to_end.rs Cargo.toml

crates/bench/benches/fig12_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
