//! # replica-fidelity — multi-fidelity replica models for fleet simulation
//!
//! Every replica in a simulated fleet used to be a full [`serving`] engine
//! over the kernel-level GPU simulator. That fidelity is the right default
//! for kernel studies, but it caps fleet experiments at tens of replicas:
//! the ROADMAP's "millions of users against O(1k) replicas" scenarios spend
//! almost all their wall-clock inside per-step kernel simulation that fleet
//! questions (routing, failover, autoscaling) do not need.
//!
//! This crate decouples *what a replica costs to simulate* from *what the
//! fleet observes about it*. The [`ReplicaModel`] trait captures the exact
//! surface the `cluster` and `controller` drivers consume — submit / step /
//! clock / queue depths / prefix probes / drain / metrics — and three
//! interchangeable backends implement it:
//!
//! - [`ExactReplica`] — today's full [`serving::ServingEngine`] over the
//!   kernel simulator. Token-exact timing; the reference.
//! - [`ReplayReplica`] — the same engine with an unbounded step-simulation
//!   cache ([`attn_kernel::StepSimCache`]): every structurally distinct
//!   decode step is simulated once and replayed thereafter. Bit-identical
//!   to Exact whenever the bounded default cache would not have evicted
//!   (e.g. lockstep decode), and never slower.
//! - [`AnalyticalReplica`] — no kernel simulator at all: decode-attention
//!   time comes from a closed-form model fitted offline against exact-sim
//!   samples (the committed [`calibration`] table), prefill from the same
//!   FLOPs/bandwidth roofline the engine itself uses, and prefix warmth
//!   from a block-hash [`PrefixStore`] that mirrors the real KV cache at
//!   block granularity. O(batch) arithmetic per decode step.
//!
//! All three run on the integer-nanosecond spine ([`sim_core::SimTime`])
//! and are advanced by fleet drivers on `sim_core::par` workers, so fleet
//! results stay byte-identical at any `PAT_SIM_THREADS` regardless of the
//! fidelity mix. Fidelity is selected per replica ([`Fidelity`], env knob
//! `PAT_REPLICA_FIDELITY`) and may be switched mid-run by the controller
//! (hot replicas exact, cold replicas analytical).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytical;
pub mod calibration;
mod exact;
mod fidelity;
mod model;
mod prefix_store;

pub use analytical::AnalyticalReplica;
pub use calibration::{
    AttnCalibration, CalibrationTable, ANALYTICAL_REL_ERROR_BOUND, KERNEL_FIT_REL_ERR_BOUND,
};
pub use exact::{ExactReplica, ReplayReplica, REPLAY_STEP_CACHE_CAPACITY};
pub use fidelity::{fidelity_from_env, Fidelity, FIDELITY_ENV};
pub use model::{new_replica, ReplicaModel};
pub use prefix_store::PrefixStore;
