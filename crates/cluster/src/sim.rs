//! The multi-replica cluster simulator.
//!
//! Instantiates N independent [`ServingEngine`] replicas — each with its own
//! KV cache and attention backend — and co-simulates them event-driven on
//! the shared [`sim_core`] spine: arrivals are drained from a deterministic
//! [`EventQueue`], and before each arrival is routed, every *busy* replica
//! is advanced to the arrival instant so the router observes loads and
//! cache contents as they would be at that moment (idle replicas are never
//! ticked — their engines jump their own clocks on the next submission).
//! The routed request is then submitted to exactly one replica. Replicas
//! never share KV state, which is precisely why placement matters: a prefix
//! cached on replica A is recomputed from scratch on replica B.
//!
//! Replicas with identical integer clocks advance in replica-index order —
//! an exact guarantee under [`SimTime`], where equal instants compare equal
//! instead of hiding an ulp of float drift.

use crate::metrics::{
    duplicated_blocks, kv_block_bytes, load_imbalance, ClusterResult, ReplicaSummary,
};
use crate::router::{ReplicaView, Router};
use pat_core::LazyPat;
use serving::{AggregateMetrics, ServingAttention, ServingConfig, ServingEngine, StepOutcome};
use sim_core::{par, EventQueue, SimTime};
use workloads::Request;

/// Cluster shape: how many replicas, each running the same engine config.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of independent replicas.
    pub replicas: usize,
    /// Per-replica engine configuration.
    pub engine: ServingConfig,
}

impl ClusterConfig {
    /// `replicas` copies of `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize, engine: ServingConfig) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        ClusterConfig { replicas, engine }
    }
}

/// A fleet of serving-engine replicas behind a routing policy.
pub struct Cluster {
    engines: Vec<ServingEngine>,
    backends: Vec<Box<dyn ServingAttention>>,
    router: Box<dyn Router>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.engines.len())
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds a cluster whose replicas each get a backend from `backend`.
    pub fn new(
        config: &ClusterConfig,
        router: Box<dyn Router>,
        mut backend: impl FnMut() -> Box<dyn ServingAttention>,
    ) -> Self {
        assert!(config.replicas > 0, "a cluster needs at least one replica");
        let engines = (0..config.replicas)
            .map(|_| ServingEngine::new(config.engine.clone()))
            .collect();
        let backends = (0..config.replicas).map(|_| backend()).collect();
        Cluster {
            engines,
            backends,
            router,
        }
    }

    /// A cluster of PAT ([`LazyPat`]) replicas — the common case.
    pub fn with_lazy_pat(config: &ClusterConfig, router: Box<dyn Router>) -> Self {
        Cluster::new(config, router, || Box::new(LazyPat::new()))
    }

    /// Advances every replica until its clock reaches `t` or it goes idle.
    /// Replicas with no outstanding work are skipped outright: stepping an
    /// idle engine is a no-op, and its lagging clock jumps forward on the
    /// next submission.
    ///
    /// Replicas are independent between fleet event barriers — no shared
    /// state is touched until the router runs at `t` — so they advance
    /// concurrently on the `sim_core::par` workers. Each replica's step
    /// sequence is a pure function of its own state; parallelism reorders
    /// wall-clock execution only, so fleet results are bit-identical at any
    /// `PAT_SIM_THREADS`.
    fn advance_all_to(&mut self, t: SimTime) {
        let mut busy: Vec<(&mut ServingEngine, &mut Box<dyn ServingAttention>)> = self
            .engines
            .iter_mut()
            .zip(self.backends.iter_mut())
            .filter(|(e, _)| e.outstanding() > 0 && e.clock() < t)
            .collect();
        par::for_each_mut(&mut busy, |_, (engine, backend)| {
            while engine.clock() < t {
                if engine.step(backend.as_mut()) == StepOutcome::Idle {
                    break;
                }
            }
        });
    }

    /// Routes and serves `requests` (must be sorted by arrival), then drains
    /// every replica and aggregates fleet metrics.
    ///
    /// # Panics
    ///
    /// Panics if requests are unsorted or the router returns an out-of-range
    /// replica index.
    pub fn run(mut self, requests: &[Request]) -> ClusterResult {
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s),
            "requests must be sorted by arrival"
        );
        let n = self.engines.len();
        let mut assignments: Vec<(u64, usize)> = Vec::with_capacity(requests.len());
        let mut routed = vec![0usize; n];
        // Arrivals drain from the event queue in (time, submission-order):
        // simultaneous arrivals route in trace order, deterministically.
        let mut events: EventQueue<usize> = EventQueue::new();
        for (idx, request) in requests.iter().enumerate() {
            events.push(SimTime::from_secs_f64(request.arrival_s), idx);
        }
        while let Some((t, idx)) = events.pop() {
            let request = &requests[idx];
            // Bring every busy replica up to the arrival instant so the
            // router sees loads and caches as of "now", not as of the last
            // arrival. Replicas advance concurrently between barriers.
            self.advance_all_to(t);
            let choice = {
                let views: Vec<ReplicaView<'_>> =
                    self.engines.iter().map(ReplicaView::new).collect();
                self.router.route(request, &views)
            };
            // The fixed fleet is all-healthy, so a router returning `None`
            // is a policy bug, not an operational condition.
            let Some(target) = choice else {
                panic!("router returned no replica for an all-healthy fleet of {n}");
            };
            assert!(target < n, "router picked replica {target} of {n}");
            self.engines[target].submit(request.clone());
            assignments.push((request.id, target));
            routed[target] += 1;
        }
        // Drain: run every replica to quiescence (or its drain deadline),
        // concurrently — no more routing barriers exist past this point.
        let mut draining: Vec<(&mut ServingEngine, &mut Box<dyn ServingAttention>)> = self
            .engines
            .iter_mut()
            .zip(self.backends.iter_mut())
            .collect();
        par::for_each_mut(&mut draining, |_, (engine, backend)| {
            while engine.step(backend.as_mut()) == StepOutcome::Progress {}
        });
        drop(draining);

        // Cache-level fleet metrics, read before finalization consumes the
        // engines.
        let block_bytes = kv_block_bytes(
            &self.engines[0].config().model,
            self.engines[0].cache().block_size(),
        );
        let resident: Vec<Vec<u64>> = self
            .engines
            .iter()
            .map(|e| e.cache().resident_hashes().collect())
            .collect();
        let dup_blocks = duplicated_blocks(&resident);
        let hit_rates: Vec<f64> = self
            .engines
            .iter()
            .map(|e| e.cache().stats().hit_rate())
            .collect();
        let (mut hit_tokens, mut total_tokens) = (0u64, 0u64);
        for engine in &self.engines {
            let stats = engine.cache().stats();
            hit_tokens += stats.hit_tokens;
            total_tokens += stats.hit_tokens + stats.miss_tokens;
        }

        let results: Vec<_> = self
            .engines
            .into_iter()
            .map(ServingEngine::into_result)
            .collect();
        let mut all_requests = Vec::new();
        let (mut unfinished, mut preemptions, mut dropped) = (0usize, 0u64, 0u64);
        for r in &results {
            all_requests.extend_from_slice(&r.per_request);
            unfinished += r.unfinished;
            preemptions += r.preemptions;
            dropped += r.dropped;
        }
        let per_replica = results
            .into_iter()
            .zip(routed.iter())
            .zip(hit_rates)
            .map(|((result, &routed), prefix_hit_rate)| ReplicaSummary {
                routed,
                prefix_hit_rate,
                result,
            })
            .collect();
        ClusterResult {
            per_replica,
            fleet: AggregateMetrics::from_requests(&all_requests),
            fleet_hit_rate: if total_tokens == 0 {
                0.0
            } else {
                hit_tokens as f64 / total_tokens as f64
            },
            load_imbalance: load_imbalance(&routed),
            duplicated_kv_blocks: dup_blocks,
            duplicated_kv_bytes: dup_blocks as u64 * block_bytes,
            assignments,
            unfinished,
            preemptions,
            dropped,
        }
    }
}
