//! Fig. 11: normalized kernel performance of PAT and the seven baselines
//! across 20 decode-batch configurations × 4 head configurations on the
//! simulated A100 (higher is better; PAT = 1.00; `--` marks the paper's
//! "missing bars" — RelayAttention on multi-level/multi-root prefixes,
//! FastTree on the 16/8 and 64/8 head settings).

use pat_bench::{run_kernel_figure, save_json};
use sim_gpu::GpuSpec;

fn main() {
    let cells =
        run_kernel_figure(&GpuSpec::a100_sxm4_80gb(), "Fig. 11").expect("kernel figure simulates");
    save_json("fig11_kernel_a100", &cells).expect("persist bench results");
}
