//! The ablation baselines of §8.6.
//!
//! Each disables exactly one PAT design: PAT-compute swaps the memory-centric
//! profit model for a FastTree-style compute-oriented one, PAT-naive packs
//! every tree node unconditionally, PAT-fixed pins the FlashAttention tile
//! (64, 128), and PAT-serial launches all kernels on one stream.

use crate::backend::{PackingPolicy, PatBackend, PatConfig};

/// Full PAT (the reference point of Fig. 14).
pub fn pat() -> PatBackend {
    PatBackend::new()
}

/// PAT-compute: compute-oriented packing cost model.
pub fn pat_compute() -> PatBackend {
    PatBackend::with_config(PatConfig {
        packing: PackingPolicy::ComputeCost,
        ..PatConfig::default()
    })
}

/// PAT-naive: packs each tree-structure block-table node into a CTA.
pub fn pat_naive() -> PatBackend {
    PatBackend::with_config(PatConfig {
        packing: PackingPolicy::Naive,
        ..PatConfig::default()
    })
}

/// PAT-fixed: single fixed tile configuration (64, 128) as in FlashAttention.
pub fn pat_fixed() -> PatBackend {
    PatBackend::with_config(PatConfig {
        multi_tile: false,
        ..PatConfig::default()
    })
}

/// PAT-serial: serial multi-kernel execution as in FastTree.
pub fn pat_serial() -> PatBackend {
    PatBackend::with_config(PatConfig {
        multi_stream: false,
        ..PatConfig::default()
    })
}

/// All four ablations, labelled as in Fig. 14.
pub fn all_ablations() -> Vec<(&'static str, PatBackend)> {
    vec![
        ("PAT", pat()),
        ("PAT-compute", pat_compute()),
        ("PAT-naive", pat_naive()),
        ("PAT-fixed", pat_fixed()),
        ("PAT-serial", pat_serial()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_kernel::{simulate_plan, AttentionBackend, DecodeBatch};
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};
    use sim_gpu::GpuSpec;

    /// A Fig. 14-style workload: a short first-level prefix (one block,
    /// where Scheme-2 merging pays off), long second-level prefixes, and
    /// diverse private tails.
    fn ablation_batch() -> DecodeBatch {
        let head = HeadConfig::new(32, 8, 128); // Llama-3-8B heads
        let tables: Vec<BlockTable> = (0..40u32)
            .map(|q| {
                let mut ids: Vec<u32> = vec![0]; // 16 shared tokens, s = 40
                let group = q / 20;
                ids.extend(200 + group * 100..200 + group * 100 + 64); // 1024 tokens, s = 20
                ids.extend(10_000 + q * 256..10_000 + q * 256 + 2 + q * 4);
                let blocks = ids.len();
                BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), blocks * 16, 16)
            })
            .collect();
        DecodeBatch::new(head, tables, 2)
    }

    #[test]
    fn ablations_are_slower_than_pat() {
        let batch = ablation_batch();
        let spec = GpuSpec::a100_sxm4_80gb();
        let time = |b: &PatBackend| {
            let plan = b.plan(&batch, &spec);
            plan.validate(&batch).unwrap();
            simulate_plan(&batch, &plan, &spec).unwrap().total_ns
        };
        let pat_ns = time(&pat());
        for (name, backend) in all_ablations().into_iter().skip(1) {
            let t = time(&backend);
            assert!(
                t >= pat_ns * 0.99,
                "{name} ({t:.0} ns) should not beat PAT ({pat_ns:.0} ns)"
            );
        }
    }

    #[test]
    fn naive_moves_more_memory_than_pat() {
        let batch = ablation_batch();
        let spec = GpuSpec::a100_sxm4_80gb();
        let traffic = |b: &PatBackend| {
            let plan = b.plan(&batch, &spec);
            simulate_plan(&batch, &plan, &spec)
                .unwrap()
                .traffic
                .total_dram_bytes()
        };
        assert!(traffic(&pat_naive()) > traffic(&pat()));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = all_ablations().iter().map(|(l, _)| *l).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels, dedup);
    }
}
