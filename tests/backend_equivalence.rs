//! Cross-crate integration: every backend's plan, on every workload shape it
//! supports, must be numerically identical to unpacked attention and pass
//! structural validation. This is the repository's core invariant — packing,
//! tiling, splitting, and merging are pure execution-strategy choices.

use pat::prelude::*;
use pat_core::ablation::all_ablations;

/// Numerically-sized head config (small dims keep the oracle fast while
/// exercising GQA mapping).
fn small_head() -> HeadConfig {
    HeadConfig::new(8, 4, 16)
}

/// Workload shapes spanning the paper's space: single/multi root,
/// single/multi level, balanced/skewed KV, no sharing.
fn workload_specs() -> Vec<BatchSpec> {
    vec![
        BatchSpec::new(vec![1, 4], vec![64, 128]),
        BatchSpec::new(vec![1, 8], vec![256, 64]),
        BatchSpec::new(vec![1, 2, 8], vec![32, 128, 96]),
        BatchSpec::new(vec![2, 8], vec![128, 64]),
        BatchSpec::new(vec![1, 2, 4, 8], vec![16, 64, 48, 80]),
        BatchSpec::new(vec![4], vec![160]),
        BatchSpec::new(vec![1, 16], vec![512, 32]),
    ]
}

fn all_systems() -> Vec<Box<dyn AttentionBackend>> {
    let mut systems: Vec<Box<dyn AttentionBackend>> = vec![
        Box::new(FlashAttention::new()),
        Box::new(FlashInfer::new()),
        Box::new(FastTree::new()),
        Box::new(RelayAttention::new()),
        Box::new(RelayAttentionPP::new()),
        Box::new(Deft::new()),
        Box::new(Cascade::new()),
    ];
    for (_, ablation) in all_ablations() {
        systems.push(Box::new(ablation));
    }
    systems
}

#[test]
fn every_backend_matches_the_reference_on_every_supported_workload() {
    let spec = GpuSpec::a100_sxm4_80gb();
    for (w, workload) in workload_specs().into_iter().enumerate() {
        let batch = workload.build(small_head());
        let acts = QueryActivations::synthetic(small_head(), batch.num_queries(), w as u64);
        let store = KvStore::synthetic_for(&batch, w as u64 + 99);
        let want = reference_output(&batch, &acts, &store);
        let mut supported = 0;
        for backend in all_systems() {
            if !backend.supports(&batch) {
                continue;
            }
            supported += 1;
            let plan = backend.plan(&batch, &spec);
            plan.validate(&batch).unwrap_or_else(|e| {
                panic!("{} invalid on {}: {e}", backend.name(), workload.label())
            });
            let got = execute_numeric(&batch, &acts, &store, &plan).unwrap_or_else(|e| {
                panic!("{} failed on {}: {e}", backend.name(), workload.label())
            });
            let diff = got.max_abs_diff(&want);
            assert!(
                diff < 1e-4,
                "{} diverges on {}: {diff}",
                backend.name(),
                workload.label()
            );
        }
        assert!(
            supported >= 8,
            "workload {} supported by too few systems",
            workload.label()
        );
    }
}

#[test]
fn every_backend_simulates_on_both_gpus() {
    for gpu in [GpuSpec::a100_sxm4_80gb(), GpuSpec::h100_sxm5_80gb()] {
        let batch = BatchSpec::new(vec![1, 8], vec![512, 256]).build(HeadConfig::new(32, 8, 128));
        for backend in all_systems() {
            if !backend.supports(&batch) {
                continue;
            }
            let plan = backend.plan(&batch, &gpu);
            let report = simulate_plan(&batch, &plan, &gpu)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", backend.name(), gpu.name));
            assert!(report.total_ns > 0.0);
            assert!(report.traffic.kv_dram_bytes > 0.0);
            assert!(report.bandwidth_utilization <= 1.0);
        }
    }
}

#[test]
fn pat_never_loads_more_kv_than_query_centric_baselines() {
    let spec = GpuSpec::a100_sxm4_80gb();
    let head = HeadConfig::new(32, 8, 128);
    for workload in workload_specs() {
        let batch = workload.build(head);
        let pat_plan = PatBackend::new().plan(&batch, &spec);
        let fa_plan = FlashAttention::new().plan(&batch, &spec);
        let pat = simulate_plan(&batch, &pat_plan, &spec).unwrap();
        let fa = simulate_plan(&batch, &fa_plan, &spec).unwrap();
        assert!(
            pat.traffic.kv_loaded_bytes() <= fa.traffic.kv_loaded_bytes() * 1.001,
            "PAT loads more KV than FA on {}",
            workload.label()
        );
    }
}

#[test]
fn pat_is_fastest_or_tied_on_the_paper_suite() {
    let spec = GpuSpec::a100_sxm4_80gb();
    let head = HeadConfig::new(32, 8, 128);
    for workload in figure11_specs() {
        let batch = workload.build(head);
        let pat_ns = simulate_plan(&batch, &PatBackend::new().plan(&batch, &spec), &spec)
            .unwrap()
            .total_ns;
        for backend in all_systems() {
            if !backend.supports(&batch) {
                continue;
            }
            let plan = backend.plan(&batch, &spec);
            let t = simulate_plan(&batch, &plan, &spec).unwrap().total_ns;
            assert!(
                pat_ns <= t * 1.06,
                "{} beats PAT by >6% on {}: {} vs {}",
                backend.name(),
                workload.label(),
                t,
                pat_ns
            );
        }
    }
}
