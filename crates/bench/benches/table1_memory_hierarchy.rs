//! Table 1: memory hierarchy of the simulated A100-SXM4-80GB (plus the H100
//! used in §5.2/Appendix A).

use pat_bench::{banner, save_json};
use serde::Serialize;
use sim_gpu::GpuSpec;

#[derive(Serialize)]
struct Row {
    device: String,
    level: String,
    shared_by: String,
    size_bytes: u64,
    latency_ns: f64,
    bandwidth_gbps: f64,
    on_chip: bool,
}

fn main() {
    let mut rows = Vec::new();
    for spec in [GpuSpec::a100_sxm4_80gb(), GpuSpec::h100_sxm5_80gb()] {
        banner(&format!("Table 1 — memory hierarchy of {}", spec.name));
        print!("{spec}");
        for level in spec.memory_hierarchy() {
            rows.push(Row {
                device: spec.name.to_string(),
                level: level.name.to_string(),
                shared_by: level.shared_by.to_string(),
                size_bytes: level.size_bytes,
                latency_ns: level.latency_ns,
                bandwidth_gbps: level.bandwidth,
                on_chip: level.on_chip,
            });
        }
        println!(
            "in-flight bytes to saturate HBM (L*B): {:.2} MB",
            spec.inflight_bytes_to_saturate() / 1e6
        );
    }
    save_json("table1_memory_hierarchy", &rows).expect("persist bench results");
}
