//! The continuous-batching serving engine (vLLM-style, §8.4).
//!
//! Simulates online serving in virtual time: requests arrive (Poisson),
//! prefills admit them into the running batch (prefix-reusing KV cache),
//! and every decode step plans attention through the configured backend,
//! prices it on the GPU simulator, and advances the clock. Produces the
//! TTFT/TPOT metrics of Fig. 12/13 and the scheduler-overhead samples of
//! Fig. 16.

use crate::attention::ServingAttention;
use crate::costs::CostModel;
use crate::metrics::{AggregateMetrics, RequestMetrics};
use crate::model::ModelSpec;
use attn_kernel::{simulate_plan, DecodeBatch};
use attn_math::HeadConfig;
use kv_cache::{BlockTable, CacheManager, DEFAULT_BLOCK_SIZE};
use sim_gpu::GpuSpec;
use std::collections::VecDeque;
use workloads::Request;

/// Tensor/pipeline parallel layout (§8.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Tensor-parallel ways (divides attention heads and weight shards).
    pub tp: usize,
    /// Pipeline-parallel stages (divides layers).
    pub pp: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism { tp: 1, pp: 1 }
    }
}

impl Parallelism {
    /// Single-GPU layout.
    pub fn single() -> Self {
        Parallelism::default()
    }

    /// Total GPUs used.
    pub fn num_gpus(&self) -> usize {
        self.tp * self.pp
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The served model.
    pub model: ModelSpec,
    /// The GPU (per device).
    pub gpu: GpuSpec,
    /// Parallel layout.
    pub parallel: Parallelism,
    /// Maximum concurrent decode requests.
    pub max_batch: usize,
    /// Maximum prompt tokens per prefill step.
    pub max_prefill_tokens: usize,
    /// KV pool size in blocks.
    pub kv_capacity_blocks: usize,
    /// Stop simulating this long after the last arrival (drain limit), s.
    pub drain_limit_s: f64,
    /// Mix prefill chunks into decode steps (vLLM chunked prefill) instead
    /// of running whole prefills with priority. Smooths TPOT spikes at the
    /// cost of slightly slower time-to-first-token for short prompts.
    pub chunked_prefill: bool,
}

impl ServingConfig {
    /// A sensible single-A100 configuration for `model`.
    pub fn single_gpu(model: ModelSpec) -> Self {
        ServingConfig {
            model,
            gpu: GpuSpec::a100_sxm4_80gb(),
            parallel: Parallelism::single(),
            max_batch: 128,
            max_prefill_tokens: 8192,
            kv_capacity_blocks: 400_000,
            drain_limit_s: 600.0,
            chunked_prefill: false,
        }
    }
}

/// Result of one serving simulation.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Aggregate metrics over completed requests.
    pub metrics: AggregateMetrics,
    /// Per-request records (completed only).
    pub per_request: Vec<RequestMetrics>,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Mean decode batch size.
    pub mean_batch: f64,
    /// Attention share of total decode-step time, in `[0, 1]`.
    pub attention_fraction: f64,
    /// Per-step `(scheduler, pre-attention)` cost samples in ns, when the
    /// backend reports scheduling costs (Fig. 16).
    pub overhead_samples: Vec<(f64, f64)>,
    /// Requests dropped at the drain limit (overload indicator).
    pub unfinished: usize,
    /// Recompute preemptions forced by KV-pool pressure.
    pub preemptions: u64,
    /// Requests dropped because they can never fit the KV pool.
    pub dropped: u64,
}

#[derive(Debug)]
struct Active {
    req_idx: usize,
    table: BlockTable,
    produced: usize,
    target: usize,
    first_token_ns: f64,
    arrival_ns: f64,
}

/// Runs the serving simulation for `requests` (must be sorted by arrival).
///
/// When the KV pool runs out, the engine preempts the most recently arrived
/// running request (vLLM's recompute policy): its blocks are freed and it
/// restarts from prefill once space frees up.
///
/// # Panics
///
/// Panics if requests are unsorted, or if a single request cannot fit in
/// the KV pool even with every other request preempted.
pub fn simulate_serving(
    config: &ServingConfig,
    attention: &mut dyn ServingAttention,
    requests: &[Request],
) -> SimulationResult {
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival"
    );
    let tp = config.parallel.tp;
    let pp = config.parallel.pp;
    // Attention heads shard across TP ranks; each rank's kernel handles an
    // equal slice, so one rank's latency is the attention latency.
    let full_head = config.model.head;
    let shard_head = HeadConfig::new(
        (full_head.num_heads() / tp).max(1),
        (full_head.num_kv_heads() / tp).max(1),
        full_head.head_dim(),
    );
    let cost = CostModel::with_tp(config.model, config.gpu.clone(), tp);
    let layers_per_stage = config.model.num_layers.div_ceil(pp);

    let mut cache = CacheManager::new(config.kv_capacity_blocks, DEFAULT_BLOCK_SIZE);
    let mut waiting: VecDeque<usize> = VecDeque::new();
    // Chunked-prefill progress: (request idx, clamped prompt len, tokens done).
    let mut prefilling: VecDeque<(usize, usize, usize)> = VecDeque::new();
    let mut active: Vec<Active> = Vec::new();
    let mut completed: Vec<RequestMetrics> = Vec::new();
    let mut next_arrival = 0usize;
    let mut clock_ns = 0.0f64;
    let mut decode_steps = 0usize;
    let mut batch_acc = 0usize;
    let mut attn_time = 0.0f64;
    let mut total_time = 0.0f64;
    let mut overhead_samples = Vec::new();
    let mut preemptions: u64 = 0;
    let mut dropped: u64 = 0;
    let deadline_ns = requests.last().map_or(0.0, |r| r.arrival_s * 1e9)
        + config.drain_limit_s * 1e9;

    /// Frees the most recently arrived active request and requeues it for
    /// recompute. Returns the preempted request index, or `None`.
    fn preempt_latest(
        active: &mut Vec<Active>,
        waiting: &mut VecDeque<usize>,
        cache: &mut CacheManager,
    ) -> Option<usize> {
        let victim = active
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.arrival_ns.partial_cmp(&b.1.arrival_ns).expect("finite"))?
            .0;
        let a = active.swap_remove(victim);
        cache.free_sequence(&a.table).expect("victim blocks are allocated");
        waiting.push_front(a.req_idx);
        Some(a.req_idx)
    }

    loop {
        // Admit arrivals.
        while next_arrival < requests.len()
            && requests[next_arrival].arrival_s * 1e9 <= clock_ns
        {
            waiting.push_back(next_arrival);
            next_arrival += 1;
        }
        if active.is_empty() && waiting.is_empty() && prefilling.is_empty() {
            if next_arrival >= requests.len() {
                break;
            }
            clock_ns = requests[next_arrival].arrival_s * 1e9;
            continue;
        }
        if clock_ns > deadline_ns {
            break;
        }

        if config.chunked_prefill {
            // Admit waiting requests into the prefilling queue (same
            // admission control as below, but no dedicated prefill step).
            while let Some(&idx) = waiting.front() {
                let req = &requests[idx];
                let budget =
                    config.model.max_context.saturating_sub(req.decode_tokens).max(16);
                let prompt_tokens = req.prompt.total_tokens().min(budget);
                let bs = DEFAULT_BLOCK_SIZE;
                let needed =
                    prompt_tokens.div_ceil(bs) + req.decode_tokens.div_ceil(bs) + 2;
                if needed > cache.allocator().capacity() {
                    waiting.pop_front();
                    dropped += 1;
                    continue;
                }
                let engine_busy = !active.is_empty() || !prefilling.is_empty();
                if active.len() + prefilling.len() >= config.max_batch
                    || (needed > cache.available_blocks() && engine_busy)
                {
                    break;
                }
                waiting.pop_front();
                prefilling.push_back((idx, prompt_tokens, 0));
            }
        }

        // Prefill-priority scheduling (vLLM default): admit waiting requests
        // up to the token budget, then decode.
        if !config.chunked_prefill && !waiting.is_empty() && active.len() < config.max_batch {
            let mut chunk_tokens = 0usize;
            let mut admitted = Vec::new();
            let mut budget_blocks = cache.available_blocks();
            while let Some(&idx) = waiting.front() {
                let req = &requests[idx];
                // Clamp over-long prompts to the model context window.
                let budget =
                    config.model.max_context.saturating_sub(req.decode_tokens).max(16);
                let prompt_tokens = req.prompt.total_tokens().min(budget);
                if active.len() + admitted.len() >= config.max_batch
                    || (chunk_tokens + prompt_tokens > config.max_prefill_tokens
                        && !admitted.is_empty())
                {
                    break;
                }
                // Admission control (vLLM watermark): the request's whole
                // lifetime (prompt + decode budget) must fit in currently
                // obtainable blocks, or it waits for departures. Prefix hits
                // only make this conservative.
                let bs = DEFAULT_BLOCK_SIZE;
                let needed =
                    prompt_tokens.div_ceil(bs) + req.decode_tokens.div_ceil(bs) + 2;
                if needed > cache.allocator().capacity() {
                    // Can never fit, even alone: reject rather than livelock.
                    waiting.pop_front();
                    dropped += 1;
                    continue;
                }
                let engine_busy = !active.is_empty() || !admitted.is_empty();
                if needed > budget_blocks && engine_busy {
                    break;
                }
                budget_blocks = budget_blocks.saturating_sub(needed);
                waiting.pop_front();
                chunk_tokens += prompt_tokens;
                admitted.push((idx, prompt_tokens));
                if chunk_tokens >= config.max_prefill_tokens {
                    break;
                }
            }
            if !admitted.is_empty() {
            clock_ns += cost.prefill_ns(chunk_tokens);
            for (idx, prompt_tokens) in admitted {
                let req = &requests[idx];
                let tokens = req.prompt.to_tokens()[..prompt_tokens].to_vec();
                let table = loop {
                    match cache.insert_sequence(&tokens) {
                        Ok(t) => break t,
                        Err(_) => {
                            preemptions += 1;
                            if preempt_latest(&mut active, &mut waiting, &mut cache).is_none() {
                                panic!("a single request exceeds the KV pool");
                            }
                        }
                    }
                };
                let arrival_ns = req.arrival_s * 1e9;
                if req.decode_tokens <= 1 {
                    cache.free_sequence(&table).expect("allocated above");
                    completed.push(RequestMetrics {
                        ttft_ns: clock_ns - arrival_ns,
                        tpot_ns: 0.0,
                        completion_ns: clock_ns - arrival_ns,
                        decode_tokens: 1,
                    });
                } else {
                    active.push(Active {
                        req_idx: idx,
                        table,
                        produced: 1,
                        target: req.decode_tokens,
                        first_token_ns: clock_ns,
                        arrival_ns,
                    });
                }
            }
            continue;
            }
            // Nothing admissible right now: fall through to decode so
            // departures can free KV blocks for the waiting requests.
        }
        // Chunked prefill: carve this step's chunk from the prefill queue.
        let mut prefill_chunk = 0usize;
        let mut finished_prefills: Vec<(usize, usize)> = Vec::new();
        if config.chunked_prefill {
            let mut budget = config.max_prefill_tokens;
            while budget > 0 {
                let Some(front) = prefilling.front_mut() else { break };
                let take = (front.1 - front.2).min(budget);
                front.2 += take;
                budget -= take;
                prefill_chunk += take;
                if front.2 >= front.1 {
                    let (idx, prompt_tokens, _) = prefilling.pop_front().expect("front exists");
                    finished_prefills.push((idx, prompt_tokens));
                } else {
                    break;
                }
            }
        }

        if active.is_empty() && prefill_chunk == 0 {
            // Everything waiting was dropped or nothing is runnable yet.
            continue;
        }
        if active.is_empty() {
            // Pure prefill-chunk step.
            clock_ns += cost.prefill_ns(prefill_chunk);
            admit_finished_prefills(
                &finished_prefills,
                requests,
                &mut cache,
                &mut active,
                &mut completed,
                clock_ns,
            );
            continue;
        }

        // Decode step.
        let tables: Vec<BlockTable> = active.iter().map(|a| a.table.clone()).collect();
        let batch = DecodeBatch::new(shard_head, tables, 2);
        let plan = attention.plan_step(&batch, &config.gpu);
        let report = simulate_plan(&batch, &plan, &config.gpu)
            .expect("backend plans are valid");
        // Kernel time repeats per layer; exposed CPU scheduling is paid once
        // per step (the plan's metadata is shared across layers).
        let attention_ns = (report.total_ns - report.scheduling_ns)
            * config.model.num_layers as f64
            + report.scheduling_ns;
        let linear_ns = cost.decode_linear_ns(batch.num_queries(), layers_per_stage) * pp as f64;
        // Pipeline stages hand activations over (pp - 1) boundaries.
        let pp_transfer_ns = (pp - 1) as f64
            * (8_000.0 + batch.num_queries() as f64 * config.model.hidden as f64 * 2.0 / 300.0);
        let prefill_ns = cost.chunked_prefill_marginal_ns(prefill_chunk);
        let step_ns = attention_ns + linear_ns + pp_transfer_ns + prefill_ns;
        if let Some(sched) = attention.scheduling_cost_ns(&batch) {
            overhead_samples.push((sched, cost.pre_attention_ns(batch.num_queries())));
        }
        clock_ns += step_ns;
        decode_steps += 1;
        batch_acc += batch.num_queries();
        attn_time += attention_ns;
        total_time += step_ns;
        admit_finished_prefills(
            &finished_prefills,
            requests,
            &mut cache,
            &mut active,
            &mut completed,
            clock_ns,
        );

        let mut i = 0;
        while i < active.len() {
            // Append this request's new token, preempting the youngest
            // request under KV pressure (possibly this one).
            let my_req = active[i].req_idx;
            let mut appended = false;
            loop {
                let Some(pos) = active.iter().position(|a| a.req_idx == my_req) else {
                    break; // this request was itself preempted
                };
                i = pos;
                if cache.append_token(&mut active[i].table).is_ok() {
                    appended = true;
                    break;
                }
                preemptions += 1;
                if preempt_latest(&mut active, &mut waiting, &mut cache).is_none() {
                    panic!("a single request exceeds the KV pool");
                }
            }
            if !appended {
                // Restart scanning: indices shifted and this slot now holds a
                // different (already-processed or pending) request. The next
                // decode step will cover any request we skip here.
                continue;
            }
            active[i].produced += 1;
            if active[i].produced >= active[i].target {
                let a = active.swap_remove(i);
                cache.free_sequence(&a.table).expect("allocated above");
                let gaps = (a.produced - 1).max(1) as f64;
                completed.push(RequestMetrics {
                    ttft_ns: a.first_token_ns - a.arrival_ns,
                    tpot_ns: (clock_ns - a.first_token_ns) / gaps,
                    completion_ns: clock_ns - a.arrival_ns,
                    decode_tokens: a.produced,
                });
                let _ = a.req_idx;
            } else {
                i += 1;
            }
        }
    }

    SimulationResult {
        metrics: AggregateMetrics::from_requests(&completed),
        per_request: completed,
        decode_steps,
        mean_batch: if decode_steps == 0 { 0.0 } else { batch_acc as f64 / decode_steps as f64 },
        attention_fraction: if total_time == 0.0 { 0.0 } else { attn_time / total_time },
        overhead_samples,
        unfinished: active.len() + waiting.len() + prefilling.len()
            + (requests.len() - next_arrival),
        preemptions,
        dropped,
    }
}

/// Moves requests whose chunked prefill just completed into the decode
/// batch, producing their first token.
fn admit_finished_prefills(
    finished: &[(usize, usize)],
    requests: &[Request],
    cache: &mut CacheManager,
    active: &mut Vec<Active>,
    completed: &mut Vec<RequestMetrics>,
    clock_ns: f64,
) {
    for &(idx, prompt_tokens) in finished {
        let req = &requests[idx];
        let tokens = req.prompt.to_tokens()[..prompt_tokens].to_vec();
        let table = cache.insert_sequence(&tokens).expect("admission reserved blocks");
        let arrival_ns = req.arrival_s * 1e9;
        if req.decode_tokens <= 1 {
            cache.free_sequence(&table).expect("allocated above");
            completed.push(RequestMetrics {
                ttft_ns: clock_ns - arrival_ns,
                tpot_ns: 0.0,
                completion_ns: clock_ns - arrival_ns,
                decode_tokens: 1,
            });
        } else {
            active.push(Active {
                req_idx: idx,
                table,
                produced: 1,
                target: req.decode_tokens,
                first_token_ns: clock_ns,
                arrival_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::Stateless;
    use baselines::FlashAttention;
    use pat_core::LazyPat;
    use workloads::{generate_trace, TraceConfig, TraceKind};

    fn short_trace(rate: f64) -> Vec<Request> {
        generate_trace(TraceConfig {
            kind: TraceKind::Conversation,
            rate_per_s: rate,
            duration_s: 6.0,
            seed: 7,
        })
    }

    fn config() -> ServingConfig {
        ServingConfig::single_gpu(ModelSpec::llama3_8b())
    }

    #[test]
    fn all_requests_complete_at_low_rate() {
        let requests = short_trace(2.0);
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &requests);
        assert_eq!(result.unfinished, 0);
        assert_eq!(result.metrics.completed, requests.len());
        assert!(result.metrics.mean_ttft_ms > 0.0);
        assert!(result.metrics.mean_tpot_ms > 0.0);
        assert!(result.decode_steps > 0);
    }

    #[test]
    fn pat_beats_flash_attention_on_shared_prefix_trace() {
        let requests = short_trace(4.0);
        let mut pat = LazyPat::new();
        let pat_result = simulate_serving(&config(), &mut pat, &requests);
        let mut fa = Stateless(FlashAttention::new());
        let fa_result = simulate_serving(&config(), &mut fa, &requests);
        assert!(
            pat_result.metrics.mean_tpot_ms < fa_result.metrics.mean_tpot_ms,
            "PAT {:.3} ms !< FA {:.3} ms",
            pat_result.metrics.mean_tpot_ms,
            fa_result.metrics.mean_tpot_ms
        );
    }

    #[test]
    fn pat_reports_overhead_samples_and_they_hide_in_pre_attention() {
        let requests = short_trace(4.0);
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &requests);
        assert!(!result.overhead_samples.is_empty());
        let (sched, pre): (Vec<f64>, Vec<f64>) = result.overhead_samples.iter().copied().unzip();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&sched) < mean(&pre),
            "scheduler ({:.0} ns) must hide inside pre-attention ({:.0} ns)",
            mean(&sched),
            mean(&pre)
        );
    }

    #[test]
    fn higher_rate_increases_tpot() {
        let mut pat_low = LazyPat::new();
        let low = simulate_serving(&config(), &mut pat_low, &short_trace(1.0));
        let mut pat_high = LazyPat::new();
        let high = simulate_serving(&config(), &mut pat_high, &short_trace(8.0));
        assert!(high.mean_batch > low.mean_batch);
        assert!(high.metrics.mean_tpot_ms >= low.metrics.mean_tpot_ms * 0.9);
    }

    #[test]
    fn tp_reduces_tpot_for_a_large_model() {
        let requests = short_trace(1.0);
        let mut cfg = ServingConfig::single_gpu(ModelSpec::qwen25_72b());
        cfg.max_prefill_tokens = 4096;
        let mut pat1 = LazyPat::new();
        let single = simulate_serving(&cfg, &mut pat1, &requests);
        cfg.parallel = Parallelism { tp: 2, pp: 2 };
        let mut pat4 = LazyPat::new();
        let multi = simulate_serving(&cfg, &mut pat4, &requests);
        assert!(
            multi.metrics.mean_tpot_ms < single.metrics.mean_tpot_ms,
            "TP2xPP2 {:.2} !< single {:.2}",
            multi.metrics.mean_tpot_ms,
            single.metrics.mean_tpot_ms
        );
    }

    #[test]
    fn tiny_kv_pool_serves_via_admission_control() {
        let requests = short_trace(6.0);
        let mut cfg = config();
        // A pool that can hold only a handful of ~2.5k-token contexts: the
        // watermark admits few requests at a time, but everyone finishes.
        cfg.kv_capacity_blocks = 1200;
        cfg.max_batch = 32;
        let mut pat = LazyPat::new();
        let result = simulate_serving(&cfg, &mut pat, &requests);
        assert_eq!(result.unfinished, 0, "requests must finish under pressure");
        assert_eq!(result.dropped, 0);
        assert_eq!(result.metrics.completed, requests.len());
        assert!(result.mean_batch < 16.0, "pool bounds concurrency");
    }

    #[test]
    fn impossible_requests_are_dropped_not_livelocked() {
        let mut requests = short_trace(2.0);
        for r in &mut requests {
            r.decode_tokens = 2000; // prompt + decode exceed the pool below
        }
        let mut cfg = config();
        cfg.kv_capacity_blocks = 150;
        let mut pat = LazyPat::new();
        let result = simulate_serving(&cfg, &mut pat, &requests);
        assert_eq!(result.dropped as usize, requests.len());
        assert_eq!(result.unfinished, 0);
        assert_eq!(result.metrics.completed, 0);
    }

    #[test]
    fn chunked_prefill_serves_everyone_and_smooths_tail_latency() {
        // A bursty moment: many long prompts arriving together makes
        // prefill-priority stall decoding (P99 TPOT spikes); chunking mixes
        // the prefills into decode steps.
        let requests = short_trace(10.0);
        let mut cfg = config();
        cfg.max_prefill_tokens = 2048;
        let mut pat1 = LazyPat::new();
        let priority = simulate_serving(&cfg, &mut pat1, &requests);
        cfg.chunked_prefill = true;
        let mut pat2 = LazyPat::new();
        let chunked = simulate_serving(&cfg, &mut pat2, &requests);
        assert_eq!(chunked.unfinished, 0);
        assert_eq!(chunked.metrics.completed, requests.len());
        assert!(
            chunked.metrics.p99_tpot_ms < priority.metrics.p99_tpot_ms * 1.5,
            "chunked {:.1} ms vs priority {:.1} ms",
            chunked.metrics.p99_tpot_ms,
            priority.metrics.p99_tpot_ms
        );
    }

    #[test]
    fn empty_request_list_is_fine() {
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &[]);
        assert_eq!(result.metrics.completed, 0);
        assert_eq!(result.decode_steps, 0);
    }
}
