/root/repo/target/debug/deps/sim_gpu-ab75be3aeec78b8d.d: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsim_gpu-ab75be3aeec78b8d.rmeta: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs Cargo.toml

crates/sim-gpu/src/lib.rs:
crates/sim-gpu/src/chrome.rs:
crates/sim-gpu/src/engine.rs:
crates/sim-gpu/src/l2.rs:
crates/sim-gpu/src/memory.rs:
crates/sim-gpu/src/occupancy.rs:
crates/sim-gpu/src/spec.rs:
crates/sim-gpu/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
