/root/repo/target/debug/deps/serde_json-403e93b6c26d8947.d: crates/compat-serde-json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-403e93b6c26d8947.rmeta: crates/compat-serde-json/src/lib.rs Cargo.toml

crates/compat-serde-json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
