/root/repo/target/debug/deps/serving_integration-e5ada22ce15263c4.d: tests/serving_integration.rs

/root/repo/target/debug/deps/serving_integration-e5ada22ce15263c4: tests/serving_integration.rs

tests/serving_integration.rs:
