//! Fidelity selection: which replica model a fleet slot runs.

use serde::Serialize;
use std::fmt;

/// Environment variable selecting the default replica fidelity
/// (`exact`, `replay`, or `analytical`; unset means `exact`).
pub const FIDELITY_ENV: &str = "PAT_REPLICA_FIDELITY";

/// Simulation fidelity of one replica slot.
///
/// Ordered from most to least expensive; see the crate docs for what each
/// level models and when it is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
pub enum Fidelity {
    /// Full serving engine over the kernel simulator (the reference).
    #[default]
    Exact,
    /// Full serving engine with an unbounded step-simulation cache: each
    /// structurally distinct decode step is simulated once, then replayed.
    Replay,
    /// Closed-form calibrated cost model; no kernel simulation at all.
    Analytical,
}

impl Fidelity {
    /// Parses a fidelity name (`"exact"`, `"replay"`, `"analytical"`,
    /// case-insensitive). Returns `None` for anything else.
    pub fn parse(name: &str) -> Option<Fidelity> {
        match name.trim().to_ascii_lowercase().as_str() {
            "exact" => Some(Fidelity::Exact),
            "replay" => Some(Fidelity::Replay),
            "analytical" => Some(Fidelity::Analytical),
            _ => None,
        }
    }

    /// Canonical lowercase name (`"exact"`, `"replay"`, `"analytical"`).
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Exact => "exact",
            Fidelity::Replay => "replay",
            Fidelity::Analytical => "analytical",
        }
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The fidelity selected by [`FIDELITY_ENV`], defaulting to
/// [`Fidelity::Exact`] when unset or unrecognized.
pub fn fidelity_from_env() -> Fidelity {
    sim_core::knobs::raw(FIDELITY_ENV)
        .and_then(|v| Fidelity::parse(&v))
        .unwrap_or(Fidelity::Exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_canonical_names() {
        for f in [Fidelity::Exact, Fidelity::Replay, Fidelity::Analytical] {
            assert_eq!(Fidelity::parse(f.name()), Some(f));
            assert_eq!(Fidelity::parse(&f.name().to_uppercase()), Some(f));
        }
        assert_eq!(Fidelity::parse("kernel"), None);
        assert_eq!(Fidelity::parse(""), None);
    }

    #[test]
    fn ordering_is_most_to_least_expensive() {
        assert!(Fidelity::Exact < Fidelity::Replay);
        assert!(Fidelity::Replay < Fidelity::Analytical);
    }
}
