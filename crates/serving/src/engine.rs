//! The continuous-batching serving engine (vLLM-style, §8.4).
//!
//! Simulates online serving in virtual time: requests arrive (Poisson),
//! prefills admit them into the running batch (prefix-reusing KV cache),
//! and every decode step plans attention through the configured backend,
//! prices it on the GPU simulator, and advances the clock. Produces the
//! TTFT/TPOT metrics of Fig. 12/13 and the scheduler-overhead samples of
//! Fig. 16.
//!
//! The engine is exposed in two forms: the one-shot [`simulate_serving`]
//! (submit a whole sorted trace, run to completion) and the steppable
//! [`ServingEngine`], which external drivers — notably the multi-replica
//! cluster simulator — advance one scheduling iteration at a time via
//! [`ServingEngine::step`], interleaving [`ServingEngine::submit`] calls as
//! routed requests arrive. `simulate_serving` is a thin wrapper over the
//! steppable engine, so both paths execute identical scheduling decisions.

use crate::attention::ServingAttention;
use crate::costs::CostModel;
use crate::metrics::{AggregateMetrics, RequestMetrics};
use crate::model::ModelSpec;
use attn_kernel::{batch_timing_fingerprint, simulate_plan_trusted, DecodeBatch};
use attn_kernel::{StepSimCache, StepSimReport, StepSimStats};
use attn_math::HeadConfig;
use kv_cache::{AllocError, BlockTable, CacheManager, DEFAULT_BLOCK_SIZE};
use pat_core::PlanReuse;
use serde::Serialize;
use sim_core::{SimDuration, SimTime};
use sim_gpu::{gpu_model_from_env, GpuSpec};
use std::collections::VecDeque;
use workloads::Request;

/// Tensor/pipeline parallel layout (§8.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Tensor-parallel ways (divides attention heads and weight shards).
    pub tp: usize,
    /// Pipeline-parallel stages (divides layers).
    pub pp: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism { tp: 1, pp: 1 }
    }
}

impl Parallelism {
    /// Single-GPU layout.
    pub fn single() -> Self {
        Parallelism::default()
    }

    /// Total GPUs used.
    pub fn num_gpus(&self) -> usize {
        self.tp * self.pp
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The served model.
    pub model: ModelSpec,
    /// The GPU (per device).
    pub gpu: GpuSpec,
    /// Parallel layout.
    pub parallel: Parallelism,
    /// Maximum concurrent decode requests.
    pub max_batch: usize,
    /// Maximum prompt tokens per prefill step.
    pub max_prefill_tokens: usize,
    /// KV pool size in blocks.
    pub kv_capacity_blocks: usize,
    /// Stop simulating this long after the last arrival (drain limit), s.
    pub drain_limit_s: f64,
    /// Mix prefill chunks into decode steps (vLLM chunked prefill) instead
    /// of running whole prefills with priority. Smooths TPOT spikes at the
    /// cost of slightly slower time-to-first-token for short prompts.
    pub chunked_prefill: bool,
}

impl ServingConfig {
    /// A sensible single-GPU configuration for `model`. The device comes
    /// from the `PAT_GPU_MODEL` environment knob, defaulting to the
    /// paper's A100 testbed when unset.
    pub fn single_gpu(model: ModelSpec) -> Self {
        ServingConfig {
            model,
            gpu: gpu_model_from_env().spec(),
            parallel: Parallelism::single(),
            max_batch: 128,
            max_prefill_tokens: 8192,
            kv_capacity_blocks: 400_000,
            drain_limit_s: 600.0,
            chunked_prefill: false,
        }
    }
}

/// Result of one serving simulation.
#[derive(Debug, Clone, Serialize)]
pub struct SimulationResult {
    /// Aggregate metrics over completed requests.
    pub metrics: AggregateMetrics,
    /// Per-request records (completed only).
    pub per_request: Vec<RequestMetrics>,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Mean decode batch size.
    pub mean_batch: f64,
    /// Attention share of total decode-step time, in `[0, 1]`.
    pub attention_fraction: f64,
    /// Per-step `(scheduler, pre-attention)` cost samples in ns, when the
    /// backend reports scheduling costs (Fig. 16). With step-simulation
    /// memoization these are sampled once per scheduler *invocation* — that
    /// is, on cache misses; cached steps run no scheduler at all.
    pub overhead_samples: Vec<(f64, f64)>,
    /// Step-simulation cache counters (hits skip the sim-gpu event loop).
    pub step_sim: StepSimStats,
    /// Requests dropped at the drain limit (overload indicator).
    pub unfinished: usize,
    /// Recompute preemptions forced by KV-pool pressure.
    pub preemptions: u64,
    /// Requests dropped because they can never fit the KV pool.
    pub dropped: u64,
    /// Tile-selection failure that halted the replica, if any (e.g. a
    /// device/geometry with no feasible tile). `None` on a clean run; when
    /// set, the engine stopped planning and the remaining requests count
    /// as unfinished.
    pub plan_error: Option<String>,
    /// Any [`EngineError`] that halted the replica, rendered as text —
    /// plan failures (also in [`plan_error`](SimulationResult::plan_error))
    /// plus kernel-simulation and KV-cache bookkeeping faults. `None` on a
    /// clean run.
    pub fault: Option<String>,
}

/// A broken engine invariant that halted the replica. Recorded rather than
/// panicked: a fleet driver sees one stopped replica (its in-flight work
/// counted as unfinished), not a crashed simulation process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Tile selection failed: the device/geometry admits no feasible tile.
    Plan(String),
    /// A backend-produced plan failed kernel simulation.
    Simulate(String),
    /// KV-cache bookkeeping diverged from the scheduler's view of it.
    Cache {
        /// The cache operation that failed.
        op: &'static str,
        /// The underlying allocator/cache error.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "tile planning failed: {e}"),
            EngineError::Simulate(e) => write!(f, "kernel simulation rejected a backend plan: {e}"),
            EngineError::Cache { op, detail } => {
                write!(f, "KV-cache bookkeeping fault in `{op}`: {detail}")
            }
        }
    }
}

/// What one [`ServingEngine::step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The engine advanced: admitted requests, ran a prefill or decode step,
    /// or jumped its idle clock to the next pending arrival.
    Progress,
    /// Nothing to do: every submitted request has been processed (or the
    /// drain deadline has passed). Submitting more work revives the engine.
    Idle,
}

#[derive(Debug)]
struct Active {
    req_idx: usize,
    table: BlockTable,
    produced: usize,
    target: usize,
    first_token: SimTime,
    arrival: SimTime,
}

/// A steppable continuous-batching serving engine over one replica.
///
/// Holds the complete scheduler state — KV cache, waiting/prefilling/decoding
/// queues, virtual clock, and metric accumulators — and advances one
/// scheduling iteration per [`step`](ServingEngine::step) call. The attention
/// backend is passed into `step` rather than owned, so a fleet driver can
/// keep engines and backends in separate collections.
///
/// When the KV pool runs out, the engine preempts the most recently arrived
/// running request (vLLM's recompute policy): its blocks are freed and it
/// restarts from prefill once space frees up.
#[derive(Debug)]
pub struct ServingEngine {
    config: ServingConfig,
    cost: CostModel,
    shard_head: HeadConfig,
    layers_per_stage: usize,
    cache: CacheManager,
    requests: Vec<Request>,
    waiting: VecDeque<usize>,
    /// Chunked-prefill progress: (request idx, clamped prompt len, tokens done).
    prefilling: VecDeque<(usize, usize, usize)>,
    active: Vec<Active>,
    completed: Vec<RequestMetrics>,
    next_arrival: usize,
    clock: SimTime,
    decode_steps: usize,
    batch_acc: usize,
    attn_time: SimDuration,
    total_time: SimDuration,
    overhead_samples: Vec<(f64, f64)>,
    preemptions: u64,
    dropped: u64,
    speed_factor: f64,
    draining: bool,
    step_cache: StepSimCache,
    /// Scratch arena: block-table vector recycled across decode steps so
    /// the per-step `DecodeBatch` rebuild allocates nothing in steady state.
    scratch_tables: Vec<BlockTable>,
    /// Scratch arena for the batch's stable query ids (request ids), which
    /// let stateful backends classify step deltas for incremental planning.
    scratch_ids: Vec<u64>,
    /// Scratch arena for the chunked-prefill completion list.
    scratch_finished: Vec<(usize, usize)>,
    /// First invariant fault that halted this replica, if any.
    fault: Option<EngineError>,
}

impl ServingEngine {
    /// Creates an idle engine with an empty KV cache.
    pub fn new(config: ServingConfig) -> Self {
        let tp = config.parallel.tp;
        let pp = config.parallel.pp;
        // Attention heads shard across TP ranks; each rank's kernel handles an
        // equal slice, so one rank's latency is the attention latency.
        let full_head = config.model.head;
        let shard_head = HeadConfig::new(
            (full_head.num_heads() / tp).max(1),
            (full_head.num_kv_heads() / tp).max(1),
            full_head.head_dim(),
        );
        let cost = CostModel::with_tp(config.model, config.gpu.clone(), tp);
        let layers_per_stage = config.model.num_layers.div_ceil(pp);
        let cache = CacheManager::new(config.kv_capacity_blocks, DEFAULT_BLOCK_SIZE);
        ServingEngine {
            config,
            cost,
            shard_head,
            layers_per_stage,
            cache,
            requests: Vec::new(),
            waiting: VecDeque::new(),
            prefilling: VecDeque::new(),
            active: Vec::new(),
            completed: Vec::new(),
            next_arrival: 0,
            clock: SimTime::ZERO,
            decode_steps: 0,
            batch_acc: 0,
            attn_time: SimDuration::ZERO,
            total_time: SimDuration::ZERO,
            overhead_samples: Vec::new(),
            preemptions: 0,
            dropped: 0,
            speed_factor: 1.0,
            draining: false,
            step_cache: StepSimCache::from_env(),
            scratch_tables: Vec::new(),
            scratch_ids: Vec::new(),
            scratch_finished: Vec::new(),
            fault: None,
        }
    }

    /// Records the first fault and discards later ones: the first broken
    /// invariant is the cause, anything after it is a symptom of the
    /// already-corrupt state.
    fn record_fault(&mut self, fault: EngineError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    fn record_cache_fault(&mut self, op: &'static str, detail: impl std::fmt::Display) {
        self.record_fault(EngineError::Cache {
            op,
            detail: detail.to_string(),
        });
    }

    /// Replaces the step-simulation cache with one of `capacity` entries
    /// (minimum 1), discarding any cached reports and counters.
    ///
    /// The default capacity comes from `PAT_STEP_CACHE` (see
    /// [`StepSimCache::from_env`]); the `replica-fidelity` Replay backend
    /// raises it so timing replay never evicts within a run.
    pub fn set_step_cache_capacity(&mut self, capacity: usize) {
        self.step_cache = StepSimCache::new(capacity);
    }

    /// Submits a request. Requests must be submitted in arrival order; the
    /// engine admits each once its virtual clock reaches the arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `request` arrives before a previously submitted request,
    /// or if the engine is draining (a draining replica must not receive
    /// new work; route it elsewhere).
    pub fn submit(&mut self, request: Request) {
        assert!(!self.draining, "cannot submit to a draining engine");
        if let Some(last) = self.requests.last() {
            assert!(
                last.arrival_s <= request.arrival_s,
                "requests must be submitted in arrival order"
            );
        }
        self.requests.push(request);
    }

    /// The engine's virtual clock.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Requests admitted but not yet decoding (waiting + mid-prefill).
    pub fn queue_depth(&self) -> usize {
        self.waiting.len() + self.prefilling.len()
    }

    /// Requests currently in the decode batch.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// Submitted requests not yet completed or dropped (includes requests
    /// whose arrival time is still in the engine's future).
    pub fn outstanding(&self) -> usize {
        self.waiting.len()
            + self.prefilling.len()
            + self.active.len()
            + (self.requests.len() - self.next_arrival)
    }

    /// The replica's KV cache, for read-only introspection (prefix-overlap
    /// probes, hit-rate stats, residency queries) by routers and metrics.
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Ingests migrated KV for the full-block prefix of `tokens` into this
    /// replica's cache without computing it, as if streamed from a donor
    /// replica over the KV movement plane. Subsequent prompts sharing the
    /// prefix get the ordinary prefill discount, so only the uncovered
    /// suffix pays compute. Returns the ingest report (how many tokens are
    /// now resident, and how many this call actually imported); under memory
    /// pressure the import stops at the longest prefix that fits.
    pub fn ingest_prefix(&mut self, tokens: &[kv_cache::Token]) -> kv_cache::IngestReport {
        self.cache.ingest_prefix(tokens)
    }

    /// The cost model pricing this replica's prefill and decode steps (used
    /// by the controller's migrate-vs-recompute decision).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Per-request records of requests completed so far.
    pub fn completed_requests(&self) -> &[RequestMetrics] {
        &self.completed
    }

    /// Ids of the requests currently in the decode batch, in batch order.
    pub fn active_request_ids(&self) -> Vec<u64> {
        self.active
            .iter()
            .map(|a| self.requests[a.req_idx].id)
            .collect()
    }

    /// Sets the replica's speed factor: 1.0 is nominal, 0.5 makes every
    /// prefill and decode step take twice as long (a straggler), values
    /// above 1.0 model a faster part. Virtual time already spent is not
    /// rewritten.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn set_speed_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed factor must be positive and finite"
        );
        self.speed_factor = factor;
    }

    /// The replica's current speed factor (1.0 = nominal).
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Puts the engine into drain mode: it keeps serving everything already
    /// submitted but rejects new submissions. Used for graceful scale-down —
    /// the fleet controller stops routing here, waits for
    /// [`outstanding`](ServingEngine::outstanding) to reach zero, then
    /// retires the replica.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether the engine is in drain mode.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Removes and returns every submitted-but-incomplete request — queued,
    /// mid-prefill, decoding, or not yet admitted — in arrival order, for
    /// resubmission on another replica. Decoding requests are evicted
    /// through the same path as KV-pressure preemption (blocks freed,
    /// partial output discarded), so a requeued request restarts from
    /// prefill wherever it lands next; these evictions are failover
    /// requeues, not pressure preemptions, and do not count in
    /// [`SimulationResult::preemptions`].
    pub fn take_incomplete(&mut self) -> Vec<Request> {
        let mut indices: Vec<usize> = Vec::new();
        let mut free_fault: Option<AllocError> = None;
        for a in self.active.drain(..) {
            // The request is still handed back for resubmission elsewhere;
            // the freeing fault halts only this (now-retiring) replica.
            if let Err(e) = self.cache.free_sequence(&a.table) {
                free_fault = Some(e);
            }
            indices.push(a.req_idx);
        }
        if let Some(e) = free_fault {
            self.record_cache_fault("free_sequence (failover eviction)", e);
        }
        indices.extend(self.prefilling.drain(..).map(|(idx, _, _)| idx));
        indices.extend(self.waiting.drain(..));
        indices.extend(self.next_arrival..self.requests.len());
        self.next_arrival = self.requests.len();
        // Submission order is arrival order, so sorting by index restores it.
        indices.sort_unstable();
        indices.dedup();
        indices
            .into_iter()
            .map(|i| self.requests[i].clone())
            .collect()
    }

    /// Drain deadline: this long past the latest submitted arrival, the
    /// engine stops (remaining requests count as unfinished).
    fn deadline(&self) -> SimTime {
        self.requests
            .last()
            .map_or(SimTime::ZERO, |r| SimTime::from_secs_f64(r.arrival_s))
            + SimDuration::from_secs_f64(self.config.drain_limit_s)
    }

    /// Frees the most recently arrived active request and requeues it for
    /// recompute. Returns the preempted request index, or `None`.
    fn preempt_latest(&mut self) -> Option<usize> {
        let victim = self
            .active
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.arrival)?
            .0;
        let a = self.active.swap_remove(victim);
        // A failed free corrupts the pool accounting: record the fault (the
        // step loop halts on it) but still requeue the victim, so it is
        // counted as unfinished rather than silently lost.
        if let Err(e) = self.cache.free_sequence(&a.table) {
            self.record_cache_fault("free_sequence (preemption)", e);
        }
        self.waiting.push_front(a.req_idx);
        Some(a.req_idx)
    }

    /// Runs one scheduling iteration: admit arrivals, then either prefill,
    /// decode (with an optional chunked-prefill share), or jump the idle
    /// clock forward to the next pending arrival.
    ///
    /// # Panics
    ///
    /// Panics if a single request exceeds the KV pool even with every other
    /// request preempted.
    pub fn step(&mut self, attention: &mut dyn ServingAttention) -> StepOutcome {
        // A faulted replica is halted: no further scheduling, in-flight
        // requests surface as unfinished in `into_result`.
        if self.fault.is_some() {
            return StepOutcome::Idle;
        }
        // Admit arrivals. Arrival seconds quantize onto the integer spine
        // once, here; the round trip through `as_secs_f64` is exact at
        // simulation scale, so rewritten arrival times re-admit identically.
        while self.next_arrival < self.requests.len()
            && SimTime::from_secs_f64(self.requests[self.next_arrival].arrival_s) <= self.clock
        {
            self.waiting.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
        if self.active.is_empty() && self.waiting.is_empty() && self.prefilling.is_empty() {
            if self.next_arrival >= self.requests.len() {
                return StepOutcome::Idle;
            }
            self.clock = SimTime::from_secs_f64(self.requests[self.next_arrival].arrival_s);
            return StepOutcome::Progress;
        }
        if self.clock > self.deadline() {
            return StepOutcome::Idle;
        }

        if self.config.chunked_prefill {
            // Admit waiting requests into the prefilling queue (same
            // admission control as below, but no dedicated prefill step).
            while let Some(&idx) = self.waiting.front() {
                let req = &self.requests[idx];
                let budget = self
                    .config
                    .model
                    .max_context
                    .saturating_sub(req.decode_tokens)
                    .max(16);
                let prompt_tokens = req.prompt.total_tokens().min(budget);
                let bs = DEFAULT_BLOCK_SIZE;
                let needed = prompt_tokens.div_ceil(bs) + req.decode_tokens.div_ceil(bs) + 2;
                if needed > self.cache.allocator().capacity() {
                    self.waiting.pop_front();
                    self.dropped += 1;
                    continue;
                }
                let engine_busy = !self.active.is_empty() || !self.prefilling.is_empty();
                if self.active.len() + self.prefilling.len() >= self.config.max_batch
                    || (needed > self.cache.available_blocks() && engine_busy)
                {
                    break;
                }
                self.waiting.pop_front();
                // Prefix-cached prompt blocks skip recomputation: start the
                // chunk cursor past the resident prefix (read-only probe; at
                // least one token is always computed for fresh logits).
                let tokens = req.prompt.to_tokens();
                let clamped = &tokens[..prompt_tokens];
                let cached = self
                    .cache
                    .prefix_overlap_tokens(clamped)
                    .min(prompt_tokens.saturating_sub(1));
                self.prefilling.push_back((idx, prompt_tokens, cached));
            }
        }

        // Prefill-priority scheduling (vLLM default): admit waiting requests
        // up to the token budget, then decode.
        if !self.config.chunked_prefill
            && !self.waiting.is_empty()
            && self.active.len() < self.config.max_batch
        {
            let mut chunk_tokens = 0usize;
            let mut admitted = Vec::new();
            let mut budget_blocks = self.cache.available_blocks();
            while let Some(&idx) = self.waiting.front() {
                let req = &self.requests[idx];
                // Clamp over-long prompts to the model context window.
                let budget = self
                    .config
                    .model
                    .max_context
                    .saturating_sub(req.decode_tokens)
                    .max(16);
                let prompt_tokens = req.prompt.total_tokens().min(budget);
                if self.active.len() + admitted.len() >= self.config.max_batch
                    || (chunk_tokens + prompt_tokens > self.config.max_prefill_tokens
                        && !admitted.is_empty())
                {
                    break;
                }
                // Admission control (vLLM watermark): the request's whole
                // lifetime (prompt + decode budget) must fit in currently
                // obtainable blocks, or it waits for departures. Prefix hits
                // only make this conservative.
                let bs = DEFAULT_BLOCK_SIZE;
                let needed = prompt_tokens.div_ceil(bs) + req.decode_tokens.div_ceil(bs) + 2;
                if needed > self.cache.allocator().capacity() {
                    // Can never fit, even alone: reject rather than livelock.
                    self.waiting.pop_front();
                    self.dropped += 1;
                    continue;
                }
                let engine_busy = !self.active.is_empty() || !admitted.is_empty();
                if needed > budget_blocks && engine_busy {
                    break;
                }
                budget_blocks = budget_blocks.saturating_sub(needed);
                self.waiting.pop_front();
                chunk_tokens += prompt_tokens;
                admitted.push((idx, prompt_tokens));
                if chunk_tokens >= self.config.max_prefill_tokens {
                    break;
                }
            }
            if !admitted.is_empty() {
                // Prefix caching discounts prefill compute (vLLM APC /
                // SGLang): prompt blocks already resident in the KV cache are
                // reused, so only each request's uncached suffix is computed.
                // At least one token is always computed — the final partial
                // block is never cached and the request needs fresh logits.
                let mut computed_tokens = 0usize;
                let mut placed = Vec::with_capacity(admitted.len());
                let mut admitting = admitted.into_iter();
                'admit: while let Some((idx, prompt_tokens)) = admitting.next() {
                    let tokens = self.requests[idx].prompt.to_tokens()[..prompt_tokens].to_vec();
                    let (table, hit_tokens) = loop {
                        let hits_before = self.cache.stats().hit_tokens;
                        match self.cache.insert_sequence(&tokens) {
                            Ok(t) => {
                                let hit = self.cache.stats().hit_tokens - hits_before;
                                break (t, hit as usize);
                            }
                            Err(_) => {
                                self.preemptions += 1;
                                if self.preempt_latest().is_none() {
                                    panic!("a single request exceeds the KV pool");
                                }
                                if self.fault.is_some() {
                                    // Preemption hit a cache fault: freeing
                                    // made no room, so retrying can spin
                                    // forever. Restore the un-admitted
                                    // requests to the waiting queue (they
                                    // count as unfinished) and halt.
                                    let rest: Vec<usize> = std::iter::once(idx)
                                        .chain(admitting.by_ref().map(|(i, _)| i))
                                        .collect();
                                    for &r in rest.iter().rev() {
                                        self.waiting.push_front(r);
                                    }
                                    break 'admit;
                                }
                            }
                        }
                    };
                    computed_tokens += prompt_tokens.saturating_sub(hit_tokens).max(1);
                    placed.push((idx, table));
                }
                self.clock += SimDuration::from_ns_f64(
                    self.cost.prefill_ns(computed_tokens) / self.speed_factor,
                );
                for (idx, table) in placed {
                    let req = &self.requests[idx];
                    let arrival = SimTime::from_secs_f64(req.arrival_s);
                    if req.decode_tokens <= 1 {
                        let request_id = req.id;
                        if let Err(e) = self.cache.free_sequence(&table) {
                            // Completion metrics still count; the fault
                            // halts the replica on the next step.
                            self.record_cache_fault("free_sequence (prefill-only)", e);
                        }
                        let latency = (self.clock - arrival).as_ns_f64();
                        self.completed.push(RequestMetrics {
                            request_id,
                            ttft_ns: latency,
                            tpot_ns: 0.0,
                            completion_ns: latency,
                            decode_tokens: 1,
                        });
                    } else {
                        let target = req.decode_tokens;
                        self.active.push(Active {
                            req_idx: idx,
                            table,
                            produced: 1,
                            target,
                            first_token: self.clock,
                            arrival,
                        });
                    }
                }
                return StepOutcome::Progress;
            }
            // Nothing admissible right now: fall through to decode so
            // departures can free KV blocks for the waiting requests.
        }
        // Chunked prefill: carve this step's chunk from the prefill queue.
        // The completion list is a recycled scratch vector: taken here,
        // returned to the arena on every exit path below.
        let mut prefill_chunk = 0usize;
        let mut finished_prefills = std::mem::take(&mut self.scratch_finished);
        finished_prefills.clear();
        if self.config.chunked_prefill {
            let mut budget = self.config.max_prefill_tokens;
            while budget > 0 {
                let Some(front) = self.prefilling.front_mut() else {
                    break;
                };
                let take = (front.1 - front.2).min(budget);
                front.2 += take;
                budget -= take;
                prefill_chunk += take;
                if front.2 >= front.1 {
                    let (idx, prompt_tokens, _) = (front.0, front.1, front.2);
                    self.prefilling.pop_front();
                    finished_prefills.push((idx, prompt_tokens));
                } else {
                    break;
                }
            }
        }

        if self.active.is_empty() && prefill_chunk == 0 {
            // Everything waiting was dropped or nothing is runnable yet.
            self.scratch_finished = finished_prefills;
            return StepOutcome::Progress;
        }
        if self.active.is_empty() {
            // Pure prefill-chunk step.
            self.clock +=
                SimDuration::from_ns_f64(self.cost.prefill_ns(prefill_chunk) / self.speed_factor);
            self.admit_finished_prefills(&finished_prefills);
            self.scratch_finished = finished_prefills;
            return StepOutcome::Progress;
        }

        // Decode step. The block-table vector comes from the scratch arena
        // (recovered from the batch below), so steady-state decode allocates
        // no fresh tables.
        let mut tables = std::mem::take(&mut self.scratch_tables);
        tables.truncate(self.active.len());
        for (i, a) in self.active.iter().enumerate() {
            if i < tables.len() {
                tables[i].clone_from(&a.table);
            } else {
                tables.push(a.table.clone());
            }
        }
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        ids.extend(self.active.iter().map(|a| self.requests[a.req_idx].id));
        let batch = DecodeBatch::new(self.shard_head, tables, 2).with_query_ids(ids);
        // Step-simulation memoization (serving-level §5.1): consecutive
        // steps with identical block-granularity structure replay the
        // cached timing report and skip both the pack scheduler and the
        // sim-gpu event loop. Any structural change — arrival, departure,
        // preemption, a table growing a block — changes the fingerprint.
        let key = (
            batch_timing_fingerprint(&batch, &self.config.gpu),
            backend_fingerprint(attention),
        );
        let (report, cache_hit) = match self.step_cache.get(key) {
            Some(report) => (report, true),
            None => {
                let plan = match attention.plan_step(&batch, &self.config.gpu) {
                    Ok(plan) => plan,
                    Err(e) => {
                        // No feasible tile for this device/geometry: record
                        // the typed failure and halt the replica cleanly.
                        // In-flight requests surface as `unfinished`.
                        self.record_fault(EngineError::Plan(e.to_string()));
                        (self.scratch_tables, self.scratch_ids) = batch.into_scratch();
                        self.scratch_finished = finished_prefills;
                        return StepOutcome::Idle;
                    }
                };
                // Fig. 16 three-way split: this step ran the planner —
                // record whether it reused plan state or went cold.
                // Stateless baselines report no reuse and count as cold.
                self.step_cache.note_plan(matches!(
                    attention.last_plan_reuse(),
                    Some(r) if r != PlanReuse::Cold
                ));
                let full = match simulate_plan_trusted(&batch, &plan, &self.config.gpu) {
                    Ok(full) => full,
                    Err(e) => {
                        // The backend produced a plan the kernel simulator
                        // rejects — same clean halt as a planning failure.
                        self.record_fault(EngineError::Simulate(e.to_string()));
                        (self.scratch_tables, self.scratch_ids) = batch.into_scratch();
                        self.scratch_finished = finished_prefills;
                        return StepOutcome::Idle;
                    }
                };
                let report = StepSimReport {
                    total_ns: full.total_ns,
                    scheduling_ns: full.scheduling_ns,
                };
                self.step_cache.insert(key, report);
                (report, false)
            }
        };
        // Kernel time repeats per layer; exposed CPU scheduling is paid once
        // per step (the plan's metadata is shared across layers).
        let attention_ns = (report.total_ns - report.scheduling_ns)
            * self.config.model.num_layers as f64
            + report.scheduling_ns;
        let pp = self.config.parallel.pp;
        let linear_ns = self
            .cost
            .decode_linear_ns(batch.num_queries(), self.layers_per_stage)
            * pp as f64;
        // Pipeline stages hand activations over (pp - 1) boundaries.
        let pp_transfer_ns = (pp - 1) as f64
            * (8_000.0
                + batch.num_queries() as f64 * self.config.model.hidden as f64 * 2.0 / 300.0);
        let prefill_ns = self.cost.chunked_prefill_marginal_ns(prefill_chunk);
        // A straggler (speed factor < 1) stretches every step it executes.
        let attention_ns = attention_ns / self.speed_factor;
        let step_ns = attention_ns + (linear_ns + pp_transfer_ns + prefill_ns) / self.speed_factor;
        // Fig. 16 samples per scheduler *invocation*: a cached step ran no
        // scheduler, so there is nothing to overlap with pre-attention work.
        if !cache_hit {
            if let Some(sched) = attention.scheduling_cost_ns(&batch) {
                self.overhead_samples
                    .push((sched, self.cost.pre_attention_ns(batch.num_queries())));
            }
        }
        // Quantize the step once onto the integer spine; the attention share
        // is quantized with the same rounding so the fraction stays honest.
        let step = SimDuration::from_ns_f64(step_ns);
        self.clock += step;
        self.decode_steps += 1;
        self.batch_acc += batch.num_queries();
        self.attn_time += SimDuration::from_ns_f64(attention_ns);
        self.total_time += step;
        // Return the table and id vectors to the scratch arena, then the
        // completion list; all keep their capacity for the next step.
        (self.scratch_tables, self.scratch_ids) = batch.into_scratch();
        self.admit_finished_prefills(&finished_prefills);
        self.scratch_finished = finished_prefills;

        let mut i = 0;
        while i < self.active.len() {
            if self.fault.is_some() {
                // A cache fault mid-append: stop mutating the pool; the
                // replica halts on the next step call.
                break;
            }
            // Append this request's new token, preempting the youngest
            // request under KV pressure (possibly this one).
            let my_req = self.active[i].req_idx;
            let mut appended = false;
            // The loop exits without appending when this request was itself
            // preempted (its index no longer appears in the active set).
            while let Some(pos) = self.active.iter().position(|a| a.req_idx == my_req) {
                i = pos;
                if self.cache.append_token(&mut self.active[i].table).is_ok() {
                    appended = true;
                    break;
                }
                self.preemptions += 1;
                if self.preempt_latest().is_none() {
                    panic!("a single request exceeds the KV pool");
                }
                if self.fault.is_some() {
                    break;
                }
            }
            if !appended {
                // Restart scanning: indices shifted and this slot now holds a
                // different (already-processed or pending) request. The next
                // decode step will cover any request we skip here.
                continue;
            }
            self.active[i].produced += 1;
            if self.active[i].produced >= self.active[i].target {
                let a = self.active.swap_remove(i);
                if let Err(e) = self.cache.free_sequence(&a.table) {
                    self.record_cache_fault("free_sequence (completion)", e);
                }
                let gaps = (a.produced - 1).max(1) as f64;
                self.completed.push(RequestMetrics {
                    request_id: self.requests[a.req_idx].id,
                    ttft_ns: (a.first_token - a.arrival).as_ns_f64(),
                    tpot_ns: (self.clock - a.first_token).as_ns_f64() / gaps,
                    completion_ns: (self.clock - a.arrival).as_ns_f64(),
                    decode_tokens: a.produced,
                });
            } else {
                i += 1;
            }
        }
        StepOutcome::Progress
    }

    /// Moves requests whose chunked prefill just completed into the decode
    /// batch, producing their first token.
    fn admit_finished_prefills(&mut self, finished: &[(usize, usize)]) {
        for &(idx, prompt_tokens) in finished {
            let tokens = self.requests[idx].prompt.to_tokens()[..prompt_tokens].to_vec();
            let table = match self.cache.insert_sequence(&tokens) {
                Ok(table) => table,
                Err(e) => {
                    // Admission reserved these blocks, so a failure here is
                    // corrupt pool accounting: requeue the request (counted
                    // as unfinished) and halt via the recorded fault.
                    self.record_cache_fault("insert_sequence (chunked prefill)", e);
                    self.waiting.push_front(idx);
                    continue;
                }
            };
            let req = &self.requests[idx];
            let arrival = SimTime::from_secs_f64(req.arrival_s);
            if req.decode_tokens <= 1 {
                let request_id = req.id;
                if let Err(e) = self.cache.free_sequence(&table) {
                    self.record_cache_fault("free_sequence (chunked prefill-only)", e);
                }
                let latency = (self.clock - arrival).as_ns_f64();
                self.completed.push(RequestMetrics {
                    request_id,
                    ttft_ns: latency,
                    tpot_ns: 0.0,
                    completion_ns: latency,
                    decode_tokens: 1,
                });
            } else {
                let target = req.decode_tokens;
                self.active.push(Active {
                    req_idx: idx,
                    table,
                    produced: 1,
                    target,
                    first_token: self.clock,
                    arrival,
                });
            }
        }
    }

    /// Step-simulation cache counters so far (hits skip the sim-gpu event
    /// loop; see [`StepSimCache`]).
    pub fn step_sim_stats(&self) -> StepSimStats {
        self.step_cache.stats()
    }

    /// Finalizes the simulation, consuming the engine. Requests still in
    /// flight (or never admitted) count as unfinished.
    pub fn into_result(self) -> SimulationResult {
        SimulationResult {
            metrics: AggregateMetrics::from_requests(&self.completed),
            per_request: self.completed,
            decode_steps: self.decode_steps,
            mean_batch: if self.decode_steps == 0 {
                0.0
            } else {
                self.batch_acc as f64 / self.decode_steps as f64
            },
            attention_fraction: if self.total_time == SimDuration::ZERO {
                0.0
            } else {
                self.attn_time.as_ns_f64() / self.total_time.as_ns_f64()
            },
            overhead_samples: self.overhead_samples,
            step_sim: self.step_cache.stats(),
            unfinished: self.active.len()
                + self.waiting.len()
                + self.prefilling.len()
                + (self.requests.len() - self.next_arrival),
            preemptions: self.preemptions,
            dropped: self.dropped,
            plan_error: match &self.fault {
                Some(EngineError::Plan(e)) => Some(e.clone()),
                _ => None,
            },
            fault: self.fault.as_ref().map(|f| f.to_string()),
        }
    }
}

/// Identity of a backend for step-cache keying: a hash of its display name.
/// Different backends (or differently configured PAT ablations, which embed
/// their configuration in the name) never share cache entries.
fn backend_fingerprint(attention: &dyn ServingAttention) -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut h = DefaultHasher::new();
    attention.name().hash(&mut h);
    h.finish()
}

/// Runs the serving simulation for `requests` (must be sorted by arrival).
///
/// Thin wrapper over [`ServingEngine`]: submits every request up front and
/// steps the engine until it goes idle.
///
/// # Panics
///
/// Panics if requests are unsorted, or if a single request cannot fit in
/// the KV pool even with every other request preempted.
pub fn simulate_serving(
    config: &ServingConfig,
    attention: &mut dyn ServingAttention,
    requests: &[Request],
) -> SimulationResult {
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival"
    );
    let mut engine = ServingEngine::new(config.clone());
    for request in requests {
        engine.submit(request.clone());
    }
    while engine.step(attention) == StepOutcome::Progress {}
    engine.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::Stateless;
    use baselines::FlashAttention;
    use pat_core::LazyPat;
    use workloads::{generate_trace, TraceConfig, TraceKind};

    fn short_trace(rate: f64) -> Vec<Request> {
        generate_trace(TraceConfig {
            kind: TraceKind::Conversation,
            rate_per_s: rate,
            duration_s: 6.0,
            seed: 7,
        })
    }

    fn config() -> ServingConfig {
        ServingConfig::single_gpu(ModelSpec::llama3_8b())
    }

    #[test]
    fn all_requests_complete_at_low_rate() {
        let requests = short_trace(2.0);
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &requests);
        assert_eq!(result.unfinished, 0);
        assert_eq!(result.metrics.completed, requests.len());
        assert!(result.metrics.mean_ttft_ms > 0.0);
        assert!(result.metrics.mean_tpot_ms > 0.0);
        assert!(result.decode_steps > 0);
        assert_eq!(result.plan_error, None, "clean runs report no plan error");
    }

    #[test]
    fn infeasible_device_surfaces_plan_error_instead_of_panicking() {
        let requests = short_trace(2.0);
        let mut cfg = config();
        // A device whose shared memory cannot host any (m, n) tile: tile
        // selection fails with a typed error, the replica halts cleanly,
        // and its in-flight requests surface as unfinished.
        cfg.gpu.smem_per_cta_max = 1024;
        cfg.gpu.smem_per_sm = 1024;
        let mut pat = LazyPat::new();
        let result = simulate_serving(&cfg, &mut pat, &requests);
        let err = result.plan_error.expect("plan failure must be recorded");
        assert!(
            err.contains("feasible"),
            "error should name the feasibility failure: {err}"
        );
        assert!(result.unfinished > 0, "halted replica strands its requests");
    }

    #[test]
    fn pat_beats_flash_attention_on_shared_prefix_trace() {
        let requests = short_trace(4.0);
        let mut pat = LazyPat::new();
        let pat_result = simulate_serving(&config(), &mut pat, &requests);
        let mut fa = Stateless(FlashAttention::new());
        let fa_result = simulate_serving(&config(), &mut fa, &requests);
        assert!(
            pat_result.metrics.mean_tpot_ms < fa_result.metrics.mean_tpot_ms,
            "PAT {:.3} ms !< FA {:.3} ms",
            pat_result.metrics.mean_tpot_ms,
            fa_result.metrics.mean_tpot_ms
        );
    }

    #[test]
    fn pat_reports_overhead_samples_and_they_hide_in_pre_attention() {
        let requests = short_trace(4.0);
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &requests);
        assert!(!result.overhead_samples.is_empty());
        let (sched, pre): (Vec<f64>, Vec<f64>) = result.overhead_samples.iter().copied().unzip();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&sched) < mean(&pre),
            "scheduler ({:.0} ns) must hide inside pre-attention ({:.0} ns)",
            mean(&sched),
            mean(&pre)
        );
    }

    #[test]
    fn higher_rate_increases_tpot() {
        let mut pat_low = LazyPat::new();
        let low = simulate_serving(&config(), &mut pat_low, &short_trace(1.0));
        let mut pat_high = LazyPat::new();
        let high = simulate_serving(&config(), &mut pat_high, &short_trace(8.0));
        assert!(high.mean_batch > low.mean_batch);
        assert!(high.metrics.mean_tpot_ms >= low.metrics.mean_tpot_ms * 0.9);
    }

    #[test]
    fn tp_reduces_tpot_for_a_large_model() {
        let requests = short_trace(1.0);
        let mut cfg = ServingConfig::single_gpu(ModelSpec::qwen25_72b());
        cfg.max_prefill_tokens = 4096;
        let mut pat1 = LazyPat::new();
        let single = simulate_serving(&cfg, &mut pat1, &requests);
        cfg.parallel = Parallelism { tp: 2, pp: 2 };
        let mut pat4 = LazyPat::new();
        let multi = simulate_serving(&cfg, &mut pat4, &requests);
        assert!(
            multi.metrics.mean_tpot_ms < single.metrics.mean_tpot_ms,
            "TP2xPP2 {:.2} !< single {:.2}",
            multi.metrics.mean_tpot_ms,
            single.metrics.mean_tpot_ms
        );
    }

    #[test]
    fn tiny_kv_pool_serves_via_admission_control() {
        let requests = short_trace(6.0);
        let mut cfg = config();
        // A pool that can hold only a handful of ~2.5k-token contexts: the
        // watermark admits few requests at a time, but everyone finishes.
        cfg.kv_capacity_blocks = 1200;
        cfg.max_batch = 32;
        let mut pat = LazyPat::new();
        let result = simulate_serving(&cfg, &mut pat, &requests);
        assert_eq!(result.unfinished, 0, "requests must finish under pressure");
        assert_eq!(result.dropped, 0);
        assert_eq!(result.metrics.completed, requests.len());
        assert!(result.mean_batch < 16.0, "pool bounds concurrency");
    }

    #[test]
    fn impossible_requests_are_dropped_not_livelocked() {
        let mut requests = short_trace(2.0);
        for r in &mut requests {
            r.decode_tokens = 2000; // prompt + decode exceed the pool below
        }
        let mut cfg = config();
        cfg.kv_capacity_blocks = 150;
        let mut pat = LazyPat::new();
        let result = simulate_serving(&cfg, &mut pat, &requests);
        assert_eq!(result.dropped as usize, requests.len());
        assert_eq!(result.unfinished, 0);
        assert_eq!(result.metrics.completed, 0);
    }

    #[test]
    fn chunked_prefill_serves_everyone_and_smooths_tail_latency() {
        // A bursty moment: many long prompts arriving together makes
        // prefill-priority stall decoding (P99 TPOT spikes); chunking mixes
        // the prefills into decode steps.
        let requests = short_trace(10.0);
        let mut cfg = config();
        cfg.max_prefill_tokens = 2048;
        let mut pat1 = LazyPat::new();
        let priority = simulate_serving(&cfg, &mut pat1, &requests);
        cfg.chunked_prefill = true;
        let mut pat2 = LazyPat::new();
        let chunked = simulate_serving(&cfg, &mut pat2, &requests);
        assert_eq!(chunked.unfinished, 0);
        assert_eq!(chunked.metrics.completed, requests.len());
        assert!(
            chunked.metrics.p99_tpot_ms < priority.metrics.p99_tpot_ms * 1.5,
            "chunked {:.1} ms vs priority {:.1} ms",
            chunked.metrics.p99_tpot_ms,
            priority.metrics.p99_tpot_ms
        );
    }

    #[test]
    fn empty_request_list_is_fine() {
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &[]);
        assert_eq!(result.metrics.completed, 0);
        assert_eq!(result.decode_steps, 0);
    }

    #[test]
    fn incremental_submission_matches_upfront_submission() {
        // The steppable engine must behave identically whether the whole
        // trace is submitted up front or each request is submitted only once
        // the clock (or the outside world) reaches its arrival time — the
        // contract the cluster driver relies on.
        let requests = short_trace(5.0);
        let mut pat_a = LazyPat::new();
        let upfront = simulate_serving(&config(), &mut pat_a, &requests);

        let mut pat_b = LazyPat::new();
        let mut engine = ServingEngine::new(config());
        for request in &requests {
            let arrival = sim_core::SimTime::from_secs_f64(request.arrival_s);
            while engine.clock() < arrival {
                if engine.step(&mut pat_b) == StepOutcome::Idle {
                    break;
                }
            }
            engine.submit(request.clone());
        }
        while engine.step(&mut pat_b) == StepOutcome::Progress {}
        let incremental = engine.into_result();

        assert_eq!(upfront.per_request, incremental.per_request);
        assert_eq!(upfront.decode_steps, incremental.decode_steps);
        assert_eq!(upfront.preemptions, incremental.preemptions);
        assert!(upfront.metrics.mean_tpot_ms == incremental.metrics.mean_tpot_ms);
    }

    #[test]
    fn slower_speed_factor_stretches_latency_proportionally() {
        let requests = short_trace(2.0);
        let mut pat_a = LazyPat::new();
        let nominal = simulate_serving(&config(), &mut pat_a, &requests);

        let mut pat_b = LazyPat::new();
        let mut engine = ServingEngine::new(config());
        engine.set_speed_factor(0.5);
        for request in &requests {
            engine.submit(request.clone());
        }
        while engine.step(&mut pat_b) == StepOutcome::Progress {}
        let slow = engine.into_result();

        assert_eq!(slow.metrics.completed, nominal.metrics.completed);
        // Half speed doubles every step; scheduling dynamics shift batch
        // composition, so TPOT lands near 2x rather than exactly on it.
        let ratio = slow.metrics.mean_tpot_ms / nominal.metrics.mean_tpot_ms;
        assert!(
            (1.5..=3.0).contains(&ratio),
            "slow/nominal TPOT ratio {ratio:.3} not near 2x"
        );
        assert!(slow.metrics.mean_ttft_ms > nominal.metrics.mean_ttft_ms);
    }

    #[test]
    fn unit_speed_factor_is_bit_identical_to_default() {
        let requests = short_trace(4.0);
        let mut pat_a = LazyPat::new();
        let reference = simulate_serving(&config(), &mut pat_a, &requests);
        let mut pat_b = LazyPat::new();
        let mut engine = ServingEngine::new(config());
        engine.set_speed_factor(1.0);
        for request in &requests {
            engine.submit(request.clone());
        }
        while engine.step(&mut pat_b) == StepOutcome::Progress {}
        assert_eq!(engine.into_result().per_request, reference.per_request);
    }

    #[test]
    fn take_incomplete_returns_unfinished_and_frees_their_blocks() {
        let requests = short_trace(6.0);
        let mut engine = ServingEngine::new(config());
        for request in &requests {
            engine.submit(request.clone());
        }
        let mut pat = LazyPat::new();
        // Run just long enough that some requests finished, some are mid
        // flight, and some have not arrived yet.
        for _ in 0..200 {
            if engine.step(&mut pat) == StepOutcome::Idle {
                break;
            }
        }
        let done_before = engine.completed_requests().len();
        assert!(done_before > 0 && done_before < requests.len(), "mid-run");
        let free_before = engine.cache().available_blocks();
        let requeued = engine.take_incomplete();
        assert_eq!(done_before + requeued.len(), requests.len());
        assert!(engine.cache().available_blocks() >= free_before);
        assert_eq!(engine.outstanding(), 0);
        // Requeued requests come back in arrival order, ready to resubmit.
        assert!(requeued
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        // The engine itself is still serviceable and idle.
        while engine.step(&mut pat) == StepOutcome::Progress {}
        assert_eq!(engine.completed_requests().len(), done_before);
    }

    #[test]
    fn drain_mode_finishes_existing_work_and_rejects_new() {
        let requests = short_trace(3.0);
        let mut engine = ServingEngine::new(config());
        for request in &requests {
            engine.submit(request.clone());
        }
        engine.begin_drain();
        assert!(engine.is_draining());
        let mut pat = LazyPat::new();
        while engine.step(&mut pat) == StepOutcome::Progress {}
        assert_eq!(engine.outstanding(), 0);
        assert_eq!(engine.completed_requests().len(), requests.len());
    }

    #[test]
    #[should_panic(expected = "draining")]
    fn submitting_to_a_draining_engine_panics() {
        let requests = short_trace(3.0);
        let mut engine = ServingEngine::new(config());
        engine.begin_drain();
        engine.submit(requests[0].clone());
    }

    #[test]
    fn lockstep_decode_heavy_batch_exceeds_80_percent_step_cache_hit_rate() {
        // The acceptance scenario for the step cache: uniform requests
        // arriving together decode in lockstep, so every table crosses a
        // block boundary on the same step and the batch structure changes
        // only once per `block_size` decode steps.
        let requests: Vec<Request> = (0..8u64)
            .map(|i| Request {
                id: i,
                arrival_s: 0.0,
                prompt: workloads::PromptSpec::from_parts([(1, 256), (100 + i, 256)]),
                decode_tokens: 256,
            })
            .collect();
        let mut pat = LazyPat::new();
        let result = simulate_serving(&config(), &mut pat, &requests);
        assert_eq!(result.unfinished, 0);
        let stats = result.step_sim;
        assert!(
            stats.hits + stats.misses > 0,
            "decode steps must be counted"
        );
        assert!(
            stats.hit_rate() > 0.8,
            "step-cache hit rate {:.3} (hits {}, misses {}) below the 80% bar",
            stats.hit_rate(),
            stats.hits,
            stats.misses
        );
    }

    #[test]
    fn scratch_arena_reuse_keeps_repeat_runs_bit_identical() {
        // Step-in-a-loop check for the per-engine scratch arena: reused
        // BlockTable capacity and the recycled finished-prefill buffer must
        // never leak state between steps or between runs.
        let requests = short_trace(5.0);
        let run = || {
            let mut pat = LazyPat::new();
            let mut engine = ServingEngine::new(config());
            for request in &requests {
                engine.submit(request.clone());
            }
            let mut steps = 0usize;
            while engine.step(&mut pat) == StepOutcome::Progress {
                steps += 1;
            }
            (engine.into_result(), steps)
        };
        let (a, steps_a) = run();
        let (b, steps_b) = run();
        assert_eq!(steps_a, steps_b);
        assert_eq!(a.per_request, b.per_request);
        assert_eq!(a.overhead_samples, b.overhead_samples);
        assert_eq!(a.step_sim, b.step_sim);
        assert_eq!(
            a.metrics.mean_tpot_ms.to_bits(),
            b.metrics.mean_tpot_ms.to_bits()
        );
        assert_eq!(
            a.metrics.p99_tpot_ms.to_bits(),
            b.metrics.p99_tpot_ms.to_bits()
        );
    }

    #[test]
    fn engine_exposes_cache_and_queue_introspection() {
        let requests = short_trace(4.0);
        let mut engine = ServingEngine::new(config());
        for request in &requests {
            engine.submit(request.clone());
        }
        assert_eq!(engine.outstanding(), requests.len());
        assert_eq!(engine.queue_depth(), 0);
        let mut pat = LazyPat::new();
        let mut saw_active = false;
        while engine.step(&mut pat) == StepOutcome::Progress {
            saw_active |= engine.num_active() > 0;
        }
        assert!(saw_active);
        assert!(
            engine.cache().stats().hit_tokens > 0,
            "trace shares prefixes"
        );
        assert_eq!(engine.completed_requests().len(), requests.len());
        assert_eq!(engine.outstanding(), 0);
    }
}
