/root/repo/target/release/examples/cluster_routing-c4f9073e424ad575.d: examples/cluster_routing.rs

/root/repo/target/release/examples/cluster_routing-c4f9073e424ad575: examples/cluster_routing.rs

examples/cluster_routing.rs:
