//! Blessed numeric conversions for sim crates (lint rule **R8**).
//!
//! A bare `as` cast between integer widths truncates silently, and
//! `f64 as u64` saturates-with-NaN-to-zero semantics that few readers can
//! recite. Inside the simulation crates those silent edges are exactly
//! where determinism bugs hide, so sim-lint's R8 requires narrowing and
//! float→int casts to go through this module: every helper either proves
//! the conversion lossless in debug builds (`debug_assert!`) or documents
//! its saturation contract in its name.
//!
//! Widening casts (`u32 as u64`, `usize as f64`) stay legal everywhere —
//! they cannot lose integer precision — as do casts in `sim-core` itself,
//! which is the one crate allowed to own raw representation changes
//! (mirroring R3's time-cast carve-out).

/// `usize` → `u32`, saturating at `u32::MAX`. Debug-asserts losslessness:
/// sim quantities that reach `u32` fields (CTA counts, page ids) are far
/// below 2³² by construction, so a clamp firing is a modeling bug.
#[inline]
pub fn usize_to_u32(v: usize) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "usize_to_u32 overflow: {v}");
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// `usize` → `u64`. Lossless on every supported target (Rust supports no
/// >64-bit `usize`); spelled as a helper so call sites stay `as`-free.
#[inline]
pub fn usize_to_u64(v: usize) -> u64 {
    v as u64
}

/// `usize` → `isize`, saturating at `isize::MAX`. Debug-asserts
/// losslessness — index arithmetic that overflows the signed half-range
/// indicates a sizing bug, not a value to clamp.
#[inline]
pub fn usize_to_isize(v: usize) -> isize {
    debug_assert!(isize::try_from(v).is_ok(), "usize_to_isize overflow: {v}");
    isize::try_from(v).unwrap_or(isize::MAX)
}

/// `u64` → `usize`, saturating at `usize::MAX`. Lossless on 64-bit
/// targets; the saturation only exists for hypothetical 32-bit hosts.
#[inline]
pub fn u64_to_usize(v: u64) -> usize {
    debug_assert!(usize::try_from(v).is_ok(), "u64_to_usize overflow: {v}");
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// `u64` → `u32`, saturating at `u32::MAX`, with a debug-assert that the
/// value fit.
#[inline]
pub fn u64_to_u32(v: u64) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "u64_to_u32 overflow: {v}");
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// `f64` → `u64` with explicit saturation: NaN → 0, negatives → 0, values
/// above `u64::MAX` → `u64::MAX`, fractional part truncated toward zero.
/// (These are the semantics of `as` since Rust 1.45, but spelled out.)
#[inline]
pub fn f64_to_u64(v: f64) -> u64 {
    if v.is_nan() {
        return 0;
    }
    v.clamp(0.0, u64::MAX as f64) as u64
}

/// `f64` → `usize` with the same saturation contract as [`f64_to_u64`].
#[inline]
pub fn f64_to_usize(v: f64) -> usize {
    u64_to_usize(f64_to_u64(v))
}

/// `f64` → `i64` with explicit saturation: NaN → 0, out-of-range values
/// clamp to the `i64` bounds, fractional part truncated toward zero.
#[inline]
pub fn f64_to_i64(v: f64) -> i64 {
    if v.is_nan() {
        return 0;
    }
    v.clamp(i64::MIN as f64, i64::MAX as f64) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_helpers_are_identity_in_range() {
        assert_eq!(usize_to_u32(123), 123);
        assert_eq!(usize_to_u64(123), 123);
        assert_eq!(usize_to_isize(123), 123);
        assert_eq!(u64_to_usize(123), 123);
        assert_eq!(u64_to_u32(123), 123);
    }

    #[test]
    fn float_helpers_saturate_and_zero_nan() {
        assert_eq!(f64_to_u64(f64::NAN), 0);
        assert_eq!(f64_to_u64(-3.5), 0);
        assert_eq!(f64_to_u64(3.9), 3);
        assert_eq!(f64_to_u64(f64::INFINITY), u64::MAX);
        assert_eq!(f64_to_usize(2.999), 2);
        assert_eq!(f64_to_i64(f64::NAN), 0);
        assert_eq!(f64_to_i64(-2.7), -2);
        assert_eq!(f64_to_i64(f64::NEG_INFINITY), i64::MIN);
    }
}
