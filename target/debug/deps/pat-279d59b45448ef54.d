/root/repo/target/debug/deps/pat-279d59b45448ef54.d: src/lib.rs

/root/repo/target/debug/deps/libpat-279d59b45448ef54.rlib: src/lib.rs

/root/repo/target/debug/deps/libpat-279d59b45448ef54.rmeta: src/lib.rs

src/lib.rs:
