/root/repo/target/release/deps/proptest-04221b4fde5aa5a5.d: crates/compat-proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-04221b4fde5aa5a5.rlib: crates/compat-proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-04221b4fde5aa5a5.rmeta: crates/compat-proptest/src/lib.rs

crates/compat-proptest/src/lib.rs:
