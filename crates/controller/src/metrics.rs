//! Controller-level outcome accounting: goodput, loss classes, and
//! per-phase slices of a run.

use serde::Serialize;
use serving::{AggregateMetrics, RequestMetrics};
use sim_core::stats::{guarded_mean, percentile_sorted};
use workloads::Request;

/// One entry in the controller's event timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControlEvent {
    /// Virtual time of the event, seconds.
    pub t_s: f64,
    /// Human-readable description (`"crash replica 0"`, `"scale-up"`, ...).
    pub what: String,
}

/// One structured entry on the event-queue timeline: what the control
/// plane's event loop did and when, in integer nanoseconds. Unlike
/// [`ControlEvent`] (free-text, for humans), these are machine-readable and
/// include the periodic health ticks — the raw material for the Chrome
/// trace export ([`crate::timeline_chrome_json`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimelineEvent {
    /// Virtual time of the event, integer nanoseconds.
    pub t_ns: u64,
    /// Event kind: `"crash"`, `"detect"`, `"revive"`, `"slowdown"`,
    /// `"restore-speed"`, `"tick"`, `"scale-up"`, `"scale-down"`,
    /// `"retire"`, `"transfer"`, `"migrate-ingest"`, `"prewarm-ingest"`,
    /// `"handoff-ingest"`, `"transfer-lost"`.
    pub kind: String,
    /// The replica the event concerns, if any (`None` for fleet-wide
    /// events such as ticks).
    pub replica: Option<usize>,
    /// Span length in nanoseconds: `0` for instant control actions,
    /// positive for extended ones (KV transfers occupy their wire time).
    /// Spans render as complete events in the Chrome trace export.
    pub dur_ns: u64,
}

/// Result of one controlled fleet run.
///
/// Every offered request lands in exactly one of four buckets —
/// `completed`, `shed`, `lost`, `unfinished` — so nothing is ever silently
/// dropped: `offered == completed + shed + lost + unfinished` always holds.
#[derive(Debug, Clone, Serialize)]
pub struct ControlResult {
    /// Fleet-wide aggregates over completed requests, with latencies
    /// measured from each request's *original* arrival (failover
    /// resubmission delay is charged to the request, not hidden).
    pub fleet: AggregateMetrics,
    /// Per-request records (completed only), corrected to original
    /// arrivals and sorted by request id.
    pub per_request: Vec<RequestMetrics>,
    /// Requests offered to the controller.
    pub offered: usize,
    /// Requests that completed decoding somewhere in the fleet.
    pub completed: usize,
    /// Requests explicitly rejected by admission control.
    pub shed: usize,
    /// Requests lost to crashes (no failover, or the fleet never
    /// recovered enough capacity to replay them).
    pub lost: usize,
    /// Requests still queued or in flight when the run's horizon expired.
    pub unfinished: usize,
    /// Fraction of offered requests that completed within the TTFT SLO
    /// (0.0 when nothing was offered).
    pub goodput: f64,
    /// The TTFT SLO the goodput is measured against, ms.
    pub slo_ttft_ms: f64,
    /// Requests rerouted off a crashed replica.
    pub failovers: usize,
    /// Prefill tokens recomputed because failover landed a request on a
    /// replica without its warm prefix — the PAT-specific cost of losing
    /// a warm cache. Always `refilled_cold + refilled_after_partial_migration`.
    pub refilled_prefill_tokens: u64,
    /// Refilled tokens for failovers that got no migrated KV at all (the
    /// whole uncovered prompt recomputed cold).
    pub refilled_cold: u64,
    /// Refilled tokens for failovers whose prefix was partially covered by
    /// a KV migration — only the uncovered suffix recomputed.
    pub refilled_after_partial_migration: u64,
    /// Prompt tokens whose KV arrived over the transfer plane (migration,
    /// prewarm, and disaggregation-handoff imports) instead of being
    /// recomputed. Disjoint from the refilled counts: a block is never
    /// both migrated and recomputed.
    pub migrated_prefix_tokens: u64,
    /// Failover requests whose prefix was (partially) served by migration.
    pub migrations: usize,
    /// Speculative prefix pushes to replicas that (re)joined the fleet.
    pub prewarm_transfers: usize,
    /// Prefill→decode KV handoffs completed in disaggregated mode.
    pub disagg_handoffs: usize,
    /// KV transfers completed on the movement plane (all kinds).
    pub kv_transfers: u64,
    /// Bytes moved by completed KV transfers.
    pub kv_transfer_bytes: u64,
    /// Time completed transfers spent queued behind busy NICs, ns.
    pub kv_transfer_nic_wait_ns: u64,
    /// Crashes injected (and actually applied).
    pub crashes: usize,
    /// Autoscaler scale-up decisions.
    pub scale_ups: usize,
    /// Autoscaler scale-down (drain) decisions.
    pub scale_downs: usize,
    /// Mid-run replica fidelity switches performed by the fidelity policy
    /// (0 when no [`crate::FidelityPolicy`] is configured).
    pub fidelity_switches: usize,
    /// Maximum number of live (non-dead) replicas at any instant.
    pub peak_replicas: usize,
    /// KV-pressure preemptions summed across all replica incarnations.
    pub preemptions: u64,
    /// Timeline of controller actions, in virtual-time order.
    pub events: Vec<ControlEvent>,
    /// Structured event-queue timeline (includes health ticks), in
    /// virtual-time order. Feed to [`crate::timeline_chrome_json`] for a
    /// `chrome://tracing` view of the run.
    pub timeline: Vec<TimelineEvent>,
    /// Ids of shed requests, sorted.
    pub shed_ids: Vec<u64>,
    /// Ids of lost requests, sorted.
    pub lost_ids: Vec<u64>,
}

/// Goodput and tail latency over one arrival window of a run — used to
/// compare fleets phase by phase (steady state, through a crash, through a
/// burst).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowStats {
    /// Window start (arrival time, inclusive), seconds.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub to_s: f64,
    /// Requests whose original arrival falls in the window.
    pub offered: usize,
    /// Of those, how many completed.
    pub completed: usize,
    /// Of those, how many completed within the TTFT SLO.
    pub within_slo: usize,
    /// `within_slo / offered` (0.0 for an empty window).
    pub goodput: f64,
    /// 99th-percentile TTFT over the window's completions, ms.
    pub p99_ttft_ms: f64,
    /// Mean TTFT over the window's completions, ms.
    pub mean_ttft_ms: f64,
}

/// Reusable buffers for [`window_stats_with`]. Slicing a long run into many
/// windows (phase tables, rolling dashboards, the fleet-scale bench) stops
/// allocating after the first window.
#[derive(Debug, Default)]
pub struct WindowScratch {
    ids: Vec<u64>,
    ttfts_ms: Vec<f64>,
}

/// Slices `result` to the requests of `trace` arriving in `[from_s, to_s)`.
///
/// TTFTs in `result.per_request` are already corrected to original
/// arrivals, so a request delayed by failover shows its true
/// user-perceived first-token latency here.
pub fn window_stats(
    trace: &[Request],
    result: &ControlResult,
    from_s: f64,
    to_s: f64,
) -> WindowStats {
    window_stats_with(&mut WindowScratch::default(), trace, result, from_s, to_s)
}

/// [`window_stats`] with caller-owned scratch buffers: sorts the window's
/// TTFTs once (instead of once per quantile) and reuses `scratch`'s
/// allocations across calls.
pub fn window_stats_with(
    scratch: &mut WindowScratch,
    trace: &[Request],
    result: &ControlResult,
    from_s: f64,
    to_s: f64,
) -> WindowStats {
    scratch.ids.clear();
    scratch.ids.extend(
        trace
            .iter()
            .filter(|r| (from_s..to_s).contains(&r.arrival_s))
            .map(|r| r.id),
    );
    scratch.ids.sort_unstable();
    scratch.ids.dedup();
    scratch.ttfts_ms.clear();
    scratch.ttfts_ms.extend(
        result
            .per_request
            .iter()
            .filter(|m| scratch.ids.binary_search(&m.request_id).is_ok())
            .map(|m| m.ttft_ns / 1e6),
    );
    let within_slo = scratch
        .ttfts_ms
        .iter()
        .filter(|&&t| t <= result.slo_ttft_ms)
        .count();
    let offered = scratch.ids.len();
    let completed = scratch.ttfts_ms.len();
    let mean_ttft_ms = guarded_mean(&scratch.ttfts_ms);
    scratch.ttfts_ms.sort_unstable_by(f64::total_cmp);
    WindowStats {
        from_s,
        to_s,
        offered,
        completed,
        within_slo,
        goodput: if offered == 0 {
            0.0
        } else {
            within_slo as f64 / offered as f64
        },
        p99_ttft_ms: percentile_sorted(&scratch.ttfts_ms, 0.99),
        mean_ttft_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::PromptSpec;

    fn result_with(per_request: Vec<RequestMetrics>, slo_ttft_ms: f64) -> ControlResult {
        ControlResult {
            fleet: AggregateMetrics::from_requests(&per_request),
            offered: per_request.len(),
            completed: per_request.len(),
            per_request,
            shed: 0,
            lost: 0,
            unfinished: 0,
            goodput: 1.0,
            slo_ttft_ms,
            failovers: 0,
            refilled_prefill_tokens: 0,
            refilled_cold: 0,
            refilled_after_partial_migration: 0,
            migrated_prefix_tokens: 0,
            migrations: 0,
            prewarm_transfers: 0,
            disagg_handoffs: 0,
            kv_transfers: 0,
            kv_transfer_bytes: 0,
            kv_transfer_nic_wait_ns: 0,
            crashes: 0,
            scale_ups: 0,
            scale_downs: 0,
            fidelity_switches: 0,
            peak_replicas: 1,
            preemptions: 0,
            events: Vec::new(),
            timeline: Vec::new(),
            shed_ids: Vec::new(),
            lost_ids: Vec::new(),
        }
    }

    #[test]
    fn window_stats_slice_by_original_arrival() {
        let trace: Vec<Request> = (0..4)
            .map(|i| Request {
                id: i,
                arrival_s: i as f64,
                prompt: PromptSpec::from_parts([(1, 16)]),
                decode_tokens: 4,
            })
            .collect();
        let per_request: Vec<RequestMetrics> = (0..4)
            .map(|i| RequestMetrics {
                request_id: i,
                ttft_ns: if i < 2 { 5e6 } else { 500e6 },
                tpot_ns: 1e6,
                completion_ns: 600e6,
                decode_tokens: 4,
            })
            .collect();
        let result = result_with(per_request, 100.0);
        let early = window_stats(&trace, &result, 0.0, 2.0);
        assert_eq!(early.offered, 2);
        assert_eq!(early.within_slo, 2);
        assert_eq!(early.goodput, 1.0);
        let late = window_stats(&trace, &result, 2.0, 4.0);
        assert_eq!(late.offered, 2);
        assert_eq!(late.within_slo, 0);
        assert_eq!(late.goodput, 0.0);
        assert!(late.p99_ttft_ms > early.p99_ttft_ms);
        let empty = window_stats(&trace, &result, 10.0, 20.0);
        assert_eq!(empty.offered, 0);
        assert_eq!(empty.goodput, 0.0);
        assert!(empty.p99_ttft_ms.is_finite());
    }

    #[test]
    fn window_stats_with_reused_scratch_matches_fresh() {
        let trace: Vec<Request> = (0..8)
            .map(|i| Request {
                id: i,
                arrival_s: i as f64,
                prompt: PromptSpec::from_parts([(1, 16)]),
                decode_tokens: 4,
            })
            .collect();
        let per_request: Vec<RequestMetrics> = (0..8)
            .map(|i| RequestMetrics {
                request_id: i,
                ttft_ns: (i + 1) as f64 * 7e6,
                tpot_ns: 1e6,
                completion_ns: 600e6,
                decode_tokens: 4,
            })
            .collect();
        let result = result_with(per_request, 100.0);
        let mut scratch = WindowScratch::default();
        for (from_s, to_s) in [(0.0, 4.0), (4.0, 8.0), (2.0, 6.0), (9.0, 12.0)] {
            let reused = window_stats_with(&mut scratch, &trace, &result, from_s, to_s);
            assert_eq!(reused, window_stats(&trace, &result, from_s, to_s));
        }
    }
}
