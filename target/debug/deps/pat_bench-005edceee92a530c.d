/root/repo/target/debug/deps/pat_bench-005edceee92a530c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpat_bench-005edceee92a530c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpat_bench-005edceee92a530c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
