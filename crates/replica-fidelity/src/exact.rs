//! Exact and Replay fidelities: the full serving engine, with a bounded or
//! unbounded step-simulation cache.

use crate::{Fidelity, ReplicaModel};
use kv_cache::{CacheManager, IngestReport, Token};
use serving::{
    CostModel, RequestMetrics, ServingAttention, ServingConfig, ServingEngine, SimulationResult,
    StepOutcome, StepSimStats,
};
use sim_core::SimTime;
use workloads::Request;

/// Step-cache capacity of a [`ReplayReplica`]: effectively unbounded, so a
/// structurally distinct decode step is simulated exactly once per run and
/// replayed thereafter — timing replay never loses entries to eviction.
pub const REPLAY_STEP_CACHE_CAPACITY: usize = usize::MAX / 2;

/// The reference fidelity: a full [`ServingEngine`] over the kernel
/// simulator, with the engine's default (bounded, `PAT_STEP_CACHE`-sized)
/// step-simulation cache.
pub struct ExactReplica {
    engine: ServingEngine,
    backend: Box<dyn ServingAttention>,
    fidelity: Fidelity,
}

impl std::fmt::Debug for ExactReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactReplica")
            .field("fidelity", &self.fidelity)
            .field("clock", &self.engine.clock())
            .field("outstanding", &self.engine.outstanding())
            .finish_non_exhaustive()
    }
}

impl ExactReplica {
    /// A fresh exact replica with an empty KV cache.
    pub fn new(config: ServingConfig, backend: Box<dyn ServingAttention>) -> Self {
        ExactReplica {
            engine: ServingEngine::new(config),
            backend,
            fidelity: Fidelity::Exact,
        }
    }

    /// The wrapped engine (read-only, for drivers that need the full
    /// engine surface beyond [`ReplicaModel`]).
    pub fn engine(&self) -> &ServingEngine {
        &self.engine
    }
}

/// Replay fidelity: identical engine and scheduler, but the step-simulation
/// cache is unbounded ([`REPLAY_STEP_CACHE_CAPACITY`]), so each structurally
/// distinct decode step runs the kernel simulator once and is replayed from
/// the cached timing report forever after.
///
/// Replay is bit-identical to [`ExactReplica`] whenever the bounded default
/// cache would not have evicted (lockstep decode, small working sets); on
/// eviction-heavy workloads it differs only by *which* steps pay the
/// simulator, never by the timing a given structure receives — and it is
/// never slower than exact.
pub struct ReplayReplica {
    inner: ExactReplica,
}

impl std::fmt::Debug for ReplayReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayReplica")
            .field("clock", &self.inner.engine.clock())
            .field("outstanding", &self.inner.engine.outstanding())
            .finish_non_exhaustive()
    }
}

impl ReplayReplica {
    /// A fresh replay replica with an empty KV cache and an unbounded step
    /// cache.
    pub fn new(config: ServingConfig, backend: Box<dyn ServingAttention>) -> Self {
        let mut inner = ExactReplica::new(config, backend);
        inner
            .engine
            .set_step_cache_capacity(REPLAY_STEP_CACHE_CAPACITY);
        inner.fidelity = Fidelity::Replay;
        ReplayReplica { inner }
    }

    /// The wrapped engine (read-only).
    pub fn engine(&self) -> &ServingEngine {
        &self.inner.engine
    }
}

impl ReplicaModel for ExactReplica {
    fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    fn submit(&mut self, request: Request) {
        self.engine.submit(request);
    }

    fn step(&mut self) -> StepOutcome {
        self.engine.step(self.backend.as_mut())
    }

    fn clock(&self) -> SimTime {
        self.engine.clock()
    }

    fn config(&self) -> &ServingConfig {
        self.engine.config()
    }

    fn queue_depth(&self) -> usize {
        self.engine.queue_depth()
    }

    fn num_active(&self) -> usize {
        self.engine.num_active()
    }

    fn outstanding(&self) -> usize {
        self.engine.outstanding()
    }

    fn cache(&self) -> Option<&CacheManager> {
        Some(self.engine.cache())
    }

    fn block_size(&self) -> usize {
        self.engine.cache().block_size()
    }

    fn prefix_overlap_tokens(&self, prompt_tokens: &[Token]) -> usize {
        self.engine.cache().prefix_overlap_tokens(prompt_tokens)
    }

    fn cache_hit_rate(&self) -> f64 {
        self.engine.cache().stats().hit_rate()
    }

    fn cache_hit_miss_tokens(&self) -> (u64, u64) {
        let stats = self.engine.cache().stats();
        (stats.hit_tokens, stats.miss_tokens)
    }

    fn resident_block_hashes(&self) -> Vec<u64> {
        self.engine.cache().resident_hashes().collect()
    }

    fn ingest_prefix(&mut self, tokens: &[Token]) -> IngestReport {
        self.engine.ingest_prefix(tokens)
    }

    fn cost_model(&self) -> &CostModel {
        self.engine.cost_model()
    }

    fn completed_requests(&self) -> &[RequestMetrics] {
        self.engine.completed_requests()
    }

    fn set_speed_factor(&mut self, factor: f64) {
        self.engine.set_speed_factor(factor);
    }

    fn speed_factor(&self) -> f64 {
        self.engine.speed_factor()
    }

    fn begin_drain(&mut self) {
        self.engine.begin_drain();
    }

    fn is_draining(&self) -> bool {
        self.engine.is_draining()
    }

    fn take_incomplete(&mut self) -> Vec<Request> {
        self.engine.take_incomplete()
    }

    fn step_sim_stats(&self) -> StepSimStats {
        self.engine.step_sim_stats()
    }

    fn into_result(self: Box<Self>) -> SimulationResult {
        self.engine.into_result()
    }
}

impl ReplicaModel for ReplayReplica {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Replay
    }

    fn submit(&mut self, request: Request) {
        self.inner.submit(request);
    }

    fn step(&mut self) -> StepOutcome {
        self.inner.step()
    }

    fn clock(&self) -> SimTime {
        self.inner.clock()
    }

    fn config(&self) -> &ServingConfig {
        self.inner.config()
    }

    fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    fn num_active(&self) -> usize {
        self.inner.num_active()
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn cache(&self) -> Option<&CacheManager> {
        self.inner.cache()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn prefix_overlap_tokens(&self, prompt_tokens: &[Token]) -> usize {
        self.inner.prefix_overlap_tokens(prompt_tokens)
    }

    fn cache_hit_rate(&self) -> f64 {
        self.inner.cache_hit_rate()
    }

    fn cache_hit_miss_tokens(&self) -> (u64, u64) {
        self.inner.cache_hit_miss_tokens()
    }

    fn resident_block_hashes(&self) -> Vec<u64> {
        self.inner.resident_block_hashes()
    }

    fn ingest_prefix(&mut self, tokens: &[Token]) -> IngestReport {
        self.inner.ingest_prefix(tokens)
    }

    fn cost_model(&self) -> &CostModel {
        self.inner.cost_model()
    }

    fn completed_requests(&self) -> &[RequestMetrics] {
        self.inner.completed_requests()
    }

    fn set_speed_factor(&mut self, factor: f64) {
        self.inner.set_speed_factor(factor);
    }

    fn speed_factor(&self) -> f64 {
        self.inner.speed_factor()
    }

    fn begin_drain(&mut self) {
        self.inner.begin_drain();
    }

    fn is_draining(&self) -> bool {
        self.inner.is_draining()
    }

    fn take_incomplete(&mut self) -> Vec<Request> {
        self.inner.take_incomplete()
    }

    fn step_sim_stats(&self) -> StepSimStats {
        self.inner.step_sim_stats()
    }

    fn into_result(self: Box<Self>) -> SimulationResult {
        Box::new(self.inner).into_result()
    }
}
