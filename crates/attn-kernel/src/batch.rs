//! Decode batches, query activations, and the physical KV store.
//!
//! A [`DecodeBatch`] is the unit of work of every attention backend: one query
//! token per request plus the request's KV block table. For numeric
//! validation, [`KvStore`] holds actual K/V tensors per (block, kv-head) and
//! [`QueryActivations`] the per-request Q vectors; the timing path uses only
//! the shapes.

use attn_math::{HeadConfig, Matrix};
use kv_cache::{BlockId, BlockTable, PrefixForest};
use sim_core::cast::usize_to_u32;
use std::collections::HashMap;

/// KV-cache element size in bytes for fp16, the paper's evaluation dtype.
pub const FP16_BYTES: usize = 2;

/// A decode-step batch: one query per request plus its KV block table.
///
/// # Examples
///
/// ```
/// use attn_kernel::DecodeBatch;
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
///
/// let head = HeadConfig::new(32, 8, 128);
/// let tables = vec![
///     BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
///     BlockTable::new(vec![BlockId(0), BlockId(2)], 32, 16),
/// ];
/// let batch = DecodeBatch::new(head, tables, 2);
/// assert_eq!(batch.num_queries(), 2);
/// assert_eq!(batch.kv_len(0), 32);
/// ```
#[derive(Debug, Clone)]
pub struct DecodeBatch {
    head: HeadConfig,
    tables: Vec<BlockTable>,
    dtype_bytes: usize,
    /// Stable per-query identities (serving request ids), when the caller
    /// has them. Row `q` of `tables` belongs to `query_ids[q]`. Purely
    /// advisory: planning and timing never read them; the delta-planning
    /// classifier ([`crate::classify_step_delta`]) uses them to match rows
    /// across consecutive decode steps.
    query_ids: Option<Vec<u64>>,
}

impl DecodeBatch {
    /// Creates a batch.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty, block sizes are inconsistent, or
    /// `dtype_bytes` is zero.
    pub fn new(head: HeadConfig, tables: Vec<BlockTable>, dtype_bytes: usize) -> Self {
        assert!(
            !tables.is_empty(),
            "a decode batch needs at least one query"
        );
        assert!(dtype_bytes > 0, "dtype size must be positive");
        let bs = tables[0].block_size();
        assert!(
            tables.iter().all(|t| t.block_size() == bs),
            "all block tables must share one block size"
        );
        DecodeBatch {
            head,
            tables,
            dtype_bytes,
            query_ids: None,
        }
    }

    /// Attaches stable per-query identities (one per table row), enabling
    /// delta classification across decode steps.
    ///
    /// # Panics
    ///
    /// Panics if the id count disagrees with the query count.
    #[must_use]
    pub fn with_query_ids(mut self, ids: Vec<u64>) -> Self {
        assert_eq!(
            ids.len(),
            self.tables.len(),
            "one query id per block-table row"
        );
        self.query_ids = Some(ids);
        self
    }

    /// The stable per-query identities, when attached.
    pub fn query_ids(&self) -> Option<&[u64]> {
        self.query_ids.as_deref()
    }

    /// Consumes the batch, returning its block tables (allocation reuse:
    /// callers that rebuild a batch every decode step can recover the table
    /// vector instead of reallocating it).
    pub fn into_tables(self) -> Vec<BlockTable> {
        self.tables
    }

    /// Decomposes the batch into its table vector and query-id vector
    /// (empty when no ids were attached) so callers can recycle both
    /// allocations across steps.
    pub fn into_scratch(self) -> (Vec<BlockTable>, Vec<u64>) {
        (self.tables, self.query_ids.unwrap_or_default())
    }

    /// The attention head configuration.
    pub fn head(&self) -> HeadConfig {
        self.head
    }

    /// KV element size in bytes.
    pub fn dtype_bytes(&self) -> usize {
        self.dtype_bytes
    }

    /// Number of queries (requests) in the batch.
    pub fn num_queries(&self) -> usize {
        self.tables.len()
    }

    /// KV block size in tokens.
    pub fn block_size(&self) -> usize {
        self.tables[0].block_size()
    }

    /// The block tables, one row per query.
    pub fn tables(&self) -> &[BlockTable] {
        &self.tables
    }

    /// KV length in tokens of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn kv_len(&self, q: usize) -> usize {
        self.tables[q].num_tokens()
    }

    /// Total logical KV tokens across queries (counting shared blocks once
    /// per sharing query).
    pub fn total_kv_tokens(&self) -> usize {
        self.tables.iter().map(BlockTable::num_tokens).sum()
    }

    /// KV bytes of one token across one kv-head's K and V.
    pub fn kv_bytes_per_token_per_kv_head(&self) -> usize {
        2 * self.head.head_dim() * self.dtype_bytes
    }

    /// The prefix forest (tree-structure block table, Fig. 7b).
    pub fn forest(&self) -> PrefixForest {
        PrefixForest::from_block_tables(&self.tables)
    }

    /// Distinct physical KV bytes of the batch across all kv-heads — the
    /// theoretical minimum KV traffic of Fig. 6a.
    pub fn distinct_kv_bytes(&self) -> f64 {
        // Sum of per-block maxima, accumulated as each maximum is raised
        // (integer increments, so the total is independent of visit order
        // and identical to a build-a-map-then-sum formulation).
        let mut tokens = 0usize;
        crate::scratch::with_block_scratch(|seen| {
            seen.clear();
            for table in &self.tables {
                for i in 0..table.blocks().len() {
                    let t = usize_to_u32(table.tokens_in_block(i));
                    tokens += seen.raise(table.blocks()[i].0, t) as usize;
                }
            }
        });
        (tokens * self.kv_bytes_per_token_per_kv_head() * self.head.num_kv_heads()) as f64
    }
}

/// Per-request query activations: one `(num_heads × head_dim)` matrix each.
#[derive(Debug, Clone)]
pub struct QueryActivations {
    per_query: Vec<Matrix>,
    head: HeadConfig,
}

impl QueryActivations {
    /// Wraps explicit activations.
    ///
    /// # Panics
    ///
    /// Panics if any matrix's shape disagrees with `head`.
    pub fn new(head: HeadConfig, per_query: Vec<Matrix>) -> Self {
        for (q, m) in per_query.iter().enumerate() {
            assert_eq!(m.rows(), head.num_heads(), "query {q}: wrong head count");
            assert_eq!(m.cols(), head.head_dim(), "query {q}: wrong head dim");
        }
        QueryActivations { per_query, head }
    }

    /// Deterministic synthetic activations for `num_queries` requests.
    pub fn synthetic(head: HeadConfig, num_queries: usize, seed: u64) -> Self {
        let per_query = (0..num_queries)
            .map(|q| synth_matrix(head.num_heads(), head.head_dim(), seed ^ (q as u64 + 1)))
            .collect();
        QueryActivations { per_query, head }
    }

    /// The head configuration.
    pub fn head(&self) -> HeadConfig {
        self.head
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.per_query.len()
    }

    /// Whether there are no queries.
    pub fn is_empty(&self) -> bool {
        self.per_query.is_empty()
    }

    /// The Q vector of query `q`, head `h`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn q(&self, q: usize, head: usize) -> &[f32] {
        self.per_query[q].row(head)
    }
}

/// Physical K/V tensors per (block, kv-head).
#[derive(Debug, Clone)]
pub struct KvStore {
    head: HeadConfig,
    block_size: usize,
    /// block -> per-kv-head (keys, values), each `block_size × head_dim`.
    blocks: HashMap<BlockId, Vec<(Matrix, Matrix)>>,
}

impl KvStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(head: HeadConfig, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        KvStore {
            head,
            block_size,
            blocks: HashMap::new(),
        }
    }

    /// Populates a store with deterministic synthetic data for every block
    /// referenced by `batch`.
    pub fn synthetic_for(batch: &DecodeBatch, seed: u64) -> Self {
        let mut store = KvStore::new(batch.head(), batch.block_size());
        for table in batch.tables() {
            for &block in table.blocks() {
                store.ensure_block(block, seed);
            }
        }
        store
    }

    /// Inserts synthetic data for `block` if absent.
    pub fn ensure_block(&mut self, block: BlockId, seed: u64) {
        let (head, bs) = (self.head, self.block_size);
        self.blocks.entry(block).or_insert_with(|| {
            (0..head.num_kv_heads())
                .map(|kvh| {
                    let s = seed ^ (u64::from(block.0) << 20) ^ (kvh as u64 + 13);
                    (
                        synth_matrix(bs, head.head_dim(), s.wrapping_mul(3)),
                        synth_matrix(bs, head.head_dim(), s.wrapping_mul(5).wrapping_add(7)),
                    )
                })
                .collect()
        });
    }

    /// The per-kv-head `(keys, values)` pair stored for `block`, naming the
    /// missing block when a plan references KV that was never inserted.
    fn head_pair(&self, block: BlockId, kv_head: usize) -> &(Matrix, Matrix) {
        let Some(heads) = self.blocks.get(&block) else {
            panic!("{block:?} absent from KV store");
        };
        &heads[kv_head]
    }

    /// Keys of `block` for `kv_head`, rows `0..tokens`.
    ///
    /// # Panics
    ///
    /// Panics if the block is absent or indices are invalid.
    pub fn keys(&self, block: BlockId, kv_head: usize, tokens: usize) -> Matrix {
        self.head_pair(block, kv_head).0.slice_rows(0, tokens)
    }

    /// Values of `block` for `kv_head`, rows `0..tokens`.
    ///
    /// # Panics
    ///
    /// Panics if the block is absent or indices are invalid.
    pub fn values(&self, block: BlockId, kv_head: usize, tokens: usize) -> Matrix {
        self.head_pair(block, kv_head).1.slice_rows(0, tokens)
    }

    /// Number of distinct blocks stored.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Deterministic pseudo-random matrix in `[-1, 1)` (xorshift; keeps the crate
/// free of a `rand` dependency).
fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    Matrix::from_rows(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> DecodeBatch {
        let head = HeadConfig::new(16, 8, 32);
        let tables = vec![
            BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
            BlockTable::new(vec![BlockId(0), BlockId(2)], 28, 16),
        ];
        DecodeBatch::new(head, tables, FP16_BYTES)
    }

    #[test]
    fn distinct_bytes_count_shared_blocks_once() {
        let b = batch();
        // Distinct tokens: block0 = 16, block1 = 16, block2 = 12 -> 44.
        let per_token = 2 * 32 * 2; // K+V * dim * fp16
        assert_eq!(b.distinct_kv_bytes(), (44 * per_token * 8) as f64);
    }

    #[test]
    fn total_tokens_count_shared_blocks_per_query() {
        assert_eq!(batch().total_kv_tokens(), 60);
    }

    #[test]
    fn synthetic_store_covers_all_blocks() {
        let b = batch();
        let store = KvStore::synthetic_for(&b, 42);
        assert_eq!(store.num_blocks(), 3);
        let k = store.keys(BlockId(2), 3, 12);
        assert_eq!(k.rows(), 12);
        assert_eq!(k.cols(), 32);
    }

    #[test]
    fn synthetic_store_is_deterministic() {
        let b = batch();
        let s1 = KvStore::synthetic_for(&b, 42);
        let s2 = KvStore::synthetic_for(&b, 42);
        assert_eq!(s1.keys(BlockId(0), 0, 16), s2.keys(BlockId(0), 0, 16));
        let s3 = KvStore::synthetic_for(&b, 43);
        assert_ne!(s1.keys(BlockId(0), 0, 16), s3.keys(BlockId(0), 0, 16));
    }

    #[test]
    fn activations_expose_per_head_rows() {
        let head = HeadConfig::new(16, 8, 32);
        let acts = QueryActivations::synthetic(head, 2, 7);
        assert_eq!(acts.len(), 2);
        assert_eq!(acts.q(1, 15).len(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_batch_rejected() {
        let head = HeadConfig::new(16, 8, 32);
        let _ = DecodeBatch::new(head, vec![], 2);
    }
}
