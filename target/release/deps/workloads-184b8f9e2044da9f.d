/root/repo/target/release/deps/workloads-184b8f9e2044da9f.d: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

/root/repo/target/release/deps/libworkloads-184b8f9e2044da9f.rlib: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

/root/repo/target/release/deps/libworkloads-184b8f9e2044da9f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrival.rs:
crates/workloads/src/io.rs:
crates/workloads/src/requests.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tenants.rs:
crates/workloads/src/traces.rs:
