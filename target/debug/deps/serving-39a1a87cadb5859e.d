/root/repo/target/debug/deps/serving-39a1a87cadb5859e.d: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libserving-39a1a87cadb5859e.rmeta: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/attention.rs:
crates/serving/src/breakdown.rs:
crates/serving/src/costs.rs:
crates/serving/src/engine.rs:
crates/serving/src/metrics.rs:
crates/serving/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
