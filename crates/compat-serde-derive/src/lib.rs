//! Derive macros for the in-workspace `serde` stub.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input token
//! stream is walked directly. Supported shapes — the ones this workspace
//! uses — are structs with named fields and enums whose variants are all
//! unit variants (serialized as their name string). Generics, tuple structs,
//! and `#[serde(...)]` attributes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum of unit variants.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` for a named-field struct or unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => return compile_error(&msg),
    };
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a named-field struct or unit enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => return compile_error(&msg),
    };
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.get(\"{f}\").unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| ::serde::Error::custom(\
                             ::std::format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         if value.as_map().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"expected map for struct {name}\")));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         let ::serde::Value::Str(s) = value else {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"expected string for enum {name}\")));\n\
                         }};\n\
                         match s.as_str() {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Parses the derive input into a [`Shape`].
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility to reach `struct`/`enum`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + [...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                return Err(format!("serde stub derive: unexpected token `{kw}`"));
            }
            other => return Err(format!("serde stub derive: unexpected token `{other}`")),
        }
    }
    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        return Err("serde stub derive: missing type name".into());
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generic type `{name}` is not supported"
            ));
        }
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err(format!(
            "serde stub derive: `{name}` has no braced body (tuple/unit types unsupported)"
        ));
    };
    if body.delimiter() != Delimiter::Brace {
        return Err(format!(
            "serde stub derive: `{name}` must have a braced body"
        ));
    }
    if is_struct {
        Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body.stream())?,
        })
    } else {
        Ok(Shape::UnitEnum {
            name,
            variants: parse_unit_variants(body.stream())?,
        })
    }
}

/// Extracts field names from `{ attrs? vis? name: Type, ... }`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments included).
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            return Err(format!(
                "serde stub derive: expected field name, found `{:?}`",
                tokens.get(i).map(ToString::to_string)
            ));
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde stub derive: expected `:` after field, found `{:?}`",
                    other.map(ToString::to_string)
                ))
            }
        }
        // Skip the type up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Extracts variant names from `{ attrs? Name, ... }`, rejecting payloads.
fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(variant)) = tokens.get(i) else {
            return Err("serde stub derive: expected enum variant name".into());
        };
        variants.push(variant.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "serde stub derive: only unit enum variants are supported, found `{other}`"
                ))
            }
        }
    }
    Ok(variants)
}
