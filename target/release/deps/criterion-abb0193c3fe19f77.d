/root/repo/target/release/deps/criterion-abb0193c3fe19f77.d: crates/compat-criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-abb0193c3fe19f77.rlib: crates/compat-criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-abb0193c3fe19f77.rmeta: crates/compat-criterion/src/lib.rs

crates/compat-criterion/src/lib.rs:
