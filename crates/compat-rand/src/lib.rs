//! Minimal in-workspace stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range`/`gen_bool` over integer and float ranges — backed by
//! xoshiro256++ with a SplitMix64 seed expander. Deterministic per seed,
//! statistically solid for simulation workloads; not cryptographic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word to `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style unbiased-enough scaling of a word into `[0, span)`.
fn scale_u64(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + scale_u64(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is a sample.
                    return rng.next_u64() as $t;
                }
                start + scale_u64(rng.next_u64(), span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng::from_state([next(), next(), next(), next()])
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(300usize..1500);
            assert!((300..1500).contains(&x));
            let y = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&y));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.62)).count();
        assert!((hits as f64 / n as f64 - 0.62).abs() < 0.01);
    }
}
