//! vLLM/SGLang-style prefix-cache manager (§3.1).
//!
//! Maps content-identical logical prefixes to a single physical block via
//! chained block hashing: a block's identity is `hash(parent_hash, tokens)`.
//! Requests whose token prefixes match reuse physical blocks (refcounted); the
//! cache itself keeps a reference so recently used prefixes survive request
//! departure until evicted under memory pressure.
//!
//! Note the paper's point (§3.1): this reuse reduces *memory footprint*, not
//! *global memory accesses* — the attention kernel still re-loads shared
//! blocks per query unless it is prefix-aware.

use crate::{AllocError, BlockAllocator, BlockId, BlockTable};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Token id type used throughout the reproduction.
pub type Token = u32;

/// Cumulative prefix-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full blocks served from the cache.
    pub hit_blocks: u64,
    /// Full blocks newly allocated.
    pub miss_blocks: u64,
    /// Tokens covered by cache hits.
    pub hit_tokens: u64,
    /// Tokens newly written (misses + partial tails + decode appends).
    pub miss_tokens: u64,
    /// Blocks evicted under memory pressure.
    pub evicted_blocks: u64,
    /// Tokens made resident by KV import ([`CacheManager::ingest_prefix`])
    /// rather than computed locally. Not counted as hits or misses.
    pub imported_tokens: u64,
}

/// Outcome of one [`CacheManager::ingest_prefix`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Leading tokens now cache-resident (imported + already present).
    pub covered_tokens: usize,
    /// Tokens newly imported by this call (the bytes actually on the wire).
    pub imported_tokens: usize,
    /// Blocks newly imported by this call.
    pub imported_blocks: usize,
}

impl CacheStats {
    /// Token-level cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_tokens + self.miss_tokens;
        if total == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct CachedBlock {
    block: BlockId,
    last_use: u64,
}

/// Prefix-reusing KV cache manager.
///
/// # Examples
///
/// ```
/// use kv_cache::CacheManager;
///
/// let mut cache = CacheManager::new(1024, 16);
/// let system_prompt: Vec<u32> = (0..64).collect();
/// let t1 = cache.insert_sequence(&system_prompt)?;
/// let t2 = cache.insert_sequence(&system_prompt)?;
/// // Identical prefixes map to identical physical blocks.
/// assert_eq!(t1.blocks(), t2.blocks());
/// assert!(cache.stats().hit_rate() > 0.0);
/// # Ok::<(), kv_cache::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheManager {
    allocator: BlockAllocator,
    block_size: usize,
    // BTreeMaps, not HashMaps: eviction scans these containers, and a
    // deterministic iteration order makes LRU ties (and thus the whole
    // simulation) reproducible run-to-run (sim-lint R2).
    by_hash: BTreeMap<u64, CachedBlock>,
    hash_of_block: BTreeMap<BlockId, u64>,
    stats: CacheStats,
    clock: u64,
}

impl CacheManager {
    /// Creates a manager over a pool of `capacity_blocks` blocks of
    /// `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(capacity_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        CacheManager {
            allocator: BlockAllocator::new(capacity_blocks),
            block_size,
            by_hash: BTreeMap::new(),
            hash_of_block: BTreeMap::new(),
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The block size in tokens.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The underlying allocator (for capacity queries).
    pub fn allocator(&self) -> &BlockAllocator {
        &self.allocator
    }

    /// Cached blocks held only by the cache itself (evictable on demand).
    pub fn evictable_blocks(&self) -> usize {
        self.by_hash
            .values()
            .filter(|c| self.allocator.refcount(c.block) == 1)
            .count()
    }

    /// Blocks obtainable right now: free plus evictable.
    pub fn available_blocks(&self) -> usize {
        self.allocator.free_blocks() + self.evictable_blocks()
    }

    /// Read-only probe: how many leading tokens of `tokens` would be served
    /// from the cache if the sequence were inserted right now.
    ///
    /// Walks the chain hashes of full blocks without bumping recency or
    /// statistics, so routers can repeatedly probe live replica caches
    /// without perturbing LRU eviction order.
    pub fn prefix_overlap_tokens(&self, tokens: &[Token]) -> usize {
        let mut parent_hash = 0u64;
        let mut matched = 0usize;
        for chunk in tokens.chunks_exact(self.block_size) {
            let h = Self::chain_hash(parent_hash, chunk);
            if !self.by_hash.contains_key(&h) {
                break;
            }
            matched += self.block_size;
            parent_hash = h;
        }
        matched
    }

    /// Export-side probe: the physical blocks a donor would stream for the
    /// cache-resident prefix of `tokens`, in prefix order. Like
    /// [`CacheManager::prefix_overlap_tokens`] this is read-only — recency,
    /// refcounts and statistics are untouched.
    pub fn resident_prefix_blocks(&self, tokens: &[Token]) -> Vec<BlockId> {
        let mut parent_hash = 0u64;
        let mut blocks = Vec::new();
        for chunk in tokens.chunks_exact(self.block_size) {
            let h = Self::chain_hash(parent_hash, chunk);
            let Some(cached) = self.by_hash.get(&h) else {
                break;
            };
            blocks.push(cached.block);
            parent_hash = h;
        }
        blocks
    }

    /// Import side of KV migration: makes the full-block prefix of `tokens`
    /// cache-resident *without* computing it, as if the blocks' contents had
    /// arrived over the wire from a donor replica.
    ///
    /// Already-resident blocks are refreshed, not re-imported, so a block is
    /// never both migrated and recomputed. Newly imported blocks are held by
    /// the cache alone (evictable under pressure, like any warm prefix).
    /// Allocation failure stops the import at the longest prefix that fit;
    /// the report says how far it got. Hit/miss statistics are *not* touched
    /// — imported tokens are accounted separately so prefill-discount
    /// accounting stays honest.
    pub fn ingest_prefix(&mut self, tokens: &[Token]) -> IngestReport {
        let mut report = IngestReport::default();
        let mut parent_hash = 0u64;
        for chunk in tokens.chunks_exact(self.block_size) {
            let h = Self::chain_hash(parent_hash, chunk);
            self.clock += 1;
            if let Some(cached) = self.by_hash.get_mut(&h) {
                cached.last_use = self.clock;
            } else {
                let Ok(block) = self.allocate_with_eviction() else {
                    break;
                };
                self.by_hash.insert(
                    h,
                    CachedBlock {
                        block,
                        last_use: self.clock,
                    },
                );
                self.hash_of_block.insert(block, h);
                self.stats.imported_tokens += self.block_size as u64;
                report.imported_tokens += self.block_size;
                report.imported_blocks += 1;
            }
            report.covered_tokens += self.block_size;
            parent_hash = h;
        }
        report
    }

    /// Chain hashes of every cache-resident shareable block, in ascending
    /// hash order (deterministic). Two replicas holding the same hash store
    /// the same KV content twice — the basis of the cluster's cross-replica
    /// duplication metric.
    pub fn resident_hashes(&self) -> impl Iterator<Item = u64> + '_ {
        self.by_hash.keys().copied()
    }

    /// Admits a full sequence (a request's prompt), reusing cached prefix
    /// blocks where token content matches.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfBlocks`] if allocation fails even after
    /// evicting every unreferenced cached block.
    pub fn insert_sequence(&mut self, tokens: &[Token]) -> Result<BlockTable, AllocError> {
        let mut table = BlockTable::empty(self.block_size);
        let mut parent_hash = 0u64;
        let mut consumed = 0;
        while consumed < tokens.len() {
            let take = (tokens.len() - consumed).min(self.block_size);
            let chunk = &tokens[consumed..consumed + take];
            if take == self.block_size {
                let h = Self::chain_hash(parent_hash, chunk);
                self.clock += 1;
                if let Some(cached) = self.by_hash.get_mut(&h) {
                    cached.last_use = self.clock;
                    let block = cached.block;
                    self.allocator.retain(block)?;
                    table.push_block(block, take);
                    self.stats.hit_blocks += 1;
                    self.stats.hit_tokens += take as u64;
                } else {
                    let block = self.allocate_with_eviction()?;
                    self.by_hash.insert(
                        h,
                        CachedBlock {
                            block,
                            last_use: self.clock,
                        },
                    );
                    self.hash_of_block.insert(block, h);
                    // The cache holds one reference; the request another.
                    self.allocator.retain(block)?;
                    table.push_block(block, take);
                    self.stats.miss_blocks += 1;
                    self.stats.miss_tokens += take as u64;
                }
                parent_hash = h;
            } else {
                // Partial tail: never shared.
                let block = self.allocate_with_eviction()?;
                table.push_block(block, take);
                self.stats.miss_tokens += take as u64;
            }
            consumed += take;
        }
        Ok(table)
    }

    /// Appends one decode token to a request's table, allocating a fresh
    /// block when the last block is full. Decode-time blocks are not shared.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfBlocks`] on pool exhaustion.
    pub fn append_token(&mut self, table: &mut BlockTable) -> Result<(), AllocError> {
        self.stats.miss_tokens += 1;
        if table.num_tokens() == table.blocks().len() * self.block_size {
            let block = self.allocate_with_eviction()?;
            table.push_block(block, 1);
        } else {
            table.extend_last_block(1);
        }
        Ok(())
    }

    /// Releases all blocks of a departing request.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] if the table references freed
    /// blocks (a caller bug).
    pub fn free_sequence(&mut self, table: &BlockTable) -> Result<(), AllocError> {
        for &block in table.blocks() {
            self.allocator.release(block)?;
            // If only the cache's own reference remains, the block stays
            // resident for future reuse until evicted.
            if self.allocator.refcount(block) == 0 {
                // Block was not cache-owned (partial/decode block): gone.
                self.hash_of_block.remove(&block);
            }
        }
        Ok(())
    }

    fn allocate_with_eviction(&mut self) -> Result<BlockId, AllocError> {
        loop {
            match self.allocator.allocate() {
                Ok(block) => return Ok(block),
                Err(AllocError::OutOfBlocks) => {
                    if !self.evict_one() {
                        return Err(AllocError::OutOfBlocks);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Evicts the least-recently-used cached block that only the cache still
    /// references. Returns false if none is evictable. Recency ties (never
    /// produced by the `clock` today, but cheap to guarantee against) break
    /// toward the smallest chain hash, deterministically.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .by_hash
            .iter()
            .filter(|(_, c)| self.allocator.refcount(c.block) == 1)
            .min_by_key(|(_, c)| c.last_use)
            .map(|(&h, c)| (h, c.block));
        let Some((hash, block)) = victim else {
            return false;
        };
        self.by_hash.remove(&hash);
        self.hash_of_block.remove(&block);
        self.allocator
            .release(block)
            .expect("cache-owned reference exists");
        self.stats.evicted_blocks += 1;
        true
    }

    fn chain_hash(parent: u64, chunk: &[Token]) -> u64 {
        let mut h = DefaultHasher::new();
        parent.hash(&mut h);
        chunk.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_prefixes_share_blocks() {
        let mut cache = CacheManager::new(64, 16);
        let tokens: Vec<Token> = (0..48).collect();
        let a = cache.insert_sequence(&tokens).unwrap();
        let b = cache.insert_sequence(&tokens).unwrap();
        assert_eq!(a.blocks(), b.blocks());
        assert_eq!(cache.stats().hit_blocks, 3);
        // Physical usage: 3 blocks, not 6.
        assert_eq!(cache.allocator().used_blocks(), 3);
    }

    #[test]
    fn diverging_suffixes_split() {
        let mut cache = CacheManager::new(64, 16);
        let mut a_tokens: Vec<Token> = (0..32).collect();
        let mut b_tokens = a_tokens.clone();
        a_tokens.extend(100..116);
        b_tokens.extend(200..216);
        let a = cache.insert_sequence(&a_tokens).unwrap();
        let b = cache.insert_sequence(&b_tokens).unwrap();
        assert_eq!(a.blocks()[..2], b.blocks()[..2]);
        assert_ne!(a.blocks()[2], b.blocks()[2]);
    }

    #[test]
    fn partial_tails_are_private() {
        let mut cache = CacheManager::new(64, 16);
        let tokens: Vec<Token> = (0..20).collect();
        let a = cache.insert_sequence(&tokens).unwrap();
        let b = cache.insert_sequence(&tokens).unwrap();
        assert_eq!(a.blocks()[0], b.blocks()[0]);
        assert_ne!(a.blocks()[1], b.blocks()[1]);
    }

    #[test]
    fn decode_appends_fill_then_allocate() {
        let mut cache = CacheManager::new(64, 16);
        let mut table = cache.insert_sequence(&(0..16).collect::<Vec<_>>()).unwrap();
        assert_eq!(table.blocks().len(), 1);
        for _ in 0..16 {
            cache.append_token(&mut table).unwrap();
        }
        assert_eq!(table.blocks().len(), 2);
        assert_eq!(table.num_tokens(), 32);
        cache.append_token(&mut table).unwrap();
        assert_eq!(table.blocks().len(), 3);
    }

    #[test]
    fn cached_prefix_survives_request_departure() {
        let mut cache = CacheManager::new(64, 16);
        let tokens: Vec<Token> = (0..32).collect();
        let a = cache.insert_sequence(&tokens).unwrap();
        cache.free_sequence(&a).unwrap();
        let b = cache.insert_sequence(&tokens).unwrap();
        assert_eq!(cache.stats().hit_blocks, 2, "prefix reused after departure");
        cache.free_sequence(&b).unwrap();
    }

    #[test]
    fn eviction_frees_space_under_pressure() {
        let mut cache = CacheManager::new(4, 16);
        let a = cache.insert_sequence(&(0..32).collect::<Vec<_>>()).unwrap();
        cache.free_sequence(&a).unwrap();
        // Pool: 2 cached blocks; asking for 4 new ones forces eviction.
        let b = cache
            .insert_sequence(&(100..164).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(b.blocks().len(), 4);
        assert!(cache.stats().evicted_blocks >= 2);
    }

    #[test]
    fn exhaustion_without_evictable_blocks_errors() {
        let mut cache = CacheManager::new(2, 16);
        let _held = cache.insert_sequence(&(0..32).collect::<Vec<_>>()).unwrap();
        let err = cache
            .insert_sequence(&(100..132).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(err, AllocError::OutOfBlocks);
    }

    #[test]
    fn available_counts_free_plus_evictable() {
        let mut cache = CacheManager::new(8, 16);
        let a = cache.insert_sequence(&(0..32).collect::<Vec<_>>()).unwrap();
        assert_eq!(cache.available_blocks(), 6); // 2 held by request + cache
        cache.free_sequence(&a).unwrap();
        // Cached blocks are evictable again.
        assert_eq!(cache.evictable_blocks(), 2);
        assert_eq!(cache.available_blocks(), 8);
    }

    #[test]
    fn overlap_probe_predicts_hits_without_touching_recency() {
        let mut cache = CacheManager::new(8, 16);
        let shared: Vec<Token> = (0..32).collect();
        let held = cache.insert_sequence(&shared).unwrap();
        // Full-block prefix match, divergence after 32 tokens.
        let mut probe_tokens = shared.clone();
        probe_tokens.extend(500..520);
        assert_eq!(cache.prefix_overlap_tokens(&probe_tokens), 32);
        // Partial tail never matches; unknown prefixes don't either.
        assert_eq!(cache.prefix_overlap_tokens(&shared[..20]), 16);
        assert_eq!(
            cache.prefix_overlap_tokens(&(900..964).collect::<Vec<_>>()),
            0
        );
        // The probe is read-only: stats and recency are untouched, so the
        // probed blocks are still the LRU eviction victims.
        let stats_before = cache.stats();
        for _ in 0..100 {
            cache.prefix_overlap_tokens(&probe_tokens);
        }
        assert_eq!(cache.stats(), stats_before);
        cache.free_sequence(&held).unwrap();
        let newer = cache
            .insert_sequence(&(100..132).collect::<Vec<_>>())
            .unwrap();
        cache.prefix_overlap_tokens(&shared); // must not refresh `shared`
                                              // 6 fresh blocks against 4 free ones: forces two LRU evictions.
        let _fill = cache
            .insert_sequence(&(200..296).collect::<Vec<_>>())
            .unwrap();
        // `shared`'s two blocks were oldest and got evicted despite probes.
        assert_eq!(cache.prefix_overlap_tokens(&shared), 0);
        assert_eq!(
            cache.prefix_overlap_tokens(&(100..132).collect::<Vec<_>>()),
            32
        );
        cache.free_sequence(&newer).unwrap();
    }

    #[test]
    fn resident_hashes_enumerate_shareable_blocks() {
        let mut cache = CacheManager::new(64, 16);
        let table = cache.insert_sequence(&(0..40).collect::<Vec<_>>()).unwrap();
        // Two full blocks are shareable; the 8-token tail is private.
        assert_eq!(cache.resident_hashes().count(), 2);
        let mut other = CacheManager::new(64, 16);
        other.insert_sequence(&(0..40).collect::<Vec<_>>()).unwrap();
        let mine: std::collections::HashSet<u64> = cache.resident_hashes().collect();
        assert!(
            other.resident_hashes().all(|h| mine.contains(&h)),
            "content-addressed"
        );
        cache.free_sequence(&table).unwrap();
    }

    /// R2 regression: two identically driven managers must evict the same
    /// blocks and end with identical resident sets and stats — eviction
    /// order may not depend on container iteration order.
    #[test]
    fn eviction_is_deterministic_across_runs() {
        let drive = || {
            let mut cache = CacheManager::new(12, 16);
            let mut tables = Vec::new();
            for i in 0..6u32 {
                let t = cache
                    .insert_sequence(&(i * 100..i * 100 + 32).collect::<Vec<_>>())
                    .unwrap();
                tables.push(t);
            }
            for t in &tables {
                cache.free_sequence(t).unwrap();
            }
            // Everything is now evictable; re-inserting forces LRU churn.
            for i in 10..16u32 {
                cache
                    .insert_sequence(&(i * 100..i * 100 + 32).collect::<Vec<_>>())
                    .unwrap();
            }
            (
                cache.stats(),
                cache.resident_hashes().collect::<Vec<u64>>(),
                cache.evictable_blocks(),
            )
        };
        let a = drive();
        let b = drive();
        assert_eq!(a, b, "identical drive must produce identical cache state");
        // resident_hashes is ascending, so any reordering is a bug.
        let mut sorted = a.1.clone();
        sorted.sort_unstable();
        assert_eq!(a.1, sorted, "resident hashes enumerate in sorted order");
    }

    #[test]
    fn ingest_makes_prefix_resident_without_hit_miss_accounting() {
        let mut cache = CacheManager::new(64, 16);
        let tokens: Vec<Token> = (0..40).collect();
        let report = cache.ingest_prefix(&tokens);
        // Only the two full blocks are importable; the 8-token tail is not.
        assert_eq!(report.covered_tokens, 32);
        assert_eq!(report.imported_tokens, 32);
        assert_eq!(report.imported_blocks, 2);
        assert_eq!(cache.stats().hit_blocks + cache.stats().miss_blocks, 0);
        assert_eq!(cache.stats().imported_tokens, 32);
        // A subsequent insert hits the imported prefix like any warm one.
        let table = cache.insert_sequence(&tokens).unwrap();
        assert_eq!(cache.stats().hit_blocks, 2);
        cache.free_sequence(&table).unwrap();
    }

    #[test]
    fn ingest_is_idempotent_and_never_double_imports() {
        let mut cache = CacheManager::new(64, 16);
        let tokens: Vec<Token> = (0..64).collect();
        let warm = cache.insert_sequence(&tokens[..32]).unwrap();
        let report = cache.ingest_prefix(&tokens);
        // The two locally computed blocks are covered, not re-imported.
        assert_eq!(report.covered_tokens, 64);
        assert_eq!(report.imported_tokens, 32);
        let again = cache.ingest_prefix(&tokens);
        assert_eq!(again.imported_tokens, 0, "re-ingest imports nothing");
        assert_eq!(again.covered_tokens, 64);
        cache.free_sequence(&warm).unwrap();
    }

    #[test]
    fn ingest_stops_at_longest_prefix_that_fits() {
        let mut cache = CacheManager::new(2, 16);
        let _held = cache
            .insert_sequence(&(1000..1032).collect::<Vec<_>>())
            .unwrap();
        let report = cache.ingest_prefix(&(0..64).collect::<Vec<_>>());
        assert_eq!(report.imported_tokens, 0, "pool full, nothing evictable");
        assert_eq!(report.covered_tokens, 0);
    }

    #[test]
    fn ingested_blocks_are_evictable() {
        let mut cache = CacheManager::new(8, 16);
        cache.ingest_prefix(&(0..64).collect::<Vec<_>>());
        assert_eq!(cache.evictable_blocks(), 4);
        // Pressure evicts imported blocks like any cached prefix.
        let t = cache
            .insert_sequence(&(500..628).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(t.blocks().len(), 8);
        assert!(cache.stats().evicted_blocks >= 4);
    }

    #[test]
    fn resident_prefix_blocks_enumerates_the_donor_payload() {
        let mut cache = CacheManager::new(64, 16);
        let tokens: Vec<Token> = (0..48).collect();
        let table = cache.insert_sequence(&tokens).unwrap();
        let exported = cache.resident_prefix_blocks(&tokens);
        assert_eq!(exported, table.blocks().to_vec());
        // Divergent probe exports only the matching prefix.
        let mut other: Vec<Token> = tokens[..16].to_vec();
        other.extend(900..932);
        assert_eq!(cache.resident_prefix_blocks(&other), table.blocks()[..1]);
        assert!(cache
            .resident_prefix_blocks(&(700..732).collect::<Vec<_>>())
            .is_empty());
        cache.free_sequence(&table).unwrap();
    }

    #[test]
    fn hit_rate_reflects_sharing() {
        let mut cache = CacheManager::new(1024, 16);
        let shared: Vec<Token> = (0..64).collect();
        for i in 0..10u32 {
            let mut t = shared.clone();
            t.extend(1000 + i * 100..1000 + i * 100 + 64);
            cache.insert_sequence(&t).unwrap();
        }
        // 9 of 10 requests hit the 64-token shared prefix: 576 of 1280 tokens.
        assert!((cache.stats().hit_rate() - 0.45).abs() < 1e-9);
    }
}
