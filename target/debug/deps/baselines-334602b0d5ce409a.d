/root/repo/target/debug/deps/baselines-334602b0d5ce409a.d: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

/root/repo/target/debug/deps/baselines-334602b0d5ce409a: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cascade.rs:
crates/baselines/src/common.rs:
crates/baselines/src/deft.rs:
crates/baselines/src/fasttree.rs:
crates/baselines/src/flash.rs:
crates/baselines/src/relay.rs:
