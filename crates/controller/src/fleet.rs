//! The fleet controller: a deterministic control plane over a set of
//! serving-engine replicas.
//!
//! Wraps the same steppable [`ReplicaModel`] replicas as
//! [`cluster::Cluster`], but adds the operational layer a real deployment
//! needs: injected faults ([`crate::FaultPlan`]), a periodic health checker
//! that distinguishes a replica's *actual* state from what the control plane
//! has *observed*, failover that tears incomplete requests off a crashed
//! replica and replays them elsewhere (paying the cold-prefix recompute
//! cost), an SLO-aware autoscaler with graceful drain, and admission
//! control that queues or sheds load at saturation.
//!
//! Everything runs on the shared [`sim_core`] spine: virtual time is
//! integer nanoseconds ([`SimTime`]), and the run is driven by a single
//! [`EventQueue`] holding arrivals, faults, restarts, speed restorations,
//! and health ticks. Idle stretches are skipped outright — the loop jumps
//! from event to event instead of polling a grid — and simultaneous events
//! resolve in a fixed order (faults, then restarts, then the tick, then
//! arrivals; same-kind ties in push order), so a run is a pure function of
//! `(config, router, fault plan, trace)` down to the bit.

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::metrics::{ControlEvent, ControlResult, TimelineEvent};
use cluster::{kv_block_bytes, ReplicaRole, ReplicaState, ReplicaView, Router};
use kv_transfer::{FleetTopology, TransferKind, TransferPlane};
use pat_core::LazyPat;
use replica_fidelity::{fidelity_from_env, new_replica, Fidelity, ReplicaModel};
use serving::{AggregateMetrics, RequestMetrics, ServingAttention, ServingConfig, StepOutcome};
use sim_core::{par, EventQueue, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use workloads::Request;

/// High bit of the request-id space, reserved for the shadow prefill
/// requests a disaggregated controller mints internally (one per original
/// request). Shadow records never leak into [`ControlResult`].
const SHADOW_BIT: u64 = 1 << 63;

fn is_shadow(id: u64) -> bool {
    id & SHADOW_BIT != 0
}

fn public_id(id: u64) -> u64 {
    id & !SHADOW_BIT
}

/// Prefill/decode split of a disaggregated fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisaggConfig {
    /// The first `prefill_replicas` replicas are prefill-only; the rest of
    /// the initial fleet is decode-only. Autoscaled replicas join as
    /// decode-only (decode is the capacity-bound phase).
    pub prefill_replicas: usize,
}

/// KV movement policy of a fleet: the link topology plus which movements
/// the controller is allowed to make on it.
#[derive(Debug, Clone)]
pub struct TransferConfig {
    /// Link model between every replica pair.
    pub topology: FleetTopology,
    /// Warm-prefix migration on failover: stream the best donor's
    /// overlapping prefix blocks to the failover target instead of
    /// recomputing them — unless the cost model says recompute wins.
    pub migration: bool,
    /// Donor gain (tokens beyond what the target already holds) below which
    /// migration is not attempted.
    pub min_migration_tokens: usize,
    /// On revive/scale-up, push the backlog's hottest warm prefix to the
    /// cold replica before traffic lands on it.
    pub prewarm_on_revive: bool,
    /// How many backlog requests the prewarm donor scan considers.
    pub prewarm_candidates: usize,
    /// Prefill/decode disaggregation; `None` keeps the fleet unified.
    pub disaggregation: Option<DisaggConfig>,
}

impl TransferConfig {
    /// Warm-prefix migration (failover + revive prewarm) over `topology`,
    /// unified fleet.
    pub fn migration(topology: FleetTopology) -> Self {
        TransferConfig {
            topology,
            migration: true,
            min_migration_tokens: 32,
            prewarm_on_revive: true,
            prewarm_candidates: 8,
            disaggregation: None,
        }
    }

    /// Disaggregated serving over `topology`: the first `prefill_replicas`
    /// replicas prefill and stream KV, the rest decode. Migration stays off
    /// so the handoff effect can be measured alone; enable it with the
    /// field.
    pub fn disaggregated(topology: FleetTopology, prefill_replicas: usize) -> Self {
        TransferConfig {
            topology,
            migration: false,
            min_migration_tokens: 32,
            prewarm_on_revive: false,
            prewarm_candidates: 8,
            disaggregation: Some(DisaggConfig { prefill_replicas }),
        }
    }
}

/// SLO-aware autoscaling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Never drain below this many routable replicas.
    pub min_replicas: usize,
    /// Never grow beyond this many live + provisioning replicas.
    pub max_replicas: usize,
    /// Scale up when mean outstanding per routable replica (counting the
    /// controller's own backlog) exceeds this.
    pub scale_up_outstanding: f64,
    /// Scale down when mean outstanding falls below this.
    pub scale_down_outstanding: f64,
    /// Rolling window (completions) for the TTFT scale-up signal.
    pub ttft_window: usize,
    /// Seconds between a scale-up decision and the new replica serving.
    pub provision_delay_s: f64,
    /// Minimum seconds between scaling decisions.
    pub cooldown_s: f64,
}

impl AutoscalerConfig {
    /// A policy bounded to `[min_replicas, max_replicas]` with default
    /// thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min_replicas <= max_replicas`.
    pub fn new(min_replicas: usize, max_replicas: usize) -> Self {
        assert!(
            (1..=max_replicas).contains(&min_replicas),
            "need 1 <= min_replicas <= max_replicas"
        );
        AutoscalerConfig {
            min_replicas,
            max_replicas,
            scale_up_outstanding: 32.0,
            scale_down_outstanding: 4.0,
            ttft_window: 64,
            provision_delay_s: 2.0,
            cooldown_s: 5.0,
        }
    }
}

/// Load-adaptive per-replica fidelity: hot replicas simulate exactly, cold
/// ones analytically.
///
/// At every control tick, each healthy replica whose outstanding work is at
/// least `hot_outstanding` is switched to the `hot` fidelity, and each one
/// below it to `cold`. A switch is a *cold handoff*: the replica's
/// incomplete requests are torn off (exactly as in failover) and
/// resubmitted to the fresh model, and its KV warmth is lost — which is why
/// the policy is sound for throughput/latency aggregates but should be left
/// off when studying per-request cache warmth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FidelityPolicy {
    /// Fidelity for replicas at or above the outstanding threshold.
    pub hot: Fidelity,
    /// Fidelity for replicas below the threshold.
    pub cold: Fidelity,
    /// Outstanding-request threshold splitting hot from cold.
    pub hot_outstanding: usize,
}

impl FidelityPolicy {
    /// The canonical mix: busy replicas exact, idle-ish replicas
    /// analytical, split at 8 outstanding requests.
    pub fn hot_exact_cold_analytical() -> Self {
        FidelityPolicy {
            hot: Fidelity::Exact,
            cold: Fidelity::Analytical,
            hot_outstanding: 8,
        }
    }
}

/// Admission-control policy: queue at saturation, shed past the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Saturation threshold: admit directly while fleet outstanding stays
    /// below `max_outstanding_per_replica * routable_replicas`.
    pub max_outstanding_per_replica: usize,
    /// Controller-side buffer; arrivals beyond it are shed.
    pub max_queued: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_outstanding_per_replica: 64,
            max_queued: 256,
        }
    }
}

/// Full configuration of a controlled fleet.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Per-replica engine configuration.
    pub engine: ServingConfig,
    /// Replicas at t = 0.
    pub initial_replicas: usize,
    /// Health-check / control-loop period, seconds. Crash detection
    /// latency is at most one tick.
    pub tick_s: f64,
    /// Whether the control plane observes replica state at all. Off, the
    /// fleet is flown blind: routers keep addressing crashed replicas.
    pub health_checks: bool,
    /// Whether incomplete work on a crashed replica is replayed elsewhere.
    /// Off, that work is simply lost.
    pub failover: bool,
    /// TTFT service-level objective, ms; goodput counts completions within
    /// it, measured from original arrival.
    pub slo_ttft_ms: f64,
    /// Autoscaling policy; `None` pins the fleet at `initial_replicas`.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Admission policy; `None` admits everything immediately.
    pub admission: Option<AdmissionConfig>,
    /// KV movement plane; `None` means warm KV is never moved (every
    /// failover pays full recompute, no disaggregation).
    pub transfer: Option<TransferConfig>,
    /// Fidelity every replica starts at (and crashed/scaled-up replicas
    /// rejoin at, absent a policy). `managed` and `static_fleet` default it
    /// from `PAT_REPLICA_FIDELITY` (exact when unset).
    pub fidelity: Fidelity,
    /// Load-adaptive per-replica fidelity switching; `None` keeps every
    /// replica at `fidelity` for the whole run.
    pub fidelity_policy: Option<FidelityPolicy>,
}

impl ControllerConfig {
    /// A managed fleet: health checks and failover on, no autoscaler or
    /// admission control (add them by setting the fields).
    ///
    /// # Panics
    ///
    /// Panics if `initial_replicas` is zero.
    pub fn managed(initial_replicas: usize, engine: ServingConfig) -> Self {
        assert!(initial_replicas > 0, "a fleet needs at least one replica");
        ControllerConfig {
            engine,
            initial_replicas,
            tick_s: 0.5,
            health_checks: true,
            failover: true,
            slo_ttft_ms: 500.0,
            autoscaler: None,
            admission: None,
            transfer: None,
            fidelity: fidelity_from_env(),
            fidelity_policy: None,
        }
    }

    /// An unmanaged fleet of fixed size: no health checks, no failover, no
    /// autoscaling, no admission control. Requests routed to a crashed
    /// replica wait for its restart (or are lost if it never returns); work
    /// in flight at a crash is lost outright. The baseline the control
    /// plane is judged against.
    pub fn static_fleet(initial_replicas: usize, engine: ServingConfig) -> Self {
        ControllerConfig {
            health_checks: false,
            failover: false,
            ..ControllerConfig::managed(initial_replicas, engine)
        }
    }
}

/// One replica slot: the replica model (which owns its attention backend,
/// when its fidelity has one) and the split between ground truth (`actual`)
/// and the control plane's belief (`observed`). Routing always uses
/// `observed`; faults mutate `actual`.
struct Replica {
    model: Box<dyn ReplicaModel>,
    actual: ReplicaState,
    observed: ReplicaState,
    /// Serving role (always `Unified` outside disaggregated mode).
    role: ReplicaRole,
    /// When a crashed (or still-provisioning) replica comes up.
    restart_at: Option<SimTime>,
    /// When a straggler's speed factor resets to 1.0.
    restore_speed_at: Option<SimTime>,
    /// Requests routed here while the replica was actually down: the
    /// control plane hasn't noticed, so from its view they are "in
    /// flight"; they surface at detection (failover) or restart (replay).
    limbo: Vec<Request>,
    /// Cursor into `model.completed_requests()` for incremental
    /// observation of completions.
    completed_seen: usize,
    /// Per-request records of previous incarnations (pre-crash engines and
    /// pre-switch fidelities).
    archived: Vec<RequestMetrics>,
    archived_preemptions: u64,
}

impl Replica {
    fn fresh(
        fidelity: Fidelity,
        engine_cfg: &ServingConfig,
        backend: Box<dyn ServingAttention>,
    ) -> Self {
        Replica {
            model: new_replica(fidelity, engine_cfg, backend),
            actual: ReplicaState::Healthy,
            observed: ReplicaState::Healthy,
            role: ReplicaRole::Unified,
            restart_at: None,
            restore_speed_at: None,
            limbo: Vec::new(),
            completed_seen: 0,
            archived: Vec::new(),
            archived_preemptions: 0,
        }
    }

    fn provisioning(
        fidelity: Fidelity,
        engine_cfg: &ServingConfig,
        backend: Box<dyn ServingAttention>,
        ready: SimTime,
    ) -> Self {
        let mut r = Replica::fresh(fidelity, engine_cfg, backend);
        r.actual = ReplicaState::Dead;
        r.observed = ReplicaState::Dead;
        r.restart_at = Some(ready);
        r
    }
}

/// What the control plane's event queue schedules. Restart and
/// restore-speed entries are wake-ups: the authoritative due-times live on
/// the replica (`restart_at` / `restore_speed_at`), so a superseded entry
/// pops as a harmless no-op.
enum FleetEvent {
    /// Index into the fault schedule.
    Fault(usize),
    /// A crashed or provisioning replica comes up.
    Restart,
    /// A straggler's speed factor resets.
    RestoreSpeed,
    /// Periodic health-check / control-loop tick.
    Tick,
    /// Index into the request trace.
    Arrival(usize),
    /// A KV transfer's last byte arrived (id on the transfer plane).
    TransferDone(u64),
}

/// What the controller does when an in-flight transfer completes.
enum PendingTransfer {
    /// Ingest the migrated prefix at the destination, then submit the held
    /// failover request there (`donor_overlap` = tokens streamed + already
    /// resident at decision time).
    Migration { req: Request, donor_overlap: usize },
    /// Ingest the pushed prefix at the (re)joined replica; no request held.
    Prewarm { tokens: Vec<kv_cache::Token> },
    /// Disaggregated handoff: ingest the full prompt prefix at the decode
    /// replica, then submit the original request there.
    Handoff { req: Request },
}

/// The fleet control plane. Build one per run; [`run`](FleetController::run)
/// consumes it.
pub struct FleetController {
    config: ControllerConfig,
    router: Box<dyn Router>,
    faults: FaultPlan,
    backend_factory: Box<dyn FnMut() -> Box<dyn ServingAttention>>,
}

impl std::fmt::Debug for FleetController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetController")
            .field("config", &self.config)
            .field("router", &self.router)
            .field("faults", &self.faults.events().len())
            .finish_non_exhaustive()
    }
}

impl FleetController {
    /// A controller whose replicas each get a backend from `backend`.
    pub fn new(
        config: ControllerConfig,
        router: Box<dyn Router>,
        faults: FaultPlan,
        backend: impl FnMut() -> Box<dyn ServingAttention> + 'static,
    ) -> Self {
        assert!(
            config.initial_replicas > 0,
            "a fleet needs at least one replica"
        );
        assert!(config.tick_s > 0.0, "tick period must be positive");
        FleetController {
            config,
            router,
            faults,
            backend_factory: Box::new(backend),
        }
    }

    /// A controller over PAT ([`LazyPat`]) replicas with the tile policy
    /// selected by `PAT_TILE_POLICY` (heuristic when unset) — the common
    /// case.
    pub fn with_lazy_pat(
        config: ControllerConfig,
        router: Box<dyn Router>,
        faults: FaultPlan,
    ) -> Self {
        FleetController::new(config, router, faults, || Box::new(LazyPat::from_env()))
    }

    /// Serves `requests` (sorted by arrival, unique ids) under the fault
    /// plan and returns the full accounting.
    ///
    /// # Panics
    ///
    /// Panics if requests are unsorted or ids repeat, or if the router
    /// picks a non-routable replica.
    pub fn run(self, requests: &[Request]) -> ControlResult {
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s),
            "requests must be sorted by arrival"
        );
        let FleetController {
            config,
            router,
            faults,
            mut backend_factory,
        } = self;
        let mut replicas: Vec<Replica> = (0..config.initial_replicas)
            .map(|_| Replica::fresh(config.fidelity, &config.engine, backend_factory()))
            .collect();
        if let Some(disagg) = config.transfer.as_ref().and_then(|t| t.disaggregation) {
            assert!(
                (1..config.initial_replicas).contains(&disagg.prefill_replicas),
                "disaggregation needs at least one prefill and one decode replica"
            );
            assert!(
                config.health_checks && config.failover,
                "disaggregation requires a managed fleet (health checks + failover)"
            );
            for (i, r) in replicas.iter_mut().enumerate() {
                r.role = if i < disagg.prefill_replicas {
                    ReplicaRole::Prefill
                } else {
                    ReplicaRole::Decode
                };
            }
        }
        let origin: BTreeMap<u64, SimTime> = requests
            .iter()
            .map(|r| (r.id, SimTime::from_secs_f64(r.arrival_s)))
            .collect();
        assert_eq!(origin.len(), requests.len(), "request ids must be unique");
        assert!(
            requests.iter().all(|r| !is_shadow(r.id)),
            "request ids must not use the reserved shadow bit"
        );
        let plane = config
            .transfer
            .as_ref()
            .map(|t| TransferPlane::new(t.topology.clone()));
        let sim = Sim {
            peak_replicas: config.initial_replicas,
            config,
            router,
            backend_factory,
            replicas,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            origin,
            submit: BTreeMap::new(),
            pending: VecDeque::new(),
            orphans: Vec::new(),
            shed_ids: Vec::new(),
            lost_ids: Vec::new(),
            events: Vec::new(),
            timeline: Vec::new(),
            ttft_window: VecDeque::new(),
            failovers: 0,
            refilled_cold: 0,
            refilled_after_partial_migration: 0,
            migrated_prefix_tokens: 0,
            migrations: 0,
            prewarm_transfers: 0,
            disagg_handoffs: 0,
            plane,
            pending_transfers: BTreeMap::new(),
            disagg_waiting: BTreeMap::new(),
            crashes: 0,
            scale_ups: 0,
            scale_downs: 0,
            cooldown_until: SimTime::ZERO,
            fidelity_switches: 0,
        };
        sim.run(requests, &faults)
    }
}

/// Live state of one controller run.
struct Sim {
    config: ControllerConfig,
    router: Box<dyn Router>,
    backend_factory: Box<dyn FnMut() -> Box<dyn ServingAttention>>,
    replicas: Vec<Replica>,
    now: SimTime,
    /// The event queue driving the run: arrivals, faults, restarts, speed
    /// restorations, and (while the fleet has work) health ticks.
    queue: EventQueue<FleetEvent>,
    /// Original arrival of every offered request.
    origin: BTreeMap<u64, SimTime>,
    /// Latest engine-submission instant per request. Completion metrics
    /// are relative to this; the delta to `origin` converts them back to
    /// user-perceived latencies.
    submit: BTreeMap<u64, SimTime>,
    /// Admission-control backpressure queue (FIFO).
    pending: VecDeque<Request>,
    /// Requests recovered from crashed replicas, awaiting re-routing.
    orphans: Vec<Request>,
    shed_ids: Vec<u64>,
    lost_ids: Vec<u64>,
    events: Vec<ControlEvent>,
    timeline: Vec<TimelineEvent>,
    /// Rolling corrected TTFTs (ms) of recent completions.
    ttft_window: VecDeque<f64>,
    failovers: usize,
    refilled_cold: u64,
    refilled_after_partial_migration: u64,
    migrated_prefix_tokens: u64,
    migrations: usize,
    prewarm_transfers: usize,
    disagg_handoffs: usize,
    /// KV movement plane (present when `config.transfer` is set).
    plane: Option<TransferPlane>,
    /// In-flight transfers by plane id, with what to do at completion.
    pending_transfers: BTreeMap<u64, PendingTransfer>,
    /// Disaggregated mode: original requests awaiting their shadow
    /// prefill's completion, by original id.
    disagg_waiting: BTreeMap<u64, Request>,
    crashes: usize,
    scale_ups: usize,
    scale_downs: usize,
    peak_replicas: usize,
    cooldown_until: SimTime,
    /// Mid-run fidelity switches performed by the fidelity policy.
    fidelity_switches: usize,
}

impl Sim {
    fn run(mut self, requests: &[Request], faults: &FaultPlan) -> ControlResult {
        // The tick grid is quantized once at ingest; clamping to >= 1 ns
        // keeps the catch-up loop below well-founded for degenerate
        // configs.
        let tick = SimDuration::from_secs_f64(self.config.tick_s).max(SimDuration::NANOSECOND);
        let mut next_tick = SimTime::ZERO + tick;
        // Time of the Tick wake-up currently sitting in the queue, if any.
        // Ticks are only armed while the fleet has work, so an idle fleet's
        // clock jumps straight to the next arrival or fault.
        let mut tick_armed: Option<SimTime> = None;
        let schedule = faults.events();
        let last_arrival = requests.last().map_or(0.0, |r| r.arrival_s);
        let horizon = SimTime::from_secs_f64(last_arrival.max(faults.last_at_s()))
            + SimDuration::from_secs_f64(self.config.engine.drain_limit_s);

        for (idx, request) in requests.iter().enumerate() {
            self.queue.push(
                SimTime::from_secs_f64(request.arrival_s),
                FleetEvent::Arrival(idx),
            );
        }
        for (i, fault) in schedule.iter().enumerate() {
            self.queue
                .push(SimTime::from_secs_f64(fault.at_s), FleetEvent::Fault(i));
        }

        while let Some((t, first)) = self.queue.pop() {
            // Batch every event scheduled for this exact instant: they are
            // processed under one `now`, in kind-priority order.
            let mut batch = vec![first];
            while let Some(event) = self.queue.pop_at(t) {
                batch.push(event);
            }
            if t > horizon {
                if self.pending_transfers.is_empty() {
                    break;
                }
                // Past the horizon only transfer completions are serviced
                // (no new transfers start), so the in-flight set shrinks
                // monotonically and the loop terminates.
                self.advance_all(t);
                self.now = t;
                for event in &batch {
                    if let FleetEvent::TransferDone(id) = event {
                        self.finish_transfer(*id);
                    }
                }
                continue;
            }
            // A tick wake-up that finds the fleet idle is dropped without
            // touching the clock — the due-time stays in `next_tick` and
            // fires at the next real event instead, exactly as if the grid
            // had never been armed.
            if !self.has_work() && batch.iter().all(|e| matches!(e, FleetEvent::Tick)) {
                continue;
            }
            self.advance_all(t);
            self.now = t;
            for event in &batch {
                if let FleetEvent::Fault(i) = event {
                    self.apply_fault(&schedule[*i]);
                }
            }
            // Restart / restore-speed dues are authoritative on the
            // replica, checked at every processed instant; the queue
            // entries merely guarantee an instant exists at each due time.
            for i in 0..self.replicas.len() {
                if self.replicas[i].restart_at.is_some_and(|x| x <= t) {
                    self.revive(i);
                }
                if self.replicas[i].restore_speed_at.is_some_and(|x| x <= t) {
                    self.restore_speed(i);
                }
            }
            for event in &batch {
                if let FleetEvent::TransferDone(id) = event {
                    self.finish_transfer(*id);
                }
            }
            if next_tick <= t {
                self.tick();
                while next_tick <= t {
                    next_tick += tick;
                }
            }
            for event in &batch {
                if let FleetEvent::Arrival(idx) = event {
                    self.offer(requests[*idx].clone());
                }
            }
            if self.has_work() && tick_armed != Some(next_tick) {
                self.queue.push(next_tick, FleetEvent::Tick);
                tick_armed = Some(next_tick);
            }
        }

        // Quiesce every live replica — concurrently; no control-plane
        // events remain — and take one last look.
        par::for_each_mut(&mut self.replicas, |_, r| {
            if r.actual != ReplicaState::Dead {
                while r.model.step() == StepOutcome::Progress {}
            }
        });
        self.observe_completions();
        // Whatever never made it out of a dead replica's limbo, or could
        // not be replayed anywhere, is explicitly lost.
        let stranded: Vec<u64> = self
            .replicas
            .iter_mut()
            .flat_map(|r| r.limbo.drain(..).map(|q| q.id))
            .collect();
        for id in stranded {
            self.lose(id);
        }
        let orphans = std::mem::take(&mut self.orphans);
        for q in orphans {
            self.lose(q.id);
        }

        self.finish(requests)
    }

    fn finish(mut self, requests: &[Request]) -> ControlResult {
        let mut all: Vec<RequestMetrics> = Vec::new();
        let mut preemptions = 0u64;
        for r in self.replicas {
            all.extend(r.archived);
            preemptions += r.archived_preemptions;
            let res = r.model.into_result();
            preemptions += res.preemptions;
            all.extend(res.per_request);
        }
        // Shadow prefills are internal bookkeeping of disaggregated mode;
        // their originals are accounted via the handoff path.
        all.retain(|m| !is_shadow(m.request_id));
        for m in &mut all {
            let submit = self.submit[&m.request_id];
            let origin = self.origin[&m.request_id];
            let delta = (submit - origin).as_ns_f64();
            m.ttft_ns += delta;
            m.completion_ns += delta;
        }
        all.sort_by_key(|m| m.request_id);
        assert!(
            all.windows(2).all(|w| w[0].request_id < w[1].request_id),
            "a request completed on two replicas"
        );
        self.shed_ids.sort_unstable();
        self.lost_ids.sort_unstable();
        let offered = requests.len();
        let (completed, shed, lost) = (all.len(), self.shed_ids.len(), self.lost_ids.len());
        assert!(
            completed + shed + lost <= offered,
            "request accounting overflow: {completed} + {shed} + {lost} > {offered}"
        );
        let slo_ns = self.config.slo_ttft_ms * 1e6;
        let within_slo = all.iter().filter(|m| m.ttft_ns <= slo_ns).count();
        let transfer_stats = self.plane.as_ref().map(|p| *p.stats()).unwrap_or_default();
        ControlResult {
            fleet: AggregateMetrics::from_requests(&all),
            per_request: all,
            offered,
            completed,
            shed,
            lost,
            unfinished: offered - completed - shed - lost,
            goodput: if offered == 0 {
                0.0
            } else {
                within_slo as f64 / offered as f64
            },
            slo_ttft_ms: self.config.slo_ttft_ms,
            failovers: self.failovers,
            refilled_prefill_tokens: self.refilled_cold + self.refilled_after_partial_migration,
            refilled_cold: self.refilled_cold,
            refilled_after_partial_migration: self.refilled_after_partial_migration,
            migrated_prefix_tokens: self.migrated_prefix_tokens,
            migrations: self.migrations,
            prewarm_transfers: self.prewarm_transfers,
            disagg_handoffs: self.disagg_handoffs,
            kv_transfers: transfer_stats.transfers,
            kv_transfer_bytes: transfer_stats.bytes,
            kv_transfer_nic_wait_ns: transfer_stats.nic_wait_ns,
            crashes: self.crashes,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            fidelity_switches: self.fidelity_switches,
            peak_replicas: self.peak_replicas,
            preemptions,
            events: self.events,
            timeline: self.timeline,
            shed_ids: self.shed_ids,
            lost_ids: self.lost_ids,
        }
    }

    // ------------------------------------------------------------- plumbing

    fn event(&mut self, what: String) {
        self.events.push(ControlEvent {
            t_s: self.now.as_secs_f64(),
            what,
        });
    }

    /// Records a structured timeline entry at the current instant.
    fn mark(&mut self, kind: &str, replica: Option<usize>) {
        self.mark_span(kind, replica, 0);
    }

    /// Records a timeline span starting now and lasting `dur_ns`
    /// (`0` = instant event).
    fn mark_span(&mut self, kind: &str, replica: Option<usize>, dur_ns: u64) {
        self.timeline.push(TimelineEvent {
            t_ns: self.now.as_ns(),
            kind: kind.to_string(),
            replica,
            dur_ns,
        });
    }

    /// Records a loss, translating a shadow prefill back to its original
    /// request (which dies with it — its KV never reached a decode replica).
    fn lose(&mut self, id: u64) {
        if is_shadow(id) {
            let orig = public_id(id);
            if self.disagg_waiting.remove(&orig).is_some() {
                self.lost_ids.push(orig);
            }
        } else {
            self.lost_ids.push(id);
        }
    }

    fn routable_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.observed.is_routable())
            .count()
    }

    /// Outstanding work the control plane can see: engine queues on
    /// routable replicas plus its own backlog.
    fn observed_load(&self) -> usize {
        let engine_load: usize = self
            .replicas
            .iter()
            .filter(|r| r.observed.is_routable())
            .map(|r| r.model.outstanding() + r.limbo.len())
            .sum();
        engine_load + self.pending.len() + self.orphans.len()
    }

    fn has_work(&self) -> bool {
        !self.pending.is_empty()
            || !self.orphans.is_empty()
            || !self.pending_transfers.is_empty()
            || !self.disagg_waiting.is_empty()
            || self.replicas.iter().any(|r| {
                !r.limbo.is_empty()
                    || r.actual == ReplicaState::Draining
                    || (r.actual != ReplicaState::Dead && r.model.outstanding() > 0)
            })
    }

    /// Advances every live, busy replica to `t`. Dead replicas hold their
    /// clocks; idle ones are skipped outright (stepping them is a no-op —
    /// their clocks jump forward on the next submission).
    ///
    /// Between control-plane events replicas share nothing, so they advance
    /// concurrently on the `sim_core::par` workers; each replica's step
    /// sequence depends only on its own state, so the fleet outcome is
    /// bit-identical at any `PAT_SIM_THREADS`.
    fn advance_all(&mut self, t: SimTime) {
        par::for_each_mut(&mut self.replicas, |_, r| {
            if r.actual == ReplicaState::Dead || r.model.outstanding() == 0 {
                return;
            }
            while r.model.clock() < t {
                if r.model.step() == StepOutcome::Idle {
                    break;
                }
            }
        });
    }

    fn note_peak(&mut self) {
        let live = self
            .replicas
            .iter()
            .filter(|r| r.actual != ReplicaState::Dead)
            .count();
        self.peak_replicas = self.peak_replicas.max(live);
    }

    // ------------------------------------------------------------- routing

    /// The role a request's next phase needs. Unified fleets place no
    /// constraint; disaggregated ones send shadow prefills to prefill
    /// replicas and everything else to decode replicas.
    fn wanted_role(&self, id: u64) -> ReplicaRole {
        match self.config.transfer.as_ref().and_then(|t| t.disaggregation) {
            Some(_) if is_shadow(id) => ReplicaRole::Prefill,
            Some(_) => ReplicaRole::Decode,
            None => ReplicaRole::Unified,
        }
    }

    /// Routes `req` among replicas the control plane believes routable for
    /// the request's role. If the chosen replica is actually down (an
    /// undetected crash), the request falls into its limbo instead of an
    /// engine queue. Returns the request when no replica of the right role
    /// is routable, so the caller can buffer or retry it.
    fn route_now(&mut self, req: Request, is_failover: bool) -> Option<Request> {
        let wanted = self.wanted_role(req.id);
        let (target, overlap) = {
            let views: Vec<ReplicaView<'_>> = self
                .replicas
                .iter()
                .map(|r| {
                    let view =
                        ReplicaView::with_state_and_role(r.model.as_ref(), r.observed, r.role);
                    if r.role.serves(wanted) {
                        view
                    } else {
                        view.masked()
                    }
                })
                .collect();
            if !views.iter().any(|v| v.state().is_routable()) {
                return Some(req);
            }
            // The check above guarantees a routable view, and every router
            // returns `Some` whenever one exists.
            let Some(target) = self.router.route(&req, &views) else {
                panic!("router returned no replica despite a routable view");
            };
            assert!(
                views[target].state().is_routable(),
                "router picked non-routable replica {target}"
            );
            let overlap = if is_failover {
                views[target].prefix_overlap_tokens(&req.prompt.to_tokens())
            } else {
                0
            };
            (target, overlap)
        };
        if self.replicas[target].actual.is_routable() {
            if is_failover {
                self.failovers += 1;
                if let Some(req) = self.try_migrate(target, overlap, req) {
                    // No donor worth migrating from (or recompute wins):
                    // the whole uncovered prompt refills cold.
                    let recompute = req.prompt.total_tokens().saturating_sub(overlap);
                    self.refilled_cold += recompute as u64;
                    self.submit_to(target, req);
                }
            } else {
                self.submit_to(target, req);
            }
        } else {
            self.replicas[target].limbo.push(req);
        }
        None
    }

    /// Routes a fresh admission: directly in a unified fleet, or via a
    /// shadow prefill on a prefill replica in a disaggregated one (the
    /// original is held until the prefill's KV is handed off). Returns the
    /// request when nothing can take it right now.
    fn dispatch(&mut self, req: Request) -> Option<Request> {
        let disagg = self
            .config
            .transfer
            .as_ref()
            .is_some_and(|t| t.disaggregation.is_some());
        if !disagg {
            return self.route_now(req, false);
        }
        let shadow = Request {
            id: req.id | SHADOW_BIT,
            arrival_s: req.arrival_s,
            prompt: req.prompt.clone(),
            decode_tokens: 1,
        };
        let origin = self.origin[&req.id];
        self.origin.insert(shadow.id, origin);
        if let Some(shadow) = self.route_now(shadow, false) {
            // No prefill replica is routable; hand the original back.
            self.origin.remove(&shadow.id);
            return Some(req);
        }
        self.disagg_waiting.insert(req.id, req);
        None
    }

    // ---------------------------------------------------------- kv movement

    /// Block size of the per-replica KV caches (uniform across the fleet).
    fn block_size(&self) -> usize {
        self.replicas[0].model.block_size()
    }

    /// Failover hook: try to stream the best donor's warm prefix to the
    /// failover target instead of recomputing it. Returns the request when
    /// migration does not apply (caller recomputes cold); `None` means the
    /// request is held until its transfer completes.
    fn try_migrate(
        &mut self,
        target: usize,
        target_overlap: usize,
        req: Request,
    ) -> Option<Request> {
        let (migration, min_gain) = match self.config.transfer.as_ref() {
            Some(t) => (t.migration, t.min_migration_tokens.max(1)),
            None => return Some(req),
        };
        if !migration {
            return Some(req);
        }
        let tokens = req.prompt.to_tokens();
        // Donor: the routable replica holding the longest resident prefix.
        let mut best: Option<(usize, usize)> = None;
        for (j, r) in self.replicas.iter().enumerate() {
            if j == target || !r.observed.is_routable() || !r.actual.is_routable() {
                continue;
            }
            let overlap = r.model.prefix_overlap_tokens(&tokens);
            if overlap > best.map_or(0, |(_, b)| b) {
                best = Some((j, overlap));
            }
        }
        let Some((donor, donor_overlap)) = best else {
            return Some(req);
        };
        let gain = donor_overlap.saturating_sub(target_overlap);
        if gain < min_gain {
            return Some(req);
        }
        let block_size = self.block_size();
        let bytes =
            (gain / block_size) as u64 * kv_block_bytes(&self.config.engine.model, block_size);
        let Some(plane) = self.plane.as_ref() else {
            return Some(req);
        };
        // Migrate only when transfer-then-suffix-prefill beats recomputing
        // the uncovered prompt right now on the target.
        let total = req.prompt.total_tokens();
        let finish = plane.estimate_finish(self.now, donor, target, bytes);
        let cost = self.replicas[target].model.cost_model();
        let migrate_done =
            finish.as_ns_f64() + cost.prefill_ns(total.saturating_sub(donor_overlap));
        let recompute_done =
            self.now.as_ns_f64() + cost.prefill_ns(total.saturating_sub(target_overlap));
        if migrate_done >= recompute_done {
            return Some(req);
        }
        let transfer = match self.plane.as_mut() {
            Some(plane) => plane.begin(
                self.now,
                donor,
                target,
                bytes,
                gain,
                TransferKind::PrefixMigration,
            ),
            None => return Some(req),
        };
        self.queue
            .push(transfer.finish, FleetEvent::TransferDone(transfer.id));
        let dur = transfer.finish.saturating_sub(self.now).as_ns();
        let req_id = req.id;
        self.pending_transfers.insert(
            transfer.id,
            PendingTransfer::Migration { req, donor_overlap },
        );
        self.mark_span("transfer", Some(target), dur);
        self.event(format!(
            "migrate {gain} warm prefix tokens r{donor} -> r{target} for request {req_id}"
        ));
        None
    }

    /// A shadow prefill finished on `src`: stream the prompt's KV to a
    /// decode replica and hold the original request until the bytes land.
    fn begin_handoff(&mut self, src: usize, shadow_id: u64) {
        let Some(req) = self.disagg_waiting.remove(&public_id(shadow_id)) else {
            return; // the original was already lost
        };
        let wanted = ReplicaRole::Decode;
        let target = {
            let views: Vec<ReplicaView<'_>> = self
                .replicas
                .iter()
                .map(|r| {
                    let view =
                        ReplicaView::with_state_and_role(r.model.as_ref(), r.observed, r.role);
                    if r.role.serves(wanted) && r.actual.is_routable() {
                        view
                    } else {
                        view.masked()
                    }
                })
                .collect();
            if !views.iter().any(|v| v.state().is_routable()) {
                // No decode replica up: the KV is stranded on the prefill
                // side; the original reroutes (and re-prefills) later.
                self.orphans.push(req);
                return;
            }
            match self.router.route(&req, &views) {
                Some(t) if views[t].state().is_routable() => t,
                _ => {
                    self.orphans.push(req);
                    return;
                }
            }
        };
        let block_size = self.block_size();
        let tokens = req.prompt.to_tokens();
        let aligned = tokens.len() / block_size * block_size;
        if aligned == 0 {
            // Nothing block-resident to move; the decode side re-prefills
            // the (sub-block) prompt itself.
            self.disagg_handoffs += 1;
            self.submit_to(target, req);
            return;
        }
        let bytes =
            (aligned / block_size) as u64 * kv_block_bytes(&self.config.engine.model, block_size);
        let transfer = match self.plane.as_mut() {
            Some(plane) => plane.begin(
                self.now,
                src,
                target,
                bytes,
                aligned,
                TransferKind::DisaggHandoff,
            ),
            None => {
                self.disagg_handoffs += 1;
                self.submit_to(target, req);
                return;
            }
        };
        self.queue
            .push(transfer.finish, FleetEvent::TransferDone(transfer.id));
        let dur = transfer.finish.saturating_sub(self.now).as_ns();
        let req_id = req.id;
        self.pending_transfers
            .insert(transfer.id, PendingTransfer::Handoff { req });
        self.mark_span("transfer", Some(target), dur);
        self.event(format!(
            "handoff {aligned} prefill tokens r{src} -> r{target} for request {req_id}"
        ));
    }

    /// A transfer's last byte arrived: ingest at the destination and release
    /// whatever was held on it.
    fn finish_transfer(&mut self, id: u64) {
        let done = match self.plane.as_mut() {
            Some(plane) => plane.complete(id),
            None => None,
        };
        let (Some(done), Some(pending)) = (done, self.pending_transfers.remove(&id)) else {
            return;
        };
        let dst = done.dst;
        let alive =
            self.replicas[dst].observed.is_routable() && self.replicas[dst].actual.is_routable();
        if !alive {
            // The destination died (or started draining) while bytes were
            // in flight; the payload is lost with it.
            self.mark("transfer-lost", Some(dst));
            match pending {
                PendingTransfer::Migration { req, .. } | PendingTransfer::Handoff { req } => {
                    self.event(format!(
                        "transfer to replica {dst} lost; request {} back to orphans",
                        req.id
                    ));
                    self.orphans.push(req);
                }
                PendingTransfer::Prewarm { .. } => {
                    self.event(format!("prewarm transfer to replica {dst} lost"));
                }
            }
            return;
        }
        match pending {
            PendingTransfer::Migration { req, donor_overlap } => {
                let tokens = req.prompt.to_tokens();
                let covered = donor_overlap.min(tokens.len());
                let report = self.replicas[dst].model.ingest_prefix(&tokens[..covered]);
                let total = req.prompt.total_tokens();
                let refill = total.saturating_sub(report.covered_tokens);
                // Conservation: a block is never both migrated and
                // recomputed — imported + refilled never exceeds the prompt.
                assert!(
                    report.imported_tokens + refill <= total,
                    "migrated and recomputed token counts overlap"
                );
                self.migrations += 1;
                self.migrated_prefix_tokens += report.imported_tokens as u64;
                self.refilled_after_partial_migration += refill as u64;
                self.mark("migrate-ingest", Some(dst));
                self.event(format!(
                    "replica {dst} ingested {} migrated tokens; request {} resumes ({refill} to refill)",
                    report.imported_tokens, req.id
                ));
                self.submit_to(dst, req);
            }
            PendingTransfer::Prewarm { tokens } => {
                let report = self.replicas[dst].model.ingest_prefix(&tokens);
                self.prewarm_transfers += 1;
                self.migrated_prefix_tokens += report.imported_tokens as u64;
                self.mark("prewarm-ingest", Some(dst));
                self.event(format!(
                    "replica {dst} prewarmed with {} tokens",
                    report.imported_tokens
                ));
            }
            PendingTransfer::Handoff { req } => {
                let tokens = req.prompt.to_tokens();
                let report = self.replicas[dst].model.ingest_prefix(&tokens);
                self.disagg_handoffs += 1;
                self.migrated_prefix_tokens += report.imported_tokens as u64;
                self.mark("handoff-ingest", Some(dst));
                self.event(format!(
                    "replica {dst} ingested {} handoff tokens; request {} enters decode",
                    report.imported_tokens, req.id
                ));
                self.submit_to(dst, req);
            }
        }
    }

    /// Revive/scale-up hook: push the backlog's hottest warm prefix to the
    /// cold replica before traffic lands on it.
    fn maybe_prewarm(&mut self, dst: usize) {
        let (min_tokens, candidates) = match self.config.transfer.as_ref() {
            Some(t) if t.migration && t.prewarm_on_revive => {
                (t.min_migration_tokens.max(1), t.prewarm_candidates)
            }
            _ => return,
        };
        let mut best: Option<(usize, usize, Vec<kv_cache::Token>)> = None;
        for req in self
            .pending
            .iter()
            .chain(self.orphans.iter())
            .take(candidates)
        {
            let tokens = req.prompt.to_tokens();
            for (j, r) in self.replicas.iter().enumerate() {
                if j == dst || !r.observed.is_routable() || !r.actual.is_routable() {
                    continue;
                }
                let overlap = r.model.prefix_overlap_tokens(&tokens);
                if overlap >= min_tokens && overlap > best.as_ref().map_or(0, |(_, b, _)| *b) {
                    best = Some((j, overlap, tokens.clone()));
                }
            }
        }
        let Some((donor, overlap, tokens)) = best else {
            return;
        };
        let block_size = self.block_size();
        let blocks = overlap / block_size;
        if blocks == 0 {
            return;
        }
        let bytes = blocks as u64 * kv_block_bytes(&self.config.engine.model, block_size);
        let transfer = match self.plane.as_mut() {
            Some(plane) => plane.begin(self.now, donor, dst, bytes, overlap, TransferKind::Prewarm),
            None => return,
        };
        self.queue
            .push(transfer.finish, FleetEvent::TransferDone(transfer.id));
        let dur = transfer.finish.saturating_sub(self.now).as_ns();
        self.pending_transfers.insert(
            transfer.id,
            PendingTransfer::Prewarm {
                tokens: tokens[..overlap].to_vec(),
            },
        );
        self.mark_span("transfer", Some(dst), dur);
        self.event(format!("prewarm {overlap} tokens r{donor} -> r{dst}"));
    }

    fn submit_to(&mut self, i: usize, mut req: Request) {
        // `as_secs_f64` round-trips exactly through `from_secs_f64` at
        // simulation scale, so the engine admits the request at precisely
        // `self.now`.
        req.arrival_s = self.now.as_secs_f64();
        self.submit.insert(req.id, self.now);
        self.replicas[i].model.submit(req);
    }

    /// Handles one fresh arrival: admission control, then routing.
    fn offer(&mut self, req: Request) {
        let routable = self.routable_count();
        if routable == 0 {
            // Nowhere to send it; buffer (bounded if admission is on).
            self.buffer_or_shed(req);
            return;
        }
        if let Some(adm) = self.config.admission {
            let saturated = self.observed_load() >= adm.max_outstanding_per_replica * routable;
            if saturated || !self.pending.is_empty() {
                self.buffer_or_shed(req);
                return;
            }
        }
        if let Some(req) = self.dispatch(req) {
            self.buffer_or_shed(req);
        }
    }

    fn buffer_or_shed(&mut self, req: Request) {
        let cap = self
            .config
            .admission
            .map_or(usize::MAX, |adm| adm.max_queued);
        if self.pending.len() < cap {
            self.pending.push_back(req);
        } else {
            self.shed_ids.push(req.id);
        }
    }

    /// Admits queued work while the fleet has headroom.
    fn drain_pending(&mut self) {
        loop {
            let routable = self.routable_count();
            if routable == 0 {
                return;
            }
            if let Some(adm) = self.config.admission {
                if self.observed_load() - self.pending.len()
                    >= adm.max_outstanding_per_replica * routable
                {
                    return;
                }
            }
            let Some(req) = self.pending.pop_front() else {
                return;
            };
            if let Some(req) = self.dispatch(req) {
                // Routable replicas exist but none serves this request's
                // role right now; put it back and stop draining.
                self.pending.push_front(req);
                return;
            }
        }
    }

    // -------------------------------------------------------------- faults

    fn apply_fault(&mut self, fault: &FaultEvent) {
        match fault.kind {
            FaultKind::Crash {
                replica,
                restart_after_s,
            } => {
                if replica >= self.replicas.len()
                    || self.replicas[replica].actual == ReplicaState::Dead
                {
                    return;
                }
                self.crashes += 1;
                let failover = self.config.failover;
                let restart_at = restart_after_s.map(|d| self.now + SimDuration::from_secs_f64(d));
                // The replacement rejoins at the fidelity the dead replica
                // was running; a fidelity policy re-sorts it at the next
                // tick anyway.
                let fresh = new_replica(
                    self.replicas[replica].model.fidelity(),
                    &self.config.engine,
                    (self.backend_factory)(),
                );
                let r = &mut self.replicas[replica];
                // Tear out everything incomplete, then swap in a cold
                // model: the KV cache and all in-flight decode state die
                // with the process.
                let incomplete = r.model.take_incomplete();
                let dead = std::mem::replace(&mut r.model, fresh);
                let res = dead.into_result();
                r.archived.extend(res.per_request);
                r.archived_preemptions += res.preemptions;
                r.completed_seen = 0;
                r.actual = ReplicaState::Dead;
                r.restart_at = restart_at;
                r.restore_speed_at = None;
                let torn = incomplete.len();
                if failover {
                    // Held as limbo until the health checker notices the
                    // crash; then rerouted.
                    r.limbo.extend(incomplete);
                } else {
                    self.lost_ids.extend(incomplete.iter().map(|q| q.id));
                }
                if let Some(at) = restart_at {
                    self.queue.push(at, FleetEvent::Restart);
                }
                self.event(format!(
                    "crash replica {replica} ({torn} requests in flight)"
                ));
                self.mark("crash", Some(replica));
            }
            FaultKind::Slowdown {
                replica,
                factor,
                duration_s,
            } => {
                if replica >= self.replicas.len()
                    || self.replicas[replica].actual == ReplicaState::Dead
                {
                    return;
                }
                let restore_at = self.now + SimDuration::from_secs_f64(duration_s);
                let r = &mut self.replicas[replica];
                r.model.set_speed_factor(factor);
                if r.actual == ReplicaState::Healthy {
                    r.actual = ReplicaState::Degraded;
                }
                r.restore_speed_at = Some(restore_at);
                self.queue.push(restore_at, FleetEvent::RestoreSpeed);
                self.event(format!("slowdown replica {replica} to {factor}x"));
                self.mark("slowdown", Some(replica));
            }
        }
    }

    fn revive(&mut self, i: usize) {
        self.replicas[i].restart_at = None;
        self.replicas[i].actual = ReplicaState::Healthy;
        self.replicas[i].observed = ReplicaState::Healthy;
        self.event(format!("replica {i} up (cold cache)"));
        self.mark("revive", Some(i));
        let limbo = std::mem::take(&mut self.replicas[i].limbo);
        if self.config.failover {
            // Anything still in limbo reroutes at the next tick.
            self.orphans.extend(limbo);
        } else {
            // Static fleet: the backlog that piled up against the dead
            // address finally gets served, cold.
            for req in limbo {
                self.submit_to(i, req);
            }
        }
        self.note_peak();
        self.maybe_prewarm(i);
    }

    fn restore_speed(&mut self, i: usize) {
        let r = &mut self.replicas[i];
        r.restore_speed_at = None;
        r.model.set_speed_factor(1.0);
        if r.actual == ReplicaState::Degraded {
            r.actual = ReplicaState::Healthy;
        }
        self.event(format!("replica {i} speed restored"));
        self.mark("restore-speed", Some(i));
    }

    // ---------------------------------------------------------- the tick

    /// One control-loop iteration: observe completions, detect state
    /// changes, fail over orphans, admit queued work, autoscale, retire
    /// drained replicas.
    fn tick(&mut self) {
        self.mark("tick", None);
        self.observe_completions();
        if self.config.health_checks {
            self.detect();
        }
        if self.config.failover && !self.orphans.is_empty() && self.routable_count() > 0 {
            let orphans = std::mem::take(&mut self.orphans);
            for req in orphans {
                if let Some(req) = self.route_now(req, true) {
                    // No routable replica of the right role yet; retry at a
                    // later tick.
                    self.orphans.push(req);
                }
            }
        }
        self.drain_pending();
        self.autoscale();
        self.retire_drained();
        self.adjust_fidelity();
    }

    // ------------------------------------------------------------- fidelity

    /// Applies the load-adaptive fidelity policy: healthy replicas at or
    /// above the outstanding threshold run `hot`, the rest `cold`. A switch
    /// is a cold handoff (see [`FidelityPolicy`]), so replicas that are
    /// crashed, draining, or holding limbo work are left alone.
    fn adjust_fidelity(&mut self) {
        let Some(policy) = self.config.fidelity_policy else {
            return;
        };
        for i in 0..self.replicas.len() {
            let r = &self.replicas[i];
            if r.actual != ReplicaState::Healthy
                || r.observed != ReplicaState::Healthy
                || !r.limbo.is_empty()
            {
                continue;
            }
            let want = if r.model.outstanding() >= policy.hot_outstanding {
                policy.hot
            } else {
                policy.cold
            };
            if want != r.model.fidelity() {
                self.switch_fidelity(i, want);
            }
        }
    }

    /// Swaps replica `i` to a fresh model at fidelity `to`, archiving the
    /// old model's accounting and resubmitting its incomplete requests. The
    /// handoff is cold: KV warmth does not survive the switch.
    fn switch_fidelity(&mut self, i: usize, to: Fidelity) {
        let fresh = new_replica(to, &self.config.engine, (self.backend_factory)());
        let r = &mut self.replicas[i];
        let speed = r.model.speed_factor();
        let incomplete = r.model.take_incomplete();
        let old = std::mem::replace(&mut r.model, fresh);
        let from = old.fidelity();
        let res = old.into_result();
        r.archived.extend(res.per_request);
        r.archived_preemptions += res.preemptions;
        r.completed_seen = 0;
        r.model.set_speed_factor(speed);
        self.fidelity_switches += 1;
        self.event(format!("replica {i} fidelity {from:?} -> {to:?}"));
        self.mark("fidelity-switch", Some(i));
        for req in incomplete {
            self.submit_to(i, req);
        }
    }

    fn observe_completions(&mut self) {
        let cap = self
            .config
            .autoscaler
            .as_ref()
            .map_or(64, |a| a.ttft_window.max(1));
        let mut finished_shadows: Vec<(usize, u64)> = Vec::new();
        for (i, r) in self.replicas.iter_mut().enumerate() {
            let completed = r.model.completed_requests();
            for m in &completed[r.completed_seen..] {
                if is_shadow(m.request_id) {
                    // Shadow prefills don't enter the TTFT window (their
                    // originals will); they trigger the KV handoff below.
                    finished_shadows.push((i, m.request_id));
                    continue;
                }
                let submit = self.submit[&m.request_id];
                let origin = self.origin[&m.request_id];
                let corrected_ms = (m.ttft_ns + (submit - origin).as_ns_f64()) / 1e6;
                self.ttft_window.push_back(corrected_ms);
            }
            r.completed_seen = completed.len();
        }
        while self.ttft_window.len() > cap {
            self.ttft_window.pop_front();
        }
        for (src, shadow_id) in finished_shadows {
            self.begin_handoff(src, shadow_id);
        }
    }

    /// Health check: fold each replica's actual state into the control
    /// plane's observed state. Detection latency is the tick period.
    fn detect(&mut self) {
        let failover = self.config.failover;
        let mut detected: Vec<usize> = Vec::new();
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if r.observed == r.actual {
                continue;
            }
            if r.actual == ReplicaState::Dead {
                detected.push(i);
            }
            r.observed = r.actual;
        }
        for i in detected {
            let limbo = std::mem::take(&mut self.replicas[i].limbo);
            self.event(format!(
                "detected crash of replica {i} ({} stranded)",
                limbo.len()
            ));
            self.mark("detect", Some(i));
            if failover {
                self.orphans.extend(limbo);
            } else {
                self.lost_ids.extend(limbo.iter().map(|q| q.id));
            }
        }
    }

    fn autoscale(&mut self) {
        let Some(a) = self.config.autoscaler.clone() else {
            return;
        };
        if self.now < self.cooldown_until {
            return;
        }
        let routable = self.routable_count();
        let provisioning = self
            .replicas
            .iter()
            .filter(|r| r.actual == ReplicaState::Dead && r.restart_at.is_some())
            .count();
        let load = self.observed_load() as f64;
        let mean_out = load / routable.max(1) as f64;
        let rolling_ttft_ms = if self.ttft_window.is_empty() {
            0.0
        } else {
            self.ttft_window.iter().sum::<f64>() / self.ttft_window.len() as f64
        };
        let want_up = mean_out > a.scale_up_outstanding
            || (!self.ttft_window.is_empty() && rolling_ttft_ms > self.config.slo_ttft_ms);
        if want_up && routable + provisioning < a.max_replicas {
            let ready = self.now + SimDuration::from_secs_f64(a.provision_delay_s);
            let backend = (self.backend_factory)();
            let mut grown =
                Replica::provisioning(self.config.fidelity, &self.config.engine, backend, ready);
            // Disaggregated fleets grow the decode tier: decode is the
            // capacity-bound phase.
            if self
                .config
                .transfer
                .as_ref()
                .is_some_and(|t| t.disaggregation.is_some())
            {
                grown.role = ReplicaRole::Decode;
            }
            self.replicas.push(grown);
            let new_index = self.replicas.len() - 1;
            self.queue.push(ready, FleetEvent::Restart);
            self.scale_ups += 1;
            self.cooldown_until = self.now + SimDuration::from_secs_f64(a.cooldown_s);
            self.event(format!(
                "scale-up: provisioning replica {new_index} (mean load {mean_out:.1}, rolling TTFT {rolling_ttft_ms:.0} ms)"
            ));
            self.mark("scale-up", Some(new_index));
            return;
        }
        let want_down = mean_out < a.scale_down_outstanding
            && self.pending.is_empty()
            && self.orphans.is_empty()
            && provisioning == 0;
        if want_down && routable > a.min_replicas {
            // `routable > min_replicas >= 1` means the filter below is
            // non-empty, but drain nothing rather than panic if not.
            let victim = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.observed.is_routable() && r.actual.is_routable())
                .min_by_key(|(i, r)| (r.model.outstanding(), *i))
                .map(|(i, _)| i);
            if let Some(victim) = victim {
                let r = &mut self.replicas[victim];
                r.model.begin_drain();
                r.actual = ReplicaState::Draining;
                r.observed = ReplicaState::Draining;
                self.scale_downs += 1;
                self.cooldown_until = self.now + SimDuration::from_secs_f64(a.cooldown_s);
                self.event(format!("scale-down: draining replica {victim}"));
                self.mark("scale-down", Some(victim));
            }
        }
    }

    /// Retires drained replicas whose queues have emptied.
    fn retire_drained(&mut self) {
        for i in 0..self.replicas.len() {
            let r = &mut self.replicas[i];
            if r.actual == ReplicaState::Draining && r.model.outstanding() == 0 {
                r.actual = ReplicaState::Dead;
                r.observed = ReplicaState::Dead;
                self.event(format!("retired replica {i}"));
                self.mark("retire", Some(i));
            }
        }
    }
}
