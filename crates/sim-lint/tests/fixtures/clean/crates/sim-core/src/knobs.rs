//! Fixture: the sanctioned registry file — `crates/sim-core/src/knobs.rs`
//! is the one path where raw environment reads are allowed, so nothing
//! here may be flagged by R7.

/// The registry's single environment ingest point.
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}
