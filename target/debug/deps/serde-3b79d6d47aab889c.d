/root/repo/target/debug/deps/serde-3b79d6d47aab889c.d: crates/compat-serde/src/lib.rs

/root/repo/target/debug/deps/serde-3b79d6d47aab889c: crates/compat-serde/src/lib.rs

crates/compat-serde/src/lib.rs:
