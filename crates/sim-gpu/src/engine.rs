//! Discrete-event execution engine.
//!
//! Models the part of the GPU the paper's forward stage cares about:
//!
//! * a **GigaThread-style dispatcher** placing CTAs onto SMs as shared-memory,
//!   register, thread, and slot resources free up;
//! * a **shared HBM bus**: at any instant, resident CTAs split the global
//!   bandwidth by max–min fairness, with each CTA capped at the rate its
//!   in-flight (double-buffered) tile data can sustain (`in_flight / L`,
//!   constraint ② of §5.2);
//! * **compute floors**: a CTA cannot finish before its tensor-core pipeline
//!   does, which exposes final-tile compute bubbles on short KV;
//! * **streams**: kernels in one stream run serially (with launch overhead),
//!   kernels in different streams run concurrently (§6).
//!
//! The engine returns a makespan, per-CTA spans (Fig. 15), and bandwidth
//! accounting (Fig. 8c).

use crate::occupancy::{CtaResources, Occupancy, OccupancyViolation};
use crate::trace::{CtaSpan, ExecutionTrace, KernelSpan};
use crate::GpuSpec;
use sim_core::cast::usize_to_isize;
use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// Work performed by a single CTA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtaWork {
    /// Caller correlation id (e.g. pack index), surfaced in the trace.
    pub tag: u64,
    /// Bytes this CTA must stream from global memory (DRAM).
    pub dram_bytes: f64,
    /// Bytes served by L2 (cheaper, but still occupy the CTA's pipeline).
    pub l2_bytes: f64,
    /// Lower bound on the CTA's wall time from dispatch (pipeline latency +
    /// tensor-core compute, including the exposed final-tile compute).
    pub min_exec_ns: f64,
    /// Maximum DRAM-equivalent load rate in bytes/ns this CTA can sustain,
    /// i.e. its in-flight bytes divided by the memory latency.
    pub rate_cap: f64,
    /// Exposed epilogue after the final tile's data arrives (the last tile's
    /// compute cannot overlap any further load — §5.2's compute bubble).
    pub tail_ns: f64,
}

/// A kernel: a set of homogeneous CTAs sharing one resource footprint.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Display label, e.g. `"pat(m=32,n=64)"`.
    pub label: String,
    /// Per-CTA resource footprint (determines occupancy).
    pub resources: CtaResources,
    /// The CTAs to execute.
    pub ctas: Vec<CtaWork>,
}

/// A CUDA stream: kernels execute in order within a stream.
#[derive(Debug, Clone, Default)]
pub struct StreamSpec {
    /// Kernels in issue order.
    pub kernels: Vec<KernelSpec>,
}

/// Result of simulating a set of streams.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock makespan in ns.
    pub total_ns: f64,
    /// Bytes moved from DRAM.
    pub dram_bytes: f64,
    /// Bytes served by L2.
    pub l2_bytes: f64,
    /// Average fraction of peak HBM bandwidth used over the makespan.
    pub bandwidth_utilization: f64,
    /// Per-CTA and per-kernel spans.
    pub trace: ExecutionTrace,
}

/// Errors from [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A kernel's CTAs can never fit on an SM.
    CtaDoesNotFit {
        /// The offending kernel's label.
        kernel: String,
        /// Which resource limit was violated.
        violation: OccupancyViolation,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::CtaDoesNotFit { kernel, violation } => {
                write!(
                    f,
                    "kernel `{kernel}` has CTAs that cannot fit on any SM ({violation:?})"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[derive(Debug, Clone, Copy)]
struct SmState {
    free_smem: isize,
    free_regs: isize,
    free_threads: isize,
    free_slots: isize,
}

#[derive(Debug)]
struct ActiveKernel {
    stream: usize,
    kernel_index: usize,
    label: String,
    resources: CtaResources,
    /// `resources` pre-converted to the signed accounting domain, so the
    /// per-SM fit scan does not re-convert four fields per probe.
    need_smem: isize,
    need_regs: isize,
    need_threads: isize,
    pending: VecDeque<CtaWork>,
    outstanding: usize,
    launch_time: SimTime,
    first_dispatch: Option<SimTime>,
}

#[derive(Debug)]
struct RunningCta {
    sm: usize,
    active_kernel: usize,
    tag: u64,
    start: SimTime,
    /// Remaining DRAM-equivalent bytes to stream (L2 bytes are pre-scaled).
    remaining: f64,
    rate_cap: f64,
    floor_end: SimTime,
    tail: SimDuration,
    tail_applied: bool,
    rate: f64,
}

/// The execution engine for one device.
///
/// # Examples
///
/// ```
/// use sim_gpu::{CtaResources, CtaWork, Engine, GpuSpec, KernelSpec, StreamSpec};
///
/// let engine = Engine::new(GpuSpec::a100_sxm4_80gb());
/// let kernel = KernelSpec {
///     label: "demo".into(),
///     resources: CtaResources { smem_bytes: 32 * 1024, regs_per_thread: 64, threads: 128 },
///     ctas: vec![CtaWork { tag: 0, dram_bytes: 1e6, l2_bytes: 0.0,
///                          min_exec_ns: 1_000.0, rate_cap: 50.0, tail_ns: 0.0 }],
/// };
/// let result = engine.run(vec![StreamSpec { kernels: vec![kernel] }])?;
/// assert!(result.total_ns > 0.0);
/// # Ok::<(), sim_gpu::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    spec: GpuSpec,
}

/// Tolerance for *byte* quantities only (remaining transfer sizes, rate
/// caps). Clock comparisons are exact integer nanoseconds and need no
/// epsilon — that is the point of the `SimTime` spine.
const EPS: f64 = 1e-6;

/// The next `f64` above a positive value (one ulp up; `+inf` maps to
/// itself). Used to turn a rounded product into a guaranteed upper bound on
/// the exact product.
#[inline]
fn up(x: f64) -> f64 {
    if x.is_finite() {
        f64::from_bits(x.to_bits() + 1)
    } else {
        x
    }
}

impl Engine {
    /// Creates an engine for `spec`.
    pub fn new(spec: GpuSpec) -> Self {
        Engine { spec }
    }

    /// The device being simulated.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Simulates the streams to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::CtaDoesNotFit`] if any kernel's per-CTA resource
    /// footprint exceeds hardware limits (the run would hang on real hardware).
    pub fn run(&self, streams: Vec<StreamSpec>) -> Result<RunResult, EngineError> {
        let occupancy = Occupancy::new(self.spec.clone());
        for stream in &streams {
            for kernel in &stream.kernels {
                if let Err(violation) = occupancy.ctas_per_sm(kernel.resources) {
                    return Err(EngineError::CtaDoesNotFit {
                        kernel: kernel.label.clone(),
                        violation,
                    });
                }
            }
        }

        let l2_speedup = self.spec.global_bandwidth / self.spec.l2_bandwidth;
        let mut sms: Vec<SmState> = (0..self.spec.num_sms)
            .map(|_| SmState {
                free_smem: usize_to_isize(self.spec.smem_per_sm),
                free_regs: usize_to_isize(self.spec.regs_per_sm),
                free_threads: usize_to_isize(self.spec.max_threads_per_sm),
                free_slots: usize_to_isize(self.spec.max_ctas_per_sm),
            })
            .collect();

        // Per-stream cursor and the time the next kernel may launch.
        let mut next_kernel: Vec<usize> = vec![0; streams.len()];
        let mut launch_ready: Vec<SimTime> = vec![SimTime::ZERO; streams.len()];
        let mut active: Vec<ActiveKernel> = Vec::new();
        let mut running: Vec<RunningCta> = Vec::new();
        let mut trace = ExecutionTrace::default();
        let mut total_dram = 0.0;
        let mut total_l2 = 0.0;
        let mut streamed_eff = 0.0;

        // Number of SMs with at least one free CTA slot. Every CTA needs a
        // slot, so when this hits zero the dispatch scan cannot succeed and
        // is skipped wholesale (the saturated steady state, where the scan
        // would otherwise walk every SM once per event).
        let mut sms_with_free_slots = self.spec.num_sms;
        // Scratch buffers reused across events (the loop runs O(#CTAs)
        // times; reallocating these per event dominated the event cost).
        let mut order: Vec<usize> = Vec::new();
        let mut finished_kernels: Vec<usize> = Vec::new();
        let mut loader_scratch: Vec<usize> = Vec::new();

        let mut now = SimTime::ZERO;
        loop {
            // 1. Activate stream-head kernels whose launch time has arrived.
            for (s, stream) in streams.iter().enumerate() {
                while next_kernel[s] < stream.kernels.len() && launch_ready[s] <= now {
                    // Only one kernel of a stream is in flight at a time.
                    let in_flight = active.iter().any(|k| k.stream == s);
                    if in_flight {
                        break;
                    }
                    let k = next_kernel[s];
                    let kernel = &stream.kernels[k];
                    active.push(ActiveKernel {
                        stream: s,
                        kernel_index: k,
                        label: kernel.label.clone(),
                        resources: kernel.resources,
                        need_smem: usize_to_isize(kernel.resources.smem_bytes),
                        need_regs: usize_to_isize(kernel.resources.regs_per_cta()),
                        need_threads: usize_to_isize(kernel.resources.threads),
                        pending: kernel.ctas.iter().copied().collect(),
                        outstanding: 0,
                        launch_time: now,
                        first_dispatch: None,
                    });
                    next_kernel[s] += 1;
                }
            }

            // 2. Dispatch pending CTAs onto SMs (GigaThread greedy placement,
            //    oldest kernel first; launch-time ties go to the kernel with
            //    the larger per-CTA footprint so big CTAs are not starved by
            //    a flood of small ones filling every partially-free SM).
            let any_pending = active.iter().any(|k| !k.pending.is_empty());
            if any_pending && sms_with_free_slots > 0 {
                order.clear();
                order.extend(0..active.len());
                if order.len() > 1 {
                    order.sort_by(|&a, &b| {
                        active[a]
                            .launch_time
                            .cmp(&active[b].launch_time)
                            .then_with(|| {
                                active[b]
                                    .resources
                                    .smem_bytes
                                    .cmp(&active[a].resources.smem_bytes)
                            })
                    });
                }
                for &idx in &order {
                    let need_smem = active[idx].need_smem;
                    let need_regs = active[idx].need_regs;
                    let need_threads = active[idx].need_threads;
                    while let Some(&work) = active[idx].pending.front() {
                        if sms_with_free_slots == 0 {
                            break;
                        }
                        let slot = sms.iter().position(|sm| {
                            sm.free_smem >= need_smem
                                && sm.free_regs >= need_regs
                                && sm.free_threads >= need_threads
                                && sm.free_slots >= 1
                        });
                        let Some(sm) = slot else { break };
                        sms[sm].free_smem -= need_smem;
                        sms[sm].free_regs -= need_regs;
                        sms[sm].free_threads -= need_threads;
                        sms[sm].free_slots -= 1;
                        if sms[sm].free_slots == 0 {
                            sms_with_free_slots -= 1;
                        }
                        active[idx].pending.pop_front();
                        active[idx].outstanding += 1;
                        if active[idx].first_dispatch.is_none() {
                            active[idx].first_dispatch = Some(now);
                        }
                        total_dram += work.dram_bytes;
                        total_l2 += work.l2_bytes;
                        running.push(RunningCta {
                            sm,
                            active_kernel: idx,
                            tag: work.tag,
                            start: now,
                            remaining: work.dram_bytes + work.l2_bytes * l2_speedup,
                            rate_cap: work.rate_cap.max(EPS),
                            // Cost models hand in f64 ns; this is the lossy
                            // ingest boundary onto the integer spine. Floors and
                            // tails round UP so quantization never shortens a
                            // span below its cost-model minimum.
                            floor_end: now
                                + SimDuration::from_ns_f64_ceil(work.min_exec_ns.max(0.0)),
                            tail: SimDuration::from_ns_f64_ceil(work.tail_ns.max(0.0)),
                            tail_applied: false,
                            rate: 0.0,
                        });
                    }
                }
            }

            if running.is_empty() && active.iter().all(|k| k.pending.is_empty()) {
                // Nothing resident: either we're done or we jump to the next
                // launch time.
                let next_launch = (0..streams.len())
                    .filter(|&s| next_kernel[s] < streams[s].kernels.len())
                    .map(|s| launch_ready[s])
                    .min();
                match next_launch {
                    None if active.is_empty() => break,
                    Some(t) if t > now => {
                        now = t;
                        continue;
                    }
                    _ => {}
                }
            }

            // 3. Max-min fair bandwidth allocation among loading CTAs; the
            //    shared budget is the *achievable* DRAM bandwidth.
            Self::waterfill(
                &mut running,
                self.spec.global_bandwidth * self.spec.dram_efficiency,
                &mut loader_scratch,
            );

            // 4. Find the next event. Fractional f64 waits (bytes / rate)
            //    quantize *up* to whole nanoseconds so every step strictly
            //    advances the integer clock.
            //
            // The bytes-done candidate is `min_i ceil(remaining_i / rate_i)`.
            // Both rounding-to-nearest division and ceil are weakly monotone
            // in the real quotient, so the minimum commutes with them: track
            // the smallest *quotient* and convert once. A CTA whose
            // `remaining > up(best * rate)` has a real quotient strictly
            // above `best` (up() bumps one ulp, covering the product's
            // rounding error) and provably cannot improve the minimum — the
            // common case, decided by one multiply instead of one divide.
            let step_floor = now + SimDuration::NANOSECOND;
            let mut best_quot = f64::INFINITY;
            let mut best_stall: Option<SimTime> = None;
            for cta in &running {
                if cta.remaining > EPS && cta.rate > EPS {
                    // Wake at the bytes-done moment to re-waterfill (the
                    // compute floor is checked again at retirement).
                    let bound = up(best_quot * cta.rate);
                    if cta.remaining > bound {
                        continue;
                    }
                    let q = cta.remaining / cta.rate;
                    if q < best_quot {
                        best_quot = q;
                    }
                } else {
                    let t = cta.floor_end;
                    best_stall = Some(best_stall.map_or(t, |cur| cur.min(t)));
                }
            }
            let mut next_event: Option<SimTime> = None;
            let mut consider = |t: SimTime| {
                let t = t.max(step_floor);
                next_event = Some(next_event.map_or(t, |cur| cur.min(t)));
            };
            if best_quot.is_finite() {
                consider(now + SimDuration::from_ns_f64_ceil(best_quot));
            }
            if let Some(t) = best_stall {
                consider(t);
            }
            for (s, _) in streams.iter().enumerate() {
                if next_kernel[s] < streams[s].kernels.len()
                    && !active.iter().any(|k| k.stream == s)
                    && launch_ready[s] > now
                {
                    consider(launch_ready[s]);
                }
            }
            let Some(next_event) = next_event else {
                debug_assert!(running.is_empty(), "running CTAs but no next event");
                break;
            };

            // 5. Advance time.
            let dt = (next_event - now).as_ns_f64();
            for cta in running.iter_mut() {
                let moved = (cta.rate * dt).min(cta.remaining);
                cta.remaining -= moved;
                streamed_eff += moved;
            }
            now = next_event;

            // 6. Retire finished CTAs and kernels. A CTA whose bytes just
            //    completed first serves its exposed epilogue (final-tile
            //    compute) before releasing its SM resources.
            for cta in running.iter_mut() {
                if cta.remaining <= EPS && !cta.tail_applied {
                    cta.tail_applied = true;
                    cta.floor_end = cta.floor_end.max(now + cta.tail);
                }
            }
            finished_kernels.clear();
            let mut i = 0;
            while i < running.len() {
                let done = running[i].remaining <= EPS && running[i].floor_end <= now;
                if done {
                    let cta = running.swap_remove(i);
                    let kernel = &active[cta.active_kernel];
                    sms[cta.sm].free_smem += kernel.need_smem;
                    sms[cta.sm].free_regs += kernel.need_regs;
                    sms[cta.sm].free_threads += kernel.need_threads;
                    sms[cta.sm].free_slots += 1;
                    if sms[cta.sm].free_slots == 1 {
                        sms_with_free_slots += 1;
                    }
                    trace.ctas.push(CtaSpan {
                        stream: active[cta.active_kernel].stream,
                        kernel: active[cta.active_kernel].label.clone(),
                        tag: cta.tag,
                        sm: cta.sm,
                        start_ns: cta.start.as_ns_f64(),
                        end_ns: now.as_ns_f64(),
                    });
                    active[cta.active_kernel].outstanding -= 1;
                    if active[cta.active_kernel].outstanding == 0
                        && active[cta.active_kernel].pending.is_empty()
                    {
                        finished_kernels.push(cta.active_kernel);
                    }
                } else {
                    i += 1;
                }
            }
            finished_kernels.sort_unstable();
            finished_kernels.dedup();
            for &idx in finished_kernels.iter().rev() {
                let kernel = active.swap_remove(idx);
                // swap_remove moved the last element into `idx`; fix refs.
                for cta in running.iter_mut() {
                    if cta.active_kernel == active.len() {
                        cta.active_kernel = idx;
                    }
                }
                launch_ready[kernel.stream] =
                    now + SimDuration::from_ns_f64(self.spec.kernel_launch_ns);
                trace.kernels.push(KernelSpan {
                    stream: kernel.stream,
                    kernel_index: kernel.kernel_index,
                    label: kernel.label,
                    launch_ns: kernel.launch_time.as_ns_f64(),
                    start_ns: kernel
                        .first_dispatch
                        .unwrap_or(kernel.launch_time)
                        .as_ns_f64(),
                    end_ns: now.as_ns_f64(),
                });
            }
        }

        trace.ctas.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
        trace
            .kernels
            .sort_by(|a, b| a.launch_ns.total_cmp(&b.launch_ns));
        let utilization = if now > SimTime::ZERO {
            (streamed_eff / (self.spec.global_bandwidth * now.as_ns_f64())).min(1.0)
        } else {
            0.0
        };
        Ok(RunResult {
            total_ns: now.as_ns_f64(),
            dram_bytes: total_dram,
            l2_bytes: total_l2,
            bandwidth_utilization: utilization,
            trace,
        })
    }

    /// Max-min fair sharing of `budget` bytes/ns among loading CTAs, each
    /// capped at its own `rate_cap`. `loaders` is caller-owned scratch so the
    /// per-event call does not allocate.
    fn waterfill(running: &mut [RunningCta], budget: f64, loaders: &mut Vec<usize>) {
        loaders.clear();
        // Track whether the cap sequence is already non-decreasing while
        // collecting; plans overwhelmingly run homogeneous tiles (equal
        // caps), where the stable sort is the identity and can be skipped.
        let mut sorted = true;
        let mut prev_cap = f64::NEG_INFINITY;
        for (i, cta) in running.iter_mut().enumerate() {
            if cta.remaining > EPS {
                sorted &= prev_cap <= cta.rate_cap;
                prev_cap = cta.rate_cap;
                cta.rate = 0.0;
                loaders.push(i);
            }
        }
        if !sorted {
            loaders.sort_by(|&a, &b| running[a].rate_cap.total_cmp(&running[b].rate_cap));
        }
        let mut remaining_budget = budget;
        let mut remaining_n = loaders.len();
        for &i in loaders.iter() {
            let fair = remaining_budget / remaining_n as f64;
            let rate = running[i].rate_cap.min(fair);
            running[i].rate = rate;
            remaining_budget -= rate;
            remaining_n -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_res() -> CtaResources {
        CtaResources {
            smem_bytes: 32 * 1024,
            regs_per_thread: 64,
            threads: 128,
        }
    }

    fn work(bytes: f64) -> CtaWork {
        CtaWork {
            tag: 0,
            dram_bytes: bytes,
            l2_bytes: 0.0,
            min_exec_ns: 500.0,
            rate_cap: 60.0,
            tail_ns: 0.0,
        }
    }

    fn engine() -> Engine {
        Engine::new(GpuSpec::a100_sxm4_80gb())
    }

    #[test]
    fn single_cta_is_rate_capped() {
        let e = engine();
        let bytes = 6.0e6;
        let r = e
            .run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "k".into(),
                    resources: small_res(),
                    ctas: vec![work(bytes)],
                }],
            }])
            .unwrap();
        // One CTA cannot use the whole bus: time ~ bytes / rate_cap.
        let expected = bytes / 60.0;
        assert!(
            (r.total_ns - expected).abs() / expected < 0.05,
            "{} vs {}",
            r.total_ns,
            expected
        );
        assert!(r.bandwidth_utilization < 0.1);
    }

    #[test]
    fn many_ctas_saturate_the_bus() {
        let e = engine();
        let n = 1024;
        let bytes = 1.0e6;
        let ctas: Vec<CtaWork> = (0..n)
            .map(|i| CtaWork {
                tag: i as u64,
                ..work(bytes)
            })
            .collect();
        let r = e
            .run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "k".into(),
                    resources: small_res(),
                    ctas,
                }],
            }])
            .unwrap();
        let ideal = n as f64 * bytes / 2039.0;
        assert!(
            r.bandwidth_utilization > 0.8,
            "util {}",
            r.bandwidth_utilization
        );
        assert!(r.total_ns < 1.5 * ideal);
    }

    #[test]
    fn compute_floor_delays_completion() {
        let e = engine();
        let mut cta = work(1_000.0);
        cta.min_exec_ns = 1.0e6;
        let r = e
            .run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "k".into(),
                    resources: small_res(),
                    ctas: vec![cta],
                }],
            }])
            .unwrap();
        assert!(r.total_ns >= 1.0e6);
    }

    #[test]
    fn streams_run_concurrently_but_kernels_serialize_within_a_stream() {
        let e = engine();
        let mk = |label: &str| KernelSpec {
            label: label.into(),
            resources: small_res(),
            ctas: (0..432)
                .map(|i| CtaWork {
                    tag: i,
                    ..work(1.0e5)
                })
                .collect(),
        };
        let serial = e
            .run(vec![StreamSpec {
                kernels: vec![mk("a"), mk("b")],
            }])
            .unwrap();
        let parallel = e
            .run(vec![
                StreamSpec {
                    kernels: vec![mk("a")],
                },
                StreamSpec {
                    kernels: vec![mk("b")],
                },
            ])
            .unwrap();
        assert!(
            parallel.total_ns < serial.total_ns,
            "parallel {} !< serial {}",
            parallel.total_ns,
            serial.total_ns
        );
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let e = engine();
        let res = CtaResources {
            smem_bytes: 300 * 1024,
            regs_per_thread: 32,
            threads: 128,
        };
        let err = e
            .run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "huge".into(),
                    resources: res,
                    ctas: vec![work(1.0)],
                }],
            }])
            .unwrap_err();
        assert!(matches!(err, EngineError::CtaDoesNotFit { .. }));
    }

    #[test]
    fn l2_bytes_move_faster_than_dram_bytes() {
        let e = engine();
        let dram_only = CtaWork {
            tag: 0,
            dram_bytes: 4.0e6,
            l2_bytes: 0.0,
            min_exec_ns: 0.0,
            rate_cap: 60.0,
            tail_ns: 0.0,
        };
        let l2_heavy = CtaWork {
            tag: 0,
            dram_bytes: 1.0e6,
            l2_bytes: 3.0e6,
            min_exec_ns: 0.0,
            rate_cap: 60.0,
            tail_ns: 0.0,
        };
        let run = |cta| {
            e.run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "k".into(),
                    resources: small_res(),
                    ctas: vec![cta],
                }],
            }])
            .unwrap()
            .total_ns
        };
        assert!(run(l2_heavy) < run(dram_only));
    }

    #[test]
    fn trace_covers_all_ctas() {
        let e = engine();
        let ctas: Vec<CtaWork> = (0..10)
            .map(|i| CtaWork {
                tag: i,
                ..work(1.0e5)
            })
            .collect();
        let r = e
            .run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "k".into(),
                    resources: small_res(),
                    ctas,
                }],
            }])
            .unwrap();
        assert_eq!(r.trace.ctas.len(), 10);
        assert_eq!(r.trace.kernels.len(), 1);
        for span in &r.trace.ctas {
            assert!(span.end_ns > span.start_ns);
            assert!(span.sm < 108);
        }
    }

    #[test]
    fn empty_run_completes_instantly() {
        let r = engine().run(vec![]).unwrap();
        assert_eq!(r.total_ns, 0.0);
        assert_eq!(r.dram_bytes, 0.0);
    }

    #[test]
    fn imbalanced_ctas_create_a_tail() {
        // One CTA with 10x the bytes dominates the makespan: the execution
        // bubble of §3.3.
        let e = engine();
        let mut ctas: Vec<CtaWork> = (0..100)
            .map(|i| CtaWork {
                tag: i,
                ..work(1.0e5)
            })
            .collect();
        ctas.push(CtaWork {
            tag: 999,
            ..work(4.0e6)
        });
        let r = e
            .run(vec![StreamSpec {
                kernels: vec![KernelSpec {
                    label: "k".into(),
                    resources: small_res(),
                    ctas,
                }],
            }])
            .unwrap();
        let long = r.trace.ctas.iter().find(|c| c.tag == 999).unwrap();
        assert!((long.end_ns - r.total_ns).abs() < 1.0, "long CTA ends last");
        assert!(r.bandwidth_utilization < 0.6, "tail leaves the bus idle");
    }
}
