/root/repo/target/debug/deps/serde_derive-ebf900d472879db3.d: crates/compat-serde-derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ebf900d472879db3.so: crates/compat-serde-derive/src/lib.rs

crates/compat-serde-derive/src/lib.rs:
