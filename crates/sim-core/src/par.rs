//! Blessed deterministic parallelism for the simulation stack.
//!
//! Replicas in `cluster`/`controller` are independent between fleet event
//! barriers, and bench scenario grids are embarrassingly parallel — but raw
//! `std::thread` use inside simulation crates is a determinism hazard
//! (sim-lint rule R6): ad-hoc threading invites order-dependent merges.
//! This module is the single sanctioned escape hatch. Its contract:
//!
//! * **Ordered merge.** [`ordered_map`] assigns contiguous input chunks to
//!   workers and concatenates the results in input order; [`for_each_mut`]
//!   mutates disjoint chunks in place. Output is *bit-identical* for any
//!   worker count, including the sequential fallback.
//! * **Worker count** comes from the `PAT_SIM_THREADS` environment variable
//!   (default: available parallelism, capped at 8). `PAT_SIM_THREADS=1`
//!   runs inline on the caller's thread with no spawns at all.
//! * **Panic transparency.** A worker panic is resumed on the caller via
//!   [`std::panic::resume_unwind`], exactly as if the closure had panicked
//!   inline.
//!
//! The implementation mirrors `attn_kernel::numeric`'s scoped-thread style:
//! `std::thread::scope`, contiguous chunking, join-in-spawn-order.
//!
//! ```
//! use sim_core::par;
//!
//! let items = vec![1u64, 2, 3, 4, 5];
//! let doubled = par::ordered_map(&items, |_i, &x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6, 8, 10]); // same for any PAT_SIM_THREADS
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Test-only override of the worker count (0 = no override). Lets the
/// determinism proptests pin 1 vs N threads within one process without
/// mutating the environment (which is unsafe under a threaded test runner).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker count for the current process, overriding
/// `PAT_SIM_THREADS`; `None` removes the override. Intended for tests that
/// compare runs at different thread counts — results are thread-count
/// invariant by construction, so a concurrently-running test observing the
/// override is unaffected.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count every `par` entry point uses: the test override if set,
/// else the `PAT_SIM_THREADS` knob if parseable and non-zero, else available
/// parallelism capped at 8 (fleet work units are coarse; more workers only
/// add spawn overhead). Always at least 1.
pub fn configured_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Some(n) = crate::knobs::usize_knob("PAT_SIM_THREADS") {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Maps `f` over `items`, returning results in input order. `f` receives
/// the item's index and a shared reference. With one worker (or one item)
/// this runs inline with no thread spawns; otherwise contiguous chunks run
/// on scoped threads and the per-chunk result vectors are concatenated in
/// chunk order, so the output is identical for every worker count.
pub fn ordered_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = configured_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                let base = ci * chunk;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(base + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Applies `f` to every item by mutable reference, in parallel over
/// contiguous disjoint chunks. `f` receives the item's index. Because each
/// worker owns a disjoint `&mut` chunk and `f` sees one item at a time,
/// the post-state is identical to the sequential loop for every worker
/// count — parallelism only reorders wall-clock execution of independent
/// items, never their individual outcomes.
pub fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = configured_threads().min(items.len()).max(1);
    if threads == 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                let base = ci * chunk;
                scope.spawn(move || {
                    for (j, t) in slice.iter_mut().enumerate() {
                        f(base + j, t);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            set_thread_override(Some(threads));
            assert_eq!(ordered_map(&items, |_, &x| x * 3 + 1), expect);
        }
        set_thread_override(None);
    }

    #[test]
    fn ordered_map_passes_true_indices() {
        set_thread_override(Some(4));
        let items = vec![(); 31];
        let idx = ordered_map(&items, |i, _| i);
        assert_eq!(idx, (0..31).collect::<Vec<_>>());
        set_thread_override(None);
    }

    #[test]
    fn for_each_mut_matches_sequential_loop() {
        let mut seq: Vec<u64> = (0..53).collect();
        for (i, v) in seq.iter_mut().enumerate() {
            *v = *v * 7 + i as u64;
        }
        for threads in [1, 2, 4, 53] {
            let mut par: Vec<u64> = (0..53).collect();
            set_thread_override(Some(threads));
            for_each_mut(&mut par, |i, v| *v = *v * 7 + i as u64);
            assert_eq!(par, seq);
        }
        set_thread_override(None);
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        set_thread_override(Some(4));
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(&empty, |_, &x| x).is_empty());
        assert_eq!(ordered_map(&[42u32], |_, &x| x + 1), vec![43]);
        let mut one = [7u32];
        for_each_mut(&mut one, |_, v| *v += 1);
        assert_eq!(one, [8]);
        set_thread_override(None);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        set_thread_override(Some(2));
        let caught = std::panic::catch_unwind(|| {
            ordered_map(&[1u32, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        set_thread_override(None);
        assert!(caught.is_err());
    }
}
