/root/repo/target/debug/deps/backend_equivalence-0b86b722f6c7d2d8.d: tests/backend_equivalence.rs

/root/repo/target/debug/deps/backend_equivalence-0b86b722f6c7d2d8: tests/backend_equivalence.rs

tests/backend_equivalence.rs:
