/root/repo/target/debug/deps/engine_invariants-f0db1691a5e71c42.d: tests/engine_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libengine_invariants-f0db1691a5e71c42.rmeta: tests/engine_invariants.rs Cargo.toml

tests/engine_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
