//! # sim-core — the simulation spine shared by every layer of the stack
//!
//! Three small pieces every simulator crate in this workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time as **integer nanoseconds**
//!   (`u64`). Clocks across `sim-gpu`, `serving`, `cluster`, and
//!   `controller` all advance on this spine, so equal instants compare
//!   *exactly* equal on every platform: "bit-deterministic per seed" is a
//!   guarantee of the arithmetic, not an accident of x87 rounding. Floating
//!   point appears only at two explicit, lossy boundaries — model outputs
//!   coming in ([`SimDuration::from_ns_f64`]) and metrics going out
//!   ([`SimTime::as_ns_f64`], [`SimDuration::as_ms_f64`]).
//! * [`EventQueue`] — a binary heap keyed on `(SimTime, sequence)`. Events
//!   scheduled for the same instant pop in insertion order, which makes the
//!   event order of a whole fleet run a pure function of its inputs.
//! * [`stats`] — the NaN-guarded sample statistics (nearest-rank
//!   percentiles, guarded means) previously duplicated across the serving,
//!   cluster, and controller metrics modules. [`stats::Samples`] sorts once
//!   and answers any number of quantile queries.
//!
//! ## Example
//!
//! ```
//! use sim_core::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! let t = SimTime::ZERO + SimDuration::from_ns(500);
//! queue.push(t, "b");
//! queue.push(t, "c"); // same instant: pops after "b", deterministically
//! queue.push(SimTime::ZERO, "a");
//! let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, ["a", "b", "c"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cast;
mod event;
pub mod knobs;
pub mod par;
pub mod stats;
mod time;

pub use event::EventQueue;
pub use time::{SimDuration, SimTime};
