//! Offline calibration of the analytical decode-attention model.
//!
//! The analytical fidelity prices one decode step's attention with a
//! closed form fitted against the exact kernel simulator:
//!
//! ```text
//! kernel_ns(batch, kv_total, kv_max) ≈ max(
//!     attn_floor,                                              # latency floor
//!     chain_base + chain_per_kv_token·kv_max,                  # longest chain
//!     attn_base + attn_per_query·batch + attn_per_kv_token·kv_total,
//! )                                                            # bandwidth
//! sched_ns(batch) ≈ sched_base + sched_per_query·batch
//! ```
//!
//! where `kv_total` is the total KV tokens read by the step and `kv_max`
//! the longest single request's KV length. The three-plane max is the
//! roofline argument applied regime by regime: tiny steps are pinned at a
//! fixed pipeline-fill/launch latency; a batch dominated by one long
//! request is serialized on that request's tile chain (one CTA chain
//! cannot saturate HBM, so its slope is steeper than the aggregate one);
//! and large well-mixed batches are bandwidth-bound, with time set by
//! total KV bytes streamed from HBM plus per-query merge work.
//!
//! Coefficients are fitted offline by [`fit_entry`] — a deterministic,
//! seeded grid of synthetic decode batches timed on the exact simulator
//! with the PAT backend, solved by least squares in a fixed order — and
//! committed to `calibration.json` next to this crate. The committed table
//! is **ratcheted** like `simlint.baseline.json`: regenerating it must
//! reproduce the committed bytes exactly (see the `calibrate` binary's
//! `--check` mode and the drift test), so any change to the kernel
//! simulator that shifts the fit shows up as an explicit, reviewed diff.
//!
//! A model/GPU pair without a committed entry falls back to a pure
//! first-principles roofline ([`AttnCalibration::roofline`]) — sound but
//! less accurate, since it ignores L2 reuse and scheduling detail.

use attn_kernel::{simulate_plan, DecodeBatch};
use attn_math::HeadConfig;
use kv_cache::CacheManager;
use pat_core::LazyPat;
use serde::{Deserialize, Serialize};
use serving::ModelSpec;
use sim_core::cast::usize_to_u32;
use sim_gpu::{GpuModel, GpuSpec};

/// Documented relative-error bound of the analytical fidelity: on seeded
/// small fleets, analytical fleet-level mean TTFT and mean TPOT stay
/// within this fraction of the exact fidelity's values (validated by the
/// cross-fidelity tests and the `fig_fleet_scale` bench). Per-request
/// errors can exceed this; the bound is about fleet aggregates.
pub const ANALYTICAL_REL_ERROR_BOUND: f64 = 0.15;

/// Worst-case relative error the *per-step kernel* fit is allowed over its
/// own calibration grid. Looser than [`ANALYTICAL_REL_ERROR_BOUND`]: the
/// residual is concentrated in the floor→bandwidth transition of
/// microsecond-scale steps, where attention is a rounding error next to
/// the step's GEMM time, so per-step kernel misfit this size still leaves
/// fleet TTFT/TPOT aggregates well inside the tighter bound.
pub const KERNEL_FIT_REL_ERR_BOUND: f64 = 0.35;

/// Fitted closed-form attention coefficients for one (head config, GPU,
/// backend) triple. All times in nanoseconds, per layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttnCalibration {
    /// Lookup key: `"{heads}x{kv_heads}x{head_dim}@{gpu name}"`.
    pub key: String,
    /// Attention backend the fit was sampled with (`"PAT"`).
    pub backend: String,
    /// Minimum kernel time of any decode step (latency floor), ns.
    pub attn_floor_ns: f64,
    /// Intercept of the single-request chain plane, ns.
    pub chain_base_ns: f64,
    /// Serial cost per KV token along the longest request's chain, ns.
    pub chain_per_kv_token_ns: f64,
    /// Intercept of the bandwidth plane, ns.
    pub attn_base_ns: f64,
    /// Marginal kernel cost per decode query (bandwidth plane), ns.
    pub attn_per_query_ns: f64,
    /// Marginal kernel cost per total KV token read (bandwidth plane), ns.
    pub attn_per_kv_token_ns: f64,
    /// Fixed per-step exposed scheduling cost, ns.
    pub sched_base_ns: f64,
    /// Marginal scheduling cost per decode query, ns.
    pub sched_per_query_ns: f64,
    /// Grid samples the fit was solved over.
    pub samples: u64,
    /// Largest relative error of the fit across its own samples.
    pub max_fit_rel_err: f64,
}

impl AttnCalibration {
    /// Predicted kernel time (one layer) of a decode step reading
    /// `kv_total` KV tokens overall whose longest request holds `kv_max`:
    /// the max of the latency floor, the single-chain plane, and the
    /// bandwidth plane (see the module docs).
    pub fn kernel_ns(&self, queries: usize, kv_total: u64, kv_max: u64) -> f64 {
        let chain = self.chain_base_ns + self.chain_per_kv_token_ns * kv_max as f64;
        let bandwidth = self.attn_base_ns
            + self.attn_per_query_ns * queries as f64
            + self.attn_per_kv_token_ns * kv_total as f64;
        self.attn_floor_ns.max(chain).max(bandwidth)
    }

    /// Predicted exposed scheduling time of a decode step, ns.
    pub fn sched_ns(&self, queries: usize) -> f64 {
        self.sched_base_ns + self.sched_per_query_ns * queries as f64
    }

    /// First-principles fallback for an uncalibrated (model, GPU) pair:
    /// KV bytes over effective HBM bandwidth, pipeline-fill latency as the
    /// base, and fixed metadata-style scheduling costs. Ignores L2 reuse
    /// and per-query merge work — use a committed fit when accuracy
    /// matters.
    pub fn roofline(head: HeadConfig, gpu: &GpuSpec, dtype_bytes: usize) -> Self {
        let bytes_per_kv_token =
            2.0 * head.num_kv_heads() as f64 * head.head_dim() as f64 * dtype_bytes as f64;
        AttnCalibration {
            key: key_for(head, gpu),
            backend: "roofline".to_string(),
            attn_floor_ns: gpu.mem_latency_ns + gpu.kernel_launch_ns,
            chain_base_ns: 0.0,
            chain_per_kv_token_ns: 0.0,
            attn_base_ns: gpu.mem_latency_ns + gpu.kernel_launch_ns,
            attn_per_query_ns: 0.0,
            attn_per_kv_token_ns: bytes_per_kv_token / (gpu.global_bandwidth * gpu.dram_efficiency),
            sched_base_ns: 20_000.0,
            sched_per_query_ns: 300.0,
            samples: 0,
            max_fit_rel_err: f64::NAN,
        }
    }
}

/// The committed set of calibration entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTable {
    /// Format version (bump on schema change).
    pub version: u32,
    /// Fitted entries, sorted by key then backend.
    pub entries: Vec<AttnCalibration>,
}

impl CalibrationTable {
    /// The table committed at `crates/replica-fidelity/calibration.json`.
    /// A parse failure yields an empty table (every lookup then falls back
    /// to the roofline); the drift test pins the committed bytes, so this
    /// path is unreachable in a healthy checkout.
    pub fn committed() -> CalibrationTable {
        serde_json::from_str(COMMITTED_JSON).unwrap_or(CalibrationTable {
            version: 1,
            entries: Vec::new(),
        })
    }

    /// Finds the entry for `key`, preferring the PAT backend.
    pub fn lookup(&self, key: &str) -> Option<&AttnCalibration> {
        self.entries
            .iter()
            .find(|e| e.key == key && e.backend == "PAT")
            .or_else(|| self.entries.iter().find(|e| e.key == key))
    }

    /// Canonical JSON encoding (the exact bytes committed on disk).
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }
}

/// The raw committed calibration file.
pub const COMMITTED_JSON: &str = include_str!("../calibration.json");

/// Calibration lookup key for a sharded head configuration on a GPU.
pub fn key_for(head: HeadConfig, gpu: &GpuSpec) -> String {
    format!(
        "{}x{}x{}@{}",
        head.num_heads(),
        head.num_kv_heads(),
        head.head_dim(),
        gpu.name
    )
}

/// The per-TP-rank head shard the serving engine runs attention with.
pub fn shard_head(model: &ModelSpec, tp: usize) -> HeadConfig {
    let full = model.head;
    HeadConfig::new(
        (full.num_heads() / tp.max(1)).max(1),
        (full.num_kv_heads() / tp.max(1)).max(1),
        full.head_dim(),
    )
}

/// Solves the least-squares system `X·beta ≈ y` for `N` coefficients via
/// normal equations and Gaussian elimination with partial pivoting, in a
/// fixed operation order (deterministic across platforms).
fn least_squares<const N: usize>(rows: &[([f64; N], f64)]) -> [f64; N] {
    let mut ata = [[0.0f64; N]; N];
    let mut aty = [0.0f64; N];
    for (x, y) in rows {
        for i in 0..N {
            for j in 0..N {
                ata[i][j] += x[i] * x[j];
            }
            aty[i] += x[i] * y;
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..N {
        let mut pivot = col;
        for row in (col + 1)..N {
            if ata[row][col].abs() > ata[pivot][col].abs() {
                pivot = row;
            }
        }
        ata.swap(col, pivot);
        aty.swap(col, pivot);
        let diag = ata[col][col];
        if diag.abs() < 1e-12 {
            continue; // Degenerate column: leave coefficient at zero.
        }
        for row in (col + 1)..N {
            let factor = ata[row][col] / diag;
            let (upper, lower) = ata.split_at_mut(row);
            for (k, cell) in lower[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * upper[col][k];
            }
            aty[row] -= factor * aty[col];
        }
    }
    let mut beta = [0.0f64; N];
    for col in (0..N).rev() {
        let mut acc = aty[col];
        for k in (col + 1)..N {
            acc -= ata[col][k] * beta[k];
        }
        beta[col] = if ata[col][col].abs() < 1e-12 {
            0.0
        } else {
            acc / ata[col][col]
        };
    }
    beta
}

/// Decode batch sizes sampled by the calibration grid.
const GRID_QUERIES: [usize; 10] = [1, 2, 4, 8, 16, 24, 32, 48, 64, 128];
/// Per-request KV lengths sampled by the calibration grid.
const GRID_KV: [usize; 5] = [64, 256, 1024, 2048, 4096];
/// Single-request samples with at least this much KV fit the chain plane
/// (shorter chains sit on the latency floor and would bias the slope).
const CHAIN_FIT_MIN_KV: usize = 1024;
/// Multi-request samples reading at least this much total KV fit the
/// bandwidth plane (smaller steps are latency- or chain-bound).
const BW_FIT_MIN_KV_TOTAL: u64 = 4096;

/// Fits one calibration entry for `model` sharded `tp` ways on `gpu` with
/// the PAT backend, by timing a fixed grid of synthetic decode batches on
/// the exact kernel simulator. Deterministic: same inputs, same bytes out.
pub fn fit_entry(model: &ModelSpec, gpu: &GpuSpec, tp: usize) -> AttnCalibration {
    let head = shard_head(model, tp);
    let dtype_bytes = 2usize;
    let mut bw_rows: Vec<([f64; 3], f64)> = Vec::new();
    let mut chain_rows: Vec<([f64; 2], f64)> = Vec::new();
    let mut sched_rows: Vec<([f64; 2], f64)> = Vec::new();
    // (queries, kv_total, kv_max, total_ns) per grid sample.
    let mut raw: Vec<(usize, u64, u64, f64)> = Vec::new();
    let mut floor = f64::INFINITY;
    let mut next_token: u32 = 1;
    for &queries in GRID_QUERIES.iter() {
        for &kv_len in GRID_KV.iter() {
            // Distinct tokens per request, so no prefix sharing perturbs
            // the block tables.
            let blocks_needed = queries * kv_len.div_ceil(16) + 16;
            let mut cache = CacheManager::new(blocks_needed, 16);
            let mut tables = Vec::with_capacity(queries);
            for _ in 0..queries {
                let tokens: Vec<u32> = (next_token..next_token + usize_to_u32(kv_len)).collect();
                next_token += usize_to_u32(kv_len);
                match cache.insert_sequence(&tokens) {
                    Ok(table) => tables.push(table),
                    Err(_) => continue,
                }
            }
            if tables.is_empty() {
                continue;
            }
            let batch = DecodeBatch::new(head, tables, dtype_bytes);
            let mut pat = LazyPat::new();
            let plan = pat.plan(&batch, gpu);
            let Ok(report) = simulate_plan(&batch, &plan, gpu) else {
                continue;
            };
            let queries = batch.num_queries();
            let kv_total = (queries * kv_len) as u64;
            let kv_max = kv_len as u64;
            let kernel = (report.total_ns - report.scheduling_ns).max(1.0);
            floor = floor.min(kernel);
            // Each plane is fitted only where it binds, with rows divided
            // by the actual so least squares minimizes *relative* error
            // and cheap steps are fitted as faithfully as expensive ones.
            if queries == 1 && kv_len >= CHAIN_FIT_MIN_KV {
                chain_rows.push(([1.0 / kernel, kv_max as f64 / kernel], 1.0));
            }
            if queries >= 2 && kv_total >= BW_FIT_MIN_KV_TOTAL {
                bw_rows.push((
                    [
                        1.0 / kernel,
                        queries as f64 / kernel,
                        kv_total as f64 / kernel,
                    ],
                    1.0,
                ));
            }
            sched_rows.push(([1.0, queries as f64], report.scheduling_ns));
            raw.push((queries, kv_total, kv_max, report.total_ns));
        }
    }
    let [chain_base, chain_per_kv] = least_squares::<2>(&chain_rows);
    let [attn_base, attn_per_query, attn_per_kv] = least_squares::<3>(&bw_rows);
    let [sched_base, sched_per_query] = least_squares::<2>(&sched_rows);
    let fitted = AttnCalibration {
        key: key_for(head, gpu),
        backend: "PAT".to_string(),
        attn_floor_ns: if floor.is_finite() { floor } else { 0.0 },
        chain_base_ns: chain_base,
        chain_per_kv_token_ns: chain_per_kv,
        attn_base_ns: attn_base,
        attn_per_query_ns: attn_per_query,
        attn_per_kv_token_ns: attn_per_kv,
        sched_base_ns: sched_base,
        sched_per_query_ns: sched_per_query,
        samples: raw.len() as u64,
        max_fit_rel_err: 0.0,
    };
    let max_rel_err = raw
        .iter()
        .map(|&(q, kv_total, kv_max, actual)| {
            let pred = fitted.kernel_ns(q, kv_total, kv_max) + fitted.sched_ns(q);
            ((pred - actual) / actual).abs()
        })
        .fold(0.0f64, f64::max);
    AttnCalibration {
        max_fit_rel_err: max_rel_err,
        ..fitted
    }
}

/// Regenerates the full calibration table (the `calibrate` binary's
/// payload): one entry per curated hardware model ([`GpuModel::all`]), so
/// the analytical fidelity stays calibrated whatever `PAT_GPU_MODEL`
/// selects. Keys carry the spec name, so adding a model extends the table
/// without disturbing existing entries' fitted bytes.
pub fn generate_table() -> CalibrationTable {
    let entries = GpuModel::all()
        .iter()
        .map(|m| fit_entry(&ModelSpec::llama3_8b(), &m.spec(), 1))
        .collect();
    CalibrationTable {
        version: 1,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_linear_data() {
        // y = 10 + 2·a + 0.5·b, no noise.
        let rows: Vec<([f64; 3], f64)> = (0..20)
            .map(|i| {
                let a = (i % 5) as f64;
                let b = (i * 7 % 13) as f64;
                ([1.0, a, b], 10.0 + 2.0 * a + 0.5 * b)
            })
            .collect();
        let [c0, c1, c2] = least_squares::<3>(&rows);
        assert!((c0 - 10.0).abs() < 1e-6, "{c0}");
        assert!((c1 - 2.0).abs() < 1e-6, "{c1}");
        assert!((c2 - 0.5).abs() < 1e-6, "{c2}");
    }

    #[test]
    fn committed_table_parses_and_covers_the_default_config() {
        let table = CalibrationTable::committed();
        assert!(!table.entries.is_empty(), "committed table must parse");
        let key = key_for(
            shard_head(&ModelSpec::llama3_8b(), 1),
            &GpuSpec::a100_sxm4_80gb(),
        );
        let entry = table.lookup(&key);
        assert!(entry.is_some(), "default config must be calibrated");
        if let Some(e) = entry {
            assert!(e.attn_per_kv_token_ns > 0.0);
            assert!(
                e.max_fit_rel_err < KERNEL_FIT_REL_ERR_BOUND,
                "fit error {} exceeds the documented bound",
                e.max_fit_rel_err
            );
            assert!(e.attn_per_query_ns > 0.0, "per-query cost must be physical");
            assert!(e.chain_per_kv_token_ns > e.attn_per_kv_token_ns);
        }
    }

    #[test]
    fn committed_table_matches_regeneration_ratchet() {
        // The drift ratchet: regenerating the table must reproduce the
        // committed bytes exactly. If this fails, a kernel-simulator or
        // cost change shifted the fit — rerun `cargo run -p
        // replica-fidelity --bin calibrate` and review the diff.
        let regenerated = generate_table().to_canonical_json();
        assert_eq!(
            regenerated, COMMITTED_JSON,
            "calibration.json is stale; regenerate with the calibrate binary"
        );
    }

    #[test]
    fn roofline_fallback_is_monotone_in_kv() {
        let head = shard_head(&ModelSpec::llama3_8b(), 1);
        let gpu = GpuSpec::a100_sxm4_80gb();
        let cal = AttnCalibration::roofline(head, &gpu, 2);
        assert!(cal.kernel_ns(8, 100_000, 12_500) > cal.kernel_ns(8, 10_000, 1_250));
        assert!(cal.sched_ns(64) > cal.sched_ns(1));
    }
}
