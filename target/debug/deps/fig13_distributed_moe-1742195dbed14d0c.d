/root/repo/target/debug/deps/fig13_distributed_moe-1742195dbed14d0c.d: crates/bench/benches/fig13_distributed_moe.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_distributed_moe-1742195dbed14d0c.rmeta: crates/bench/benches/fig13_distributed_moe.rs Cargo.toml

crates/bench/benches/fig13_distributed_moe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
