//! Failover & autoscaling (extension): a managed fleet vs a static fleet
//! through a replica crash and a 4x load burst.
//!
//! Both fleets serve the identical toolagent request stream and suffer the
//! identical fault: replica 0 dies at t = 8 s (taking its warm prefix cache
//! and everything in flight with it) and comes back cold 10 s later. At
//! t = 20..28 s the arrival rate quadruples. The managed fleet runs health
//! checks, failover, an SLO-aware autoscaler, and admission control; the
//! static fleet is the classic fixed-size round-robin deployment that keeps
//! addressing the dead replica until it returns.
//!
//! Reported per phase (steady / crash / burst / overall): goodput (share of
//! offered requests finishing their first token within the TTFT SLO,
//! measured from original arrival) and P99 TTFT. The managed fleet must win
//! both in the crash and burst phases. Results are persisted to
//! `target/bench-results/fig_failover.json` and, for the committed record,
//! `BENCH_failover.json` at the repository root. The run is seeded and
//! virtual-time only, so both files are bit-stable across reruns.
//!
//! Set `PAT_BENCH_SMOKE=1` to run a scaled-down scenario (a few seconds of
//! trace) that exercises the whole pipeline without the full workload — CI
//! uses it as a build-and-run smoke test. Smoke mode never touches the
//! committed `BENCH_failover.json` and skips the managed-beats-static
//! assertion (the tiny trace is too short for stable phase comparisons).

use cluster::{PrefixAffinity, RoundRobin, Router};
use controller::{
    window_stats, AdmissionConfig, AutoscalerConfig, ControlResult, ControllerConfig, FaultEvent,
    FaultKind, FaultPlan, FleetController,
};
use pat_bench::{banner, save_json};
use rand::SeedableRng;
use serde::Serialize;
use serving::{ModelSpec, ServingConfig};
use workloads::{generate_trace_at, Burst, BurstyArrivals, TraceKind};

const SEED: u64 = 4242;
const REPLICAS: usize = 4;
const BURST_X: f64 = 4.0;
const SLO_TTFT_MS: f64 = 500.0;

/// The shape of one failover scenario: load, burst window, crash timing.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    base_rate: f64,
    duration_s: f64,
    burst_from_s: f64,
    burst_to_s: f64,
    crash_at_s: f64,
    restart_after_s: f64,
}

/// The committed Fig.-class scenario behind `BENCH_failover.json`.
const FULL: Scenario = Scenario {
    base_rate: 12.0,
    duration_s: 36.0,
    burst_from_s: 20.0,
    burst_to_s: 28.0,
    crash_at_s: 8.0,
    restart_after_s: 10.0,
};

/// A few seconds of trace through the same pipeline — enough to smoke-test
/// the build in CI, far too short for stable phase comparisons.
const SMOKE: Scenario = Scenario {
    base_rate: 4.0,
    duration_s: 8.0,
    burst_from_s: 4.0,
    burst_to_s: 6.0,
    crash_at_s: 2.0,
    restart_after_s: 2.0,
};

#[derive(Debug, Clone, Serialize)]
struct PhaseRow {
    fleet: String,
    phase: String,
    from_s: f64,
    to_s: f64,
    offered: usize,
    completed: usize,
    within_slo: usize,
    goodput: f64,
    p99_ttft_ms: f64,
    mean_ttft_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct FleetSummary {
    fleet: String,
    goodput: f64,
    offered: usize,
    completed: usize,
    shed: usize,
    lost: usize,
    unfinished: usize,
    failovers: usize,
    refilled_prefill_tokens: u64,
    crashes: usize,
    scale_ups: usize,
    scale_downs: usize,
    peak_replicas: usize,
    p99_ttft_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct FailoverReport {
    slo_ttft_ms: f64,
    phases: Vec<PhaseRow>,
    fleets: Vec<FleetSummary>,
}

fn faults(sc: &Scenario) -> FaultPlan {
    FaultPlan::scripted(vec![FaultEvent {
        at_s: sc.crash_at_s,
        kind: FaultKind::Crash {
            replica: 0,
            restart_after_s: Some(sc.restart_after_s),
        },
    }])
}

fn managed_config() -> ControllerConfig {
    let engine = ServingConfig::single_gpu(ModelSpec::llama3_8b());
    let mut config = ControllerConfig::managed(REPLICAS, engine);
    config.slo_ttft_ms = SLO_TTFT_MS;
    let mut autoscaler = AutoscalerConfig::new(REPLICAS, REPLICAS + 4);
    autoscaler.scale_up_outstanding = 16.0;
    autoscaler.scale_down_outstanding = 2.0;
    autoscaler.provision_delay_s = 2.0;
    autoscaler.cooldown_s = 3.0;
    config.autoscaler = Some(autoscaler);
    config.admission = Some(AdmissionConfig {
        max_outstanding_per_replica: 96,
        max_queued: 512,
    });
    config
}

fn static_config() -> ControllerConfig {
    let engine = ServingConfig::single_gpu(ModelSpec::llama3_8b());
    let mut config = ControllerConfig::static_fleet(REPLICAS, engine);
    config.slo_ttft_ms = SLO_TTFT_MS;
    config
}

fn phase_rows(
    fleet: &str,
    sc: &Scenario,
    trace: &[workloads::Request],
    result: &ControlResult,
    rows: &mut Vec<PhaseRow>,
) {
    let phases = [
        ("steady", 0.0, sc.crash_at_s),
        ("crash", sc.crash_at_s, sc.crash_at_s + sc.restart_after_s),
        ("burst", sc.burst_from_s, sc.burst_to_s),
        ("overall", 0.0, sc.duration_s),
    ];
    for (phase, from_s, to_s) in phases {
        let w = window_stats(trace, result, from_s, to_s);
        rows.push(PhaseRow {
            fleet: fleet.to_string(),
            phase: phase.to_string(),
            from_s,
            to_s,
            offered: w.offered,
            completed: w.completed,
            within_slo: w.within_slo,
            goodput: w.goodput,
            p99_ttft_ms: w.p99_ttft_ms,
            mean_ttft_ms: w.mean_ttft_ms,
        });
    }
}

fn summarize(fleet: &str, r: &ControlResult) -> FleetSummary {
    // Conservation: every offered request lands in exactly one bucket.
    assert_eq!(
        r.offered,
        r.completed + r.shed + r.lost + r.unfinished,
        "{fleet}: request accounting does not balance"
    );
    FleetSummary {
        fleet: fleet.to_string(),
        goodput: r.goodput,
        offered: r.offered,
        completed: r.completed,
        shed: r.shed,
        lost: r.lost,
        unfinished: r.unfinished,
        failovers: r.failovers,
        refilled_prefill_tokens: r.refilled_prefill_tokens,
        crashes: r.crashes,
        scale_ups: r.scale_ups,
        scale_downs: r.scale_downs,
        peak_replicas: r.peak_replicas,
        p99_ttft_ms: r.fleet.p99_ttft_ms,
    }
}

fn main() {
    let smoke = sim_core::knobs::flag("PAT_BENCH_SMOKE");
    let sc = if smoke { SMOKE } else { FULL };
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let arrivals = BurstyArrivals::new(
        sc.base_rate,
        vec![Burst {
            start_s: sc.burst_from_s,
            end_s: sc.burst_to_s,
            multiplier: BURST_X,
        }],
    )
    .take_until(sc.duration_s, &mut rng);
    let trace = generate_trace_at(TraceKind::ToolAgent, &arrivals, SEED);
    banner(&format!(
        "Failover & autoscaling{} — {} requests over {:.0} s \
         ({:.0} req/s base, {BURST_X:.0}x burst at {:.0}-{:.0} s), \
         crash at {:.0} s, restart +{:.0} s",
        if smoke { " (smoke)" } else { "" },
        trace.len(),
        sc.duration_s,
        sc.base_rate,
        sc.burst_from_s,
        sc.burst_to_s,
        sc.crash_at_s,
        sc.restart_after_s,
    ));

    // The two fleets are independent simulations over the same trace: fan
    // them across the sim_core::par workers (results merge in input order,
    // so output is identical at any PAT_SIM_THREADS).
    let mut results = sim_core::par::ordered_map(&[true, false], |_, &is_managed| {
        if is_managed {
            let router: Box<dyn Router> = Box::new(PrefixAffinity::new());
            FleetController::with_lazy_pat(managed_config(), router, faults(&sc)).run(&trace)
        } else {
            let router: Box<dyn Router> = Box::new(RoundRobin::new());
            FleetController::with_lazy_pat(static_config(), router, faults(&sc)).run(&trace)
        }
    });
    let static_fleet = results.pop().expect("two fleets simulated");
    let managed = results.pop().expect("two fleets simulated");

    let mut phases: Vec<PhaseRow> = Vec::new();
    phase_rows("managed", &sc, &trace, &managed, &mut phases);
    phase_rows("static", &sc, &trace, &static_fleet, &mut phases);

    println!(
        "{:<9} {:<8} {:>8} {:>9} {:>9} {:>9} {:>12}",
        "fleet", "phase", "offered", "done", "in-SLO", "goodput", "P99 TTFT(ms)"
    );
    for row in &phases {
        println!(
            "{:<9} {:<8} {:>8} {:>9} {:>9} {:>8.1}% {:>12.0}",
            row.fleet,
            row.phase,
            row.offered,
            row.completed,
            row.within_slo,
            100.0 * row.goodput,
            row.p99_ttft_ms,
        );
    }

    banner("fleet summaries");
    for (name, r) in [("managed", &managed), ("static", &static_fleet)] {
        println!(
            "{name:<9} goodput {:>5.1}% | completed {} shed {} lost {} unfinished {} | \
             failovers {} (re-prefilled {} tokens) | scale-ups {} downs {} peak {} replicas",
            100.0 * r.goodput,
            r.completed,
            r.shed,
            r.lost,
            r.unfinished,
            r.failovers,
            r.refilled_prefill_tokens,
            r.scale_ups,
            r.scale_downs,
            r.peak_replicas,
        );
    }

    banner("managed vs static, phase by phase");
    let mut all_hold = true;
    for phase in ["crash", "burst"] {
        let get = |fleet: &str| {
            phases
                .iter()
                .find(|r| r.fleet == fleet && r.phase == phase)
                .expect("filled above")
        };
        let (m, s) = (get("managed"), get("static"));
        let goodput_ok = m.goodput > s.goodput;
        let p99_ok = m.p99_ttft_ms < s.p99_ttft_ms;
        all_hold &= goodput_ok && p99_ok;
        println!(
            "{phase:<7}: goodput {:>5.1}% vs {:>5.1}% ({}) | P99 TTFT {:>7.0} vs {:>7.0} ms ({})",
            100.0 * m.goodput,
            100.0 * s.goodput,
            if goodput_ok { "better" } else { "WORSE" },
            m.p99_ttft_ms,
            s.p99_ttft_ms,
            if p99_ok { "better" } else { "WORSE" },
        );
    }
    println!(
        "managed fleet {} the static fleet on goodput and P99 TTFT through both disruptions",
        if all_hold { "beats" } else { "does NOT beat" }
    );
    assert!(
        smoke || all_hold,
        "regression: the control plane no longer pays for itself"
    );

    let report = FailoverReport {
        slo_ttft_ms: SLO_TTFT_MS,
        phases,
        fleets: vec![
            summarize("managed", &managed),
            summarize("static", &static_fleet),
        ],
    };
    save_json("fig_failover", &report).expect("persist bench results");
    if smoke {
        println!("smoke run complete; committed BENCH_failover.json left untouched");
        return;
    }
    // Also keep a committed copy at the repository root: the scenario is
    // fully seeded, so this file is reproducible bit for bit.
    let root_copy =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_failover.json");
    std::fs::write(
        &root_copy,
        pat_bench::artifact_json(&report).expect("serializable"),
    )
    .expect("write BENCH_failover.json");
    println!("wrote {}", root_copy.display());
}
