//! Trace persistence: JSONL serialization of request streams.
//!
//! Generated traces can be saved and replayed exactly — one request per
//! line — so serving experiments are reproducible and shareable without
//! regenerating from seeds.

use crate::requests::Request;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a trace as JSON Lines (one request per line).
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_trace<P: AsRef<Path>>(path: P, requests: &[Request]) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for request in requests {
        let line = serde_json::to_string(request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads a JSONL trace written by [`save_trace`].
///
/// # Errors
///
/// Returns any I/O or deserialization error; requests must be sorted by
/// arrival time (validated).
pub fn load_trace<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<Request>> {
    let reader = BufReader::new(File::open(path)?);
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request: Request = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", i + 1),
            )
        })?;
        requests.push(request);
    }
    if !requests
        .windows(2)
        .all(|w| w[0].arrival_s <= w[1].arrival_s)
    {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "trace is not sorted by arrival time",
        ));
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_trace, TraceConfig, TraceKind};

    #[test]
    fn round_trip_preserves_everything() {
        let requests = generate_trace(TraceConfig {
            kind: TraceKind::ToolAgent,
            rate_per_s: 8.0,
            duration_s: 10.0,
            seed: 3,
        });
        let dir = std::env::temp_dir().join("pat-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toolagent.jsonl");
        save_trace(&path, &requests).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(loaded, requests);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsorted_traces_are_rejected() {
        let mut requests = generate_trace(TraceConfig {
            kind: TraceKind::QwenA,
            rate_per_s: 5.0,
            duration_s: 5.0,
            seed: 3,
        });
        requests.reverse();
        let dir = std::env::temp_dir().join("pat-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unsorted.jsonl");
        save_trace(&path, &requests).unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let dir = std::env::temp_dir().join("pat-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blank.jsonl");
        std::fs::write(&path, "\n\n").unwrap();
        assert!(load_trace(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
