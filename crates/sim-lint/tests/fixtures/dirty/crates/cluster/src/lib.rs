//! Fixture: R2 (hash iteration) and R4 (unwrap) positives, one honored
//! waiver, one malformed waiver, and test-code negatives.
use std::collections::HashMap;

/// Sums map values in nondeterministic order (R2).
pub fn sum_values(map: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in map.iter() {
        total += v;
    }
    total
}

/// Waived iteration: the reduction is commutative.
pub fn sum_waived(map: &HashMap<u64, u64>) -> u64 {
    // simlint: allow(R2) -- summing u64s is order-independent
    map.values().sum()
}

/// A waiver without a reason is not honored (R2 still fires).
pub fn sum_badly_waived(map: &HashMap<u64, u64>) -> u64 {
    // simlint: allow(R2)
    map.values().sum()
}

/// Unwraps in library code (R4).
pub fn first_char(s: &str) -> char {
    s.chars().next().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
