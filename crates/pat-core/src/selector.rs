//! The runtime tile-size selector (§5.2).
//!
//! Given the feasible (performance-equivalent) tile suite from the offline
//! solver, assigns each CTA an `(m, n)`:
//!
//! * **Q tile `m` — round-up rule**: the smallest feasible `m` holding the
//!   CTA's query rows, avoiding both row-splitting (which would re-load the
//!   shared KV) and oversized tiles (which waste on-chip memory needed for
//!   `n`).
//! * **KV tile `n` — piecewise decision tree**: short KV prefers small `n`
//!   (the last tile's compute is exposed: at KV 192, n=128 wastes ~50% of the
//!   final tile while n=64 divides evenly), long KV prefers large `n` (lower
//!   concurrency per SM, more bandwidth per CTA, smaller tail bubbles). The
//!   thresholds are the offline-profiled stabilization points.

use attn_kernel::TileConfig;
use std::collections::BTreeSet;
use std::fmt;

/// Typed tile-selection failure.
///
/// Historically the no-feasible-tile paths were a panic/`None` split
/// (`TileSelector::new` panicked on an empty suite while `select` returned
/// `Option`); callers now get one error type they can surface — the serving
/// engine records it in `SimulationResult::plan_error` instead of crashing
/// the replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// The offline solver found no feasible tile configuration at all for
    /// the device/geometry (every grid point violates constraints ①–③).
    EmptySuite,
    /// A CTA's query rows exceed the largest feasible Q tile; the caller
    /// must row-split (via [`crate::enforce_row_limit`]) before selection.
    RowsExceedMaxM {
        /// Query rows requested.
        rows: usize,
        /// Largest feasible `m` in the suite.
        max_m: usize,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::EmptySuite => {
                write!(f, "no feasible tile configuration for this device/geometry")
            }
            TileError::RowsExceedMaxM { rows, max_m } => write!(
                f,
                "{rows} query rows exceed the largest feasible Q tile m={max_m} (row-split first)"
            ),
        }
    }
}

impl std::error::Error for TileError {}

/// The runtime tile selector over a feasible tile suite.
///
/// # Examples
///
/// ```
/// use attn_kernel::TileConfig;
/// use pat_core::{TileSelector, TileSolver};
/// use sim_gpu::GpuSpec;
///
/// let solver = TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2);
/// let selector = TileSelector::new(solver.feasible_tiles()).unwrap();
/// // 20 query rows round up to m=32; KV 192 picks n=64 (divides evenly).
/// assert_eq!(selector.select(20, 192), Ok(TileConfig::new(32, 64)));
/// ```
#[derive(Debug, Clone)]
pub struct TileSelector {
    feasible: Vec<TileConfig>,
    m_options: Vec<usize>,
}

impl TileSelector {
    /// Creates a selector over `feasible` tiles (from [`crate::TileSolver`]).
    /// An empty suite is [`TileError::EmptySuite`].
    pub fn new(feasible: Vec<TileConfig>) -> Result<Self, TileError> {
        if feasible.is_empty() {
            return Err(TileError::EmptySuite);
        }
        let m_options: Vec<usize> = feasible
            .iter()
            .map(|t| t.m)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        Ok(TileSelector {
            feasible,
            m_options,
        })
    }

    /// The feasible suite.
    pub fn feasible(&self) -> &[TileConfig] {
        &self.feasible
    }

    /// Largest feasible Q tile (the row-split threshold for the packer).
    pub fn max_m(&self) -> usize {
        // Non-empty by construction.
        self.m_options.last().copied().unwrap_or(0)
    }

    /// Round-up rule: smallest feasible `m ≥ query_rows`.
    pub fn select_m(&self, query_rows: usize) -> Option<usize> {
        self.m_options.iter().copied().find(|&m| m >= query_rows)
    }

    /// The offline-profiled KV-length → preferred-`n` decision tree.
    pub fn preferred_n(kv_len: usize) -> usize {
        match kv_len {
            0..=95 => 16,
            96..=191 => 32,
            192..=767 => 64,
            _ => 128,
        }
    }

    /// Selects the `(m, n)` pair for a CTA with `query_rows` rows over
    /// `kv_len` KV tokens. [`TileError::RowsExceedMaxM`] when `query_rows`
    /// exceeds the largest feasible `m` (the caller must row-split first).
    pub fn select(&self, query_rows: usize, kv_len: usize) -> Result<TileConfig, TileError> {
        let m = self.select_m(query_rows).ok_or(TileError::RowsExceedMaxM {
            rows: query_rows,
            max_m: self.max_m(),
        })?;
        let cap = Self::preferred_n(kv_len);
        // Largest feasible n ≤ cap for this m; fall back to the smallest
        // available n when the cap excludes everything (e.g. m=64 has no
        // n=16 tile on A100).
        let mut candidates: Vec<usize> = self
            .feasible
            .iter()
            .filter(|t| t.m == m)
            .map(|t| t.n)
            .collect();
        candidates.sort_unstable();
        let n = candidates
            .iter()
            .copied()
            .rfind(|&n| n <= cap)
            .or_else(|| candidates.first().copied())
            .ok_or(TileError::EmptySuite)?;
        Ok(TileConfig::new(m, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TileSolver;
    use sim_gpu::GpuSpec;

    fn selector() -> TileSelector {
        let solver = TileSolver::new(GpuSpec::a100_sxm4_80gb(), 128, 2);
        TileSelector::new(solver.feasible_tiles()).unwrap()
    }

    #[test]
    fn round_up_rule_matches_paper_example() {
        // §5.2: q = 20 chooses m = 32, not 16 (splitting) nor 64/128 (waste).
        let s = selector();
        assert_eq!(s.select_m(20), Some(32));
        assert_eq!(s.select_m(1), Some(16));
        assert_eq!(s.select_m(16), Some(16));
        assert_eq!(s.select_m(33), Some(64));
        assert_eq!(s.select_m(64), Some(64));
        assert_eq!(s.select_m(65), None, "row split required above max m");
    }

    #[test]
    fn kv_192_prefers_n_64_over_128() {
        // §5.2: at KV 192, n=128 leaves a 50% compute bubble in the last
        // tile; n=64 divides evenly and is performance-equivalent.
        let s = selector();
        let tile = s.select(16, 192).unwrap();
        assert_eq!(tile.n, 64);
    }

    #[test]
    fn long_kv_prefers_large_n() {
        let s = selector();
        assert_eq!(s.select(16, 4096).unwrap().n, 128);
        assert_eq!(s.select(16, 1024).unwrap().n, 128);
    }

    #[test]
    fn short_kv_prefers_small_n() {
        let s = selector();
        assert_eq!(s.select(16, 64).unwrap().n, 16);
        assert_eq!(s.select(16, 128).unwrap().n, 32);
    }

    #[test]
    fn m64_falls_back_to_smallest_available_n() {
        // (64,16) is infeasible on A100; short-KV CTAs with 64 rows take the
        // smallest feasible n for m=64 instead (32).
        let s = selector();
        let tile = s.select(64, 64).unwrap();
        assert_eq!(tile.m, 64);
        assert_eq!(tile.n, 32);
    }

    #[test]
    fn max_m_reflects_suite() {
        assert_eq!(selector().max_m(), 64);
    }

    #[test]
    fn empty_suite_is_a_typed_error() {
        assert_eq!(
            TileSelector::new(vec![]).unwrap_err(),
            TileError::EmptySuite
        );
    }

    #[test]
    fn oversized_rows_are_a_typed_error() {
        let s = selector();
        assert_eq!(
            s.select(65, 1024),
            Err(TileError::RowsExceedMaxM {
                rows: 65,
                max_m: 64
            })
        );
    }

    #[test]
    fn tile_error_displays_context() {
        let e = TileError::RowsExceedMaxM {
            rows: 65,
            max_m: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("65") && msg.contains("64"), "{msg}");
        assert!(TileError::EmptySuite.to_string().contains("no feasible"));
    }
}
