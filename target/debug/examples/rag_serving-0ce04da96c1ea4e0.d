/root/repo/target/debug/examples/rag_serving-0ce04da96c1ea4e0.d: examples/rag_serving.rs Cargo.toml

/root/repo/target/debug/examples/librag_serving-0ce04da96c1ea4e0.rmeta: examples/rag_serving.rs Cargo.toml

examples/rag_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
