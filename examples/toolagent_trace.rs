//! Tool-agent serving scenario: replays the toolagent trace model (multiple
//! task-specific system prompts, §8.2) through the continuous-batching
//! serving simulator with four attention backends.
//!
//! Run with `cargo run --release --example toolagent_trace`.

use pat::prelude::*;
use serving::{ServingAttention, Stateless};

fn main() {
    let requests = generate_trace(TraceConfig {
        kind: TraceKind::ToolAgent,
        rate_per_s: 6.0,
        duration_s: 20.0,
        seed: 42,
    });
    println!(
        "toolagent trace: {} requests over 20 s (mean prompt {} tokens)",
        requests.len(),
        requests
            .iter()
            .map(|r| r.prompt.total_tokens())
            .sum::<usize>()
            / requests.len().max(1)
    );

    let config = ServingConfig::single_gpu(ModelSpec::llama3_8b());
    let mut systems: Vec<(&str, Box<dyn ServingAttention>)> = vec![
        ("PAT", Box::new(LazyPat::new())),
        ("FlashAttention", Box::new(Stateless(FlashAttention::new()))),
        ("FlashInfer", Box::new(Stateless(FlashInfer::new()))),
        ("DeFT", Box::new(Stateless(Deft::new()))),
    ];
    println!(
        "\n{:<16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "backend", "TTFT (ms)", "TPOT (ms)", "P99 TPOT", "steps", "mean batch"
    );
    let mut pat_tpot = None;
    for (name, system) in systems.iter_mut() {
        let result = simulate_serving(&config, system.as_mut(), &requests);
        println!(
            "{:<16} {:>12.1} {:>12.2} {:>12.2} {:>12} {:>10.1}",
            name,
            result.metrics.mean_ttft_ms,
            result.metrics.mean_tpot_ms,
            result.metrics.p99_tpot_ms,
            result.decode_steps,
            result.mean_batch
        );
        match pat_tpot {
            None => pat_tpot = Some(result.metrics.mean_tpot_ms),
            Some(p) => println!(
                "                 -> PAT is {:.1}% faster per output token",
                (1.0 - p / result.metrics.mean_tpot_ms) * 100.0
            ),
        }
    }
}
