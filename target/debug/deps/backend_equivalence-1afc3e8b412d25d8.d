/root/repo/target/debug/deps/backend_equivalence-1afc3e8b412d25d8.d: tests/backend_equivalence.rs

/root/repo/target/debug/deps/backend_equivalence-1afc3e8b412d25d8: tests/backend_equivalence.rs

tests/backend_equivalence.rs:
