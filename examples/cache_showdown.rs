//! Prefix-reuse showdown: replays a trace through both KV-cache designs —
//! the vLLM-style hash-chained cache and the SGLang-style radix trie — and
//! shows that while both collapse the physical footprint, neither reduces
//! what a prefix-oblivious attention kernel must *load* (§3.1): only PAT's
//! packing does.
//!
//! Run with `cargo run --release --example cache_showdown`.

use kv_cache::RadixCache;
use pat::prelude::*;

fn main() {
    let requests = generate_trace(TraceConfig {
        kind: TraceKind::QwenB,
        rate_per_s: 10.0,
        duration_s: 30.0,
        seed: 9,
    });
    println!("qwen-b trace: {} requests\n", requests.len());

    let mut hash = CacheManager::new(2_000_000, 16);
    let mut radix = RadixCache::new(2_000_000, 16);
    let mut tables = Vec::new();
    for r in &requests {
        let tokens = r.prompt.to_tokens();
        tables.push(hash.insert_sequence(&tokens).expect("pool sized"));
        radix.insert_sequence(&tokens).expect("pool sized");
    }
    let logical_blocks: usize = tables.iter().map(|t| t.blocks().len()).sum();
    println!(
        "{:<28} {:>14} {:>12}",
        "cache design", "hit rate", "phys blocks"
    );
    println!(
        "{:<28} {:>13.1}% {:>12}",
        "vLLM hash chaining",
        hash.stats().hit_rate() * 100.0,
        hash.allocator().used_blocks()
    );
    println!(
        "{:<28} {:>13.1}% {:>12}",
        "SGLang radix trie",
        radix.stats().hit_rate() * 100.0,
        radix.allocator().used_blocks()
    );
    println!(
        "{:<28} {:>14} {:>12}",
        "(logical, no reuse)", "--", logical_blocks
    );

    // Now the paper's point: take 48 concurrent requests as a decode batch.
    // Reuse shrank memory, but FlashAttention still loads the logical bytes;
    // PAT loads close to the distinct bytes.
    let head = HeadConfig::new(32, 8, 128);
    let batch = DecodeBatch::new(head, tables[..48.min(tables.len())].to_vec(), 2);
    let spec = GpuSpec::a100_sxm4_80gb();
    let fa = simulate_plan(&batch, &FlashAttention::new().plan(&batch, &spec), &spec).unwrap();
    let pat = simulate_plan(&batch, &PatBackend::new().plan(&batch, &spec), &spec).unwrap();
    let optimal = attn_kernel::theoretical_min_kv_bytes(&batch);
    println!(
        "\ndecode batch of {} requests (one layer):",
        batch.num_queries()
    );
    println!(
        "  distinct KV (theoretical min) : {:>8.1} MB",
        optimal / 1e6
    );
    println!(
        "  PAT loads                     : {:>8.1} MB",
        pat.traffic.kv_loaded_bytes() / 1e6
    );
    println!(
        "  FlashAttention loads          : {:>8.1} MB",
        fa.traffic.kv_loaded_bytes() / 1e6
    );
    println!(
        "\nprefix REUSE saved {:.0}% of memory; prefix-AWARE execution saved {:.0}% of loads.",
        (1.0 - hash.allocator().used_blocks() as f64 / logical_blocks as f64) * 100.0,
        (1.0 - pat.traffic.kv_loaded_bytes() / fa.traffic.kv_loaded_bytes()) * 100.0
    );
}
