/root/repo/target/debug/deps/sim_gpu-1f4596f4942d2b75.d: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsim_gpu-1f4596f4942d2b75.rmeta: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs Cargo.toml

crates/sim-gpu/src/lib.rs:
crates/sim-gpu/src/chrome.rs:
crates/sim-gpu/src/engine.rs:
crates/sim-gpu/src/l2.rs:
crates/sim-gpu/src/memory.rs:
crates/sim-gpu/src/occupancy.rs:
crates/sim-gpu/src/spec.rs:
crates/sim-gpu/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
