/root/repo/target/debug/examples/rag_serving-26a9ddde42b95f36.d: examples/rag_serving.rs

/root/repo/target/debug/examples/rag_serving-26a9ddde42b95f36: examples/rag_serving.rs

examples/rag_serving.rs:
