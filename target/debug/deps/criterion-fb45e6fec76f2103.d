/root/repo/target/debug/deps/criterion-fb45e6fec76f2103.d: crates/compat-criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-fb45e6fec76f2103.rmeta: crates/compat-criterion/src/lib.rs Cargo.toml

crates/compat-criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
