//! Fig. 8: multi-tile kernel design and validation on A100-SXM4-80GB.
//!
//! (a) global→shared transfer latency vs data size; (b) offline-solved tile
//! feasibility grid; (c) bandwidth utilization and (d) kernel latency across
//! all feasible tiles on a no-prefix batch of 1134 × KV-1024 (the paper's
//! kernel-equivalence validation).

use pat_bench::{banner, kernel_equivalence, save_json};
use pat_core::TileSolver;
use serde::Serialize;
use sim_gpu::{GpuSpec, TransferModel};

#[derive(Serialize)]
struct Results {
    sweep: Vec<(f64, f64)>,
    table: String,
    equivalence: Vec<pat_bench::EquivalenceRow>,
}

fn main() {
    let spec = GpuSpec::a100_sxm4_80gb();

    banner("Fig. 8a — global-to-shared transfer latency vs data size (A100)");
    let model = TransferModel::from_spec(&spec);
    let sizes: Vec<f64> = (7..28).map(|i| 2f64.powi(i)).collect();
    let sweep = model.latency_sweep(&sizes);
    println!("{:>14} {:>14} {:>16}", "bytes", "latency (ns)", "eff. GB/s");
    for &(bytes, ns) in &sweep {
        println!("{bytes:>14.0} {ns:>14.1} {:>16.1}", bytes / ns);
    }
    println!(
        "flat-region latency L = {:.0} ns, bandwidth B = {:.0} GB/s, knee = {:.2} MB",
        model.latency_ns(),
        model.bandwidth(),
        model.knee_bytes() / 1e6
    );

    banner("Fig. 8b — feasible tile configurations (✓; ①/②/③ = violated constraint)");
    let solver = TileSolver::new(spec.clone(), 128, 2);
    let table = solver.render_table();
    print!("{table}");
    println!(
        "feasible configurations: {} (paper: 11)",
        solver.feasible_tiles().len()
    );

    banner("Fig. 8c/d — kernel equivalence @ batch 1134, KV 1024, no prefixes");
    let rows = kernel_equivalence(&spec, 1134).expect("equivalence sweep simulates");
    println!(
        "{:>12} {:>8} {:>12} {:>14}",
        "tile", "C/SM", "bw util", "latency (us)"
    );
    for row in &rows {
        println!(
            "{:>12} {:>8} {:>11.1}% {:>14.1}",
            row.tile,
            row.ctas_per_sm,
            row.bandwidth_utilization * 100.0,
            row.latency_us
        );
    }
    let (lo, hi) = rows.iter().fold((1.0f64, 0.0f64), |(lo, hi), r| {
        (
            lo.min(r.bandwidth_utilization),
            hi.max(r.bandwidth_utilization),
        )
    });
    println!(
        "\nbandwidth utilization range: {:.1}%-{:.1}% (paper: 83%-86%)",
        lo * 100.0,
        hi * 100.0
    );
    save_json(
        "fig08_multitile_a100",
        &Results {
            sweep,
            table,
            equivalence: rows,
        },
    )
    .expect("persist bench results");
}
