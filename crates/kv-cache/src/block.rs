//! KV-cache blocks and block tables.
//!
//! Following vLLM's paged KV cache (§2.1, §8.1 of the paper), the KV entries
//! of a sequence are stored in fixed-size blocks of `block_size` tokens.
//! A request's logical sequence maps to physical blocks through its
//! [`BlockTable`]; shared prefixes appear as identical leading block ids
//! across tables.

use std::fmt;

/// Identifier of a physical KV block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u32> for BlockId {
    fn from(v: u32) -> Self {
        BlockId(v)
    }
}

/// Default KV-block size in tokens; the paper notes block sizes are typically
/// at least 16, which makes intra-node packing always profitable (§5.1).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// The per-request row of the block table: physical block ids plus the exact
/// token count (the last block may be partially filled).
///
/// # Examples
///
/// ```
/// use kv_cache::{BlockId, BlockTable};
///
/// let table = BlockTable::new(vec![BlockId(0), BlockId(1)], 20, 16);
/// assert_eq!(table.num_tokens(), 20);
/// assert_eq!(table.tokens_in_block(1), 4);
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct BlockTable {
    blocks: Vec<BlockId>,
    num_tokens: usize,
    block_size: usize,
}

impl Clone for BlockTable {
    fn clone(&self) -> Self {
        BlockTable {
            blocks: self.blocks.clone(),
            num_tokens: self.num_tokens,
            block_size: self.block_size,
        }
    }

    /// Capacity-reusing clone: the serving engine's per-step scratch arena
    /// refreshes recycled tables in place, so steady-state decode steps
    /// allocate nothing.
    fn clone_from(&mut self, source: &Self) {
        self.blocks.clone_from(&source.blocks);
        self.num_tokens = source.num_tokens;
        self.block_size = source.block_size;
    }
}

impl BlockTable {
    /// Creates a block table.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or `blocks` cannot hold `num_tokens`.
    pub fn new(blocks: Vec<BlockId>, num_tokens: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(
            num_tokens <= blocks.len() * block_size,
            "{num_tokens} tokens do not fit in {} blocks of {block_size}",
            blocks.len()
        );
        assert!(
            blocks.len() <= num_tokens.div_ceil(block_size),
            "trailing unused blocks are not allowed"
        );
        BlockTable {
            blocks,
            num_tokens,
            block_size,
        }
    }

    /// Creates an empty table for a fresh request.
    pub fn empty(block_size: usize) -> Self {
        BlockTable::new(Vec::new(), 0, block_size)
    }

    /// The physical block ids, in sequence order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Total KV tokens stored.
    pub fn num_tokens(&self) -> usize {
        self.num_tokens
    }

    /// The block size in tokens.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Tokens stored in block index `i` (the final block may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn tokens_in_block(&self, i: usize) -> usize {
        assert!(i < self.blocks.len(), "block index {i} out of bounds");
        if i + 1 < self.blocks.len() {
            self.block_size
        } else {
            self.num_tokens - i * self.block_size
        }
    }

    /// Appends `block` and accounts for `tokens` new tokens in it.
    ///
    /// # Panics
    ///
    /// Panics if the previous block is not full or `tokens` exceeds the block
    /// size.
    pub fn push_block(&mut self, block: BlockId, tokens: usize) {
        assert!(tokens >= 1 && tokens <= self.block_size);
        assert!(
            self.num_tokens == self.blocks.len() * self.block_size,
            "previous block must be full before appending"
        );
        self.blocks.push(block);
        self.num_tokens += tokens;
    }

    /// Adds `tokens` tokens to the final (partial) block.
    ///
    /// # Panics
    ///
    /// Panics if they do not fit.
    pub fn extend_last_block(&mut self, tokens: usize) {
        assert!(
            self.num_tokens + tokens <= self.blocks.len() * self.block_size,
            "tokens overflow the last block"
        );
        self.num_tokens += tokens;
    }

    /// Length of the longest common block prefix with `other`.
    pub fn common_prefix_blocks(&self, other: &BlockTable) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_last_block_is_tracked() {
        let t = BlockTable::new(vec![BlockId(3), BlockId(7), BlockId(9)], 36, 16);
        assert_eq!(t.tokens_in_block(0), 16);
        assert_eq!(t.tokens_in_block(1), 16);
        assert_eq!(t.tokens_in_block(2), 4);
    }

    #[test]
    fn push_and_extend() {
        let mut t = BlockTable::empty(16);
        t.push_block(BlockId(0), 16);
        t.push_block(BlockId(1), 1);
        t.extend_last_block(3);
        assert_eq!(t.num_tokens(), 20);
        assert_eq!(t.blocks().len(), 2);
    }

    #[test]
    #[should_panic(expected = "previous block must be full")]
    fn push_onto_partial_block_panics() {
        let mut t = BlockTable::empty(16);
        t.push_block(BlockId(0), 8);
        t.push_block(BlockId(1), 8);
    }

    #[test]
    fn common_prefix() {
        let a = BlockTable::new(vec![BlockId(0), BlockId(1), BlockId(2)], 48, 16);
        let b = BlockTable::new(vec![BlockId(0), BlockId(1), BlockId(5)], 48, 16);
        assert_eq!(a.common_prefix_blocks(&b), 2);
        assert_eq!(a.common_prefix_blocks(&a), 3);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn overflow_rejected() {
        let _ = BlockTable::new(vec![BlockId(0)], 17, 16);
    }

    #[test]
    #[should_panic(expected = "trailing unused blocks")]
    fn unused_blocks_rejected() {
        let _ = BlockTable::new(vec![BlockId(0), BlockId(1)], 10, 16);
    }
}
