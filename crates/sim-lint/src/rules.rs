//! The rule set: R1–R5, plus waiver parsing.
//!
//! | Rule | Scope                         | What it flags                              |
//! |------|-------------------------------|--------------------------------------------|
//! | R1   | simulation crates, all code   | wall clocks, sleeps, OS entropy            |
//! | R2   | simulation crates, all code   | iteration over `HashMap`/`HashSet`         |
//! | R3   | sim crates minus `sim-core`, non-test | raw casts of time-named values     |
//! | R4   | every scanned crate, non-test | `.unwrap()` / `.expect(` in library code   |
//! | R5   | `sim-core` + `cluster`, non-test | undocumented `pub` items                |
//! | R6   | sim crates minus `sim-core`, non-test | raw `thread::spawn`/`thread::scope` |
//!
//! Waiver syntax, honored on the violating line or the standalone comment
//! line directly above it:
//!
//! ```text
//! // simlint: allow(R2) -- usize sum is order-independent
//! ```

use crate::scan::Line;

/// Crates whose code runs inside the simulation and must be deterministic.
pub const SIM_CRATES: &[&str] = &[
    "sim-core",
    "sim-gpu",
    "serving",
    "cluster",
    "controller",
    "kv-cache",
    "kv-transfer",
    "pat-core",
    "baselines",
    "attn-kernel",
    "replica-fidelity",
];

/// Crates whose entire `pub` surface must carry doc comments (R5).
pub const DOC_CRATES: &[&str] = &["sim-core", "cluster", "kv-transfer", "replica-fidelity"];

/// All rule names, in report order.
pub const ALL_RULES: &[&str] = &["R1", "R2", "R3", "R4", "R5", "R6"];

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (`"R1"` … `"R5"`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the hazard.
    pub message: String,
    /// `Some(reason)` when an inline waiver covers this violation.
    pub waived: Option<String>,
}

/// A parsed `simlint: allow(...)` waiver comment.
#[derive(Debug, Clone)]
struct Waiver {
    rules: Vec<String>,
    reason: String,
    /// True when the waiver's line carries no code (applies to next line).
    standalone: bool,
}

/// Checks one scanned file belonging to `crate_name`, returning violations.
pub fn check_file(crate_name: &str, lines: &[Line]) -> Vec<Violation> {
    let sim = SIM_CRATES.contains(&crate_name);
    let doc = DOC_CRATES.contains(&crate_name);
    let waivers = parse_waivers(lines);

    // One token stream for the whole file, each token tagged with its
    // 0-based line: method chains split across lines (`map\n.values()`)
    // must not escape detection.
    let stream: Vec<(usize, &str)> = lines
        .iter()
        .enumerate()
        .flat_map(|(i, l)| tokens(&l.code).into_iter().map(move |t| (i, t)))
        .collect();
    let hash_idents = collect_hash_idents(&stream);
    let in_test = |idx: usize| lines[idx].in_test;

    let mut out = Vec::new();
    if sim {
        check_r1(&stream, &mut out);
        check_r2(&stream, &hash_idents, &mut out);
        if crate_name != "sim-core" {
            check_r3(&stream, &in_test, &mut out);
            check_r6(&stream, &in_test, &mut out);
        }
    }
    check_r4(&stream, &in_test, &mut out);
    if doc {
        for (idx, line) in lines.iter().enumerate() {
            if !line.in_test {
                check_r5(&tokens(&line.code), lines, idx, &mut out);
            }
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    for v in &mut out {
        v.waived = waiver_for(&waivers, v.line, v.rule);
    }
    out
}

// ------------------------------------------------------------------ R1

const R1_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "OsRng",
    "RandomState",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

fn check_r1(stream: &[(usize, &str)], out: &mut Vec<Violation>) {
    for (i, &(idx, t)) in stream.iter().enumerate() {
        if R1_IDENTS.contains(&t) {
            out.push(Violation {
                rule: "R1",
                line: idx + 1,
                message: format!(
                    "`{t}` inside a simulation crate: wall clocks and OS entropy \
                     break reproducibility; use the sim-core time spine / seeded rng"
                ),
                waived: None,
            });
        }
        if t == "sleep"
            && i >= 3
            && stream[i - 1].1 == ":"
            && stream[i - 2].1 == ":"
            && stream[i - 3].1 == "thread"
        {
            out.push(Violation {
                rule: "R1",
                line: idx + 1,
                message: "`thread::sleep` inside a simulation crate: simulated time \
                          never sleeps; advance the event queue instead"
                    .to_string(),
                waived: None,
            });
        }
    }
}

// ------------------------------------------------------------------ R2

/// Identifiers the file binds to `HashMap`/`HashSet` (fields, lets, params).
fn collect_hash_idents(stream: &[(usize, &str)]) -> Vec<String> {
    let mut idents = Vec::new();
    for i in 0..stream.len() {
        let (line, t) = stream[i];
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        let tok = |j: usize| stream.get(j).map(|&(_, t)| t);
        // `name: HashMap<...>` or `name: std::collections::HashMap<...>`
        // — scan left over a possible path prefix to the `:` and its
        // identifier. A `::` path separator is two `:` tokens.
        let mut j = i;
        while j >= 3 && tok(j - 1) == Some(":") && tok(j - 2) == Some(":") {
            j -= 3; // skip `seg ::`
        }
        // Skip reference/mutability sigils: `name: &mut HashMap<...>`.
        while j >= 1 && matches!(tok(j - 1), Some("&") | Some("mut")) {
            j -= 1;
        }
        if j >= 2 && tok(j - 1) == Some(":") && tok(j - 2) != Some(":") && is_ident(stream[j - 2].1)
        {
            push_unique(&mut idents, stream[j - 2].1);
        }
        let _ = line;
        // `let (mut) name = ... HashMap::...` — look back for a `let` in
        // the same statement (no `;` in between) with an `=` before the
        // type name.
        if let Some(let_pos) = stream[..i].iter().rposition(|&(_, t)| t == "let") {
            if stream[let_pos..i].iter().any(|&(_, t)| t == ";") {
                continue;
            }
            let mut k = let_pos + 1;
            if tok(k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = tok(k) {
                if is_ident(name) && stream[let_pos..i].iter().any(|&(_, t)| t == "=") {
                    push_unique(&mut idents, name);
                }
            }
        }
    }
    idents
}

const R2_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn check_r2(stream: &[(usize, &str)], hash_idents: &[String], out: &mut Vec<Violation>) {
    for i in 0..stream.len() {
        let (idx, t) = stream[i];
        let tok = |j: usize| stream.get(j).map(|&(_, t)| t);
        // `ident.iter()` and friends (chains may span lines).
        if i >= 2
            && R2_ITER_METHODS.contains(&t)
            && tok(i - 1) == Some(".")
            && hash_idents.iter().any(|h| h == stream[i - 2].1)
        {
            out.push(Violation {
                rule: "R2",
                line: idx + 1,
                message: format!(
                    "iteration over std hash container `{}` (`.{}()`): order is \
                     nondeterministic; use BTreeMap/BTreeSet or sorted traversal",
                    stream[i - 2].1,
                    t
                ),
                waived: None,
            });
        }
        // `for pat in &mut? ident {`.
        if t == "in" {
            let mut j = i + 1;
            while matches!(tok(j), Some("&") | Some("mut")) {
                j += 1;
            }
            if let Some(name) = tok(j) {
                if hash_idents.iter().any(|h| h == name) && tok(j + 1) == Some("{") {
                    out.push(Violation {
                        rule: "R2",
                        line: stream[j].0 + 1,
                        message: format!(
                            "`for … in` over std hash container `{name}`: order is \
                             nondeterministic; use BTreeMap/BTreeSet or sorted traversal"
                        ),
                        waived: None,
                    });
                }
            }
        }
    }
}

// ------------------------------------------------------------------ R3

const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

fn is_time_named(ident: &str) -> bool {
    ident == "ns"
        || ident == "us"
        || ident == "ms"
        || ident == "secs"
        || ident.ends_with("_ns")
        || ident.ends_with("_us")
        || ident.ends_with("_ms")
        || ident.ends_with("_s")
        || ident.ends_with("_secs")
}

fn check_r3(stream: &[(usize, &str)], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Violation>) {
    for i in 1..stream.len() {
        let (idx, t) = stream[i];
        if t == "as"
            && i + 1 < stream.len()
            && NUMERIC_TYPES.contains(&stream[i + 1].1)
            && is_time_named(stream[i - 1].1)
            && !in_test(idx)
        {
            out.push(Violation {
                rule: "R3",
                line: idx + 1,
                message: format!(
                    "raw time cast `{} as {}` outside sim-core: route conversions \
                     through SimTime/SimDuration (`from_ns_f64*`, `from_secs_f64`, `as_*_f64`)",
                    stream[i - 1].1,
                    stream[i + 1].1
                ),
                waived: None,
            });
        }
    }
}

// ------------------------------------------------------------------ R6

/// Thread entry points that ad-hoc parallelism reaches for. `sleep` is R1's.
const R6_ENTRY_POINTS: &[&str] = &["spawn", "scope"];

fn check_r6(stream: &[(usize, &str)], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Violation>) {
    for i in 3..stream.len() {
        let (idx, t) = stream[i];
        if R6_ENTRY_POINTS.contains(&t)
            && stream[i - 1].1 == ":"
            && stream[i - 2].1 == ":"
            && stream[i - 3].1 == "thread"
            && !in_test(idx)
        {
            out.push(Violation {
                rule: "R6",
                line: idx + 1,
                message: format!(
                    "raw `thread::{t}` inside a simulation crate: ad-hoc threading \
                     risks order-dependent merges; route parallelism through \
                     `sim_core::par` (ordered_map / for_each_mut)"
                ),
                waived: None,
            });
        }
    }
}

// ------------------------------------------------------------------ R4

fn check_r4(stream: &[(usize, &str)], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Violation>) {
    for i in 1..stream.len() {
        let (idx, t) = stream[i];
        let tok = |j: usize| stream.get(j).map(|&(_, t)| t);
        if (t == "unwrap" || t == "expect") && tok(i - 1) == Some(".") && tok(i + 1) == Some("(") {
            // `.unwrap()` must close immediately; `.unwrap_or` etc. are
            // different tokens and never reach here. `.expect(` must take a
            // string argument: a call passing a non-literal first token is
            // a user-defined method (e.g. a parser's `expect(char)`), which
            // this token-level pass cannot see the receiver type of.
            if t == "unwrap" && tok(i + 2) != Some(")") {
                continue;
            }
            if t == "expect" && tok(i + 2) != Some("\"") {
                continue;
            }
            if in_test(idx) {
                continue;
            }
            out.push(Violation {
                rule: "R4",
                line: idx + 1,
                message: format!(
                    "`.{t}(…)` in non-test library code: propagate the error or \
                     restructure so the invariant is expressed without a panic"
                ),
                waived: None,
            });
        }
    }
}

// ------------------------------------------------------------------ R5

const R5_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

fn check_r5(toks: &[&str], lines: &[Line], idx: usize, out: &mut Vec<Violation>) {
    // A `pub` item keyword pair anywhere on the line (covers `pub fn` after
    // indentation inside impl blocks). `pub(crate)`/`pub(super)` are not a
    // public surface and are skipped.
    let Some(p) = toks.iter().position(|&t| t == "pub") else {
        return;
    };
    let Some(kw) = toks.get(p + 1) else { return };
    if !R5_ITEM_KEYWORDS.contains(kw) {
        return;
    }
    // Out-of-line module declarations (`pub mod x;`) document themselves
    // with `//!` inner docs in their own file.
    if *kw == "mod" && toks.contains(&";") {
        return;
    }
    let name = toks.get(p + 2).copied().unwrap_or("?");
    if is_documented(lines, idx) {
        return;
    }
    out.push(Violation {
        rule: "R5",
        line: idx + 1,
        message: format!("public item `{kw} {name}` has no doc comment"),
        waived: None,
    });
}

/// Walks upward from the item line, skipping attribute lines, until a doc
/// comment or anything else is found.
fn is_documented(lines: &[Line], item_idx: usize) -> bool {
    let mut i = item_idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let code = line.code.trim();
        let comment = line.comment.trim();
        if comment.starts_with("///") || comment.starts_with("//!") || comment.starts_with("/**") {
            return true;
        }
        if code.starts_with("#[")
            || code.starts_with("#![")
            || code.ends_with("]") && !code.is_empty()
        {
            // Attribute (possibly multi-line); keep walking.
            continue;
        }
        if code.is_empty() && comment.is_empty() {
            return false; // blank line: docs must be adjacent
        }
        if code.is_empty() && comment.starts_with("//") {
            return false; // plain comment is not documentation
        }
        return false;
    }
    false
}

// ------------------------------------------------------------------ waivers

fn parse_waivers(lines: &[Line]) -> Vec<Option<Waiver>> {
    lines
        .iter()
        .map(|line| {
            let c = &line.comment;
            let start = c.find("simlint:")?;
            let rest = &c[start + "simlint:".len()..];
            let rest = rest.trim_start();
            let rest = rest.strip_prefix("allow")?.trim_start();
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix("--")?.trim();
            if rules.is_empty() || reason.is_empty() {
                return None; // malformed waivers are not honored
            }
            Some(Waiver {
                rules,
                reason: reason.to_string(),
                standalone: line.code.trim().is_empty(),
            })
        })
        .collect()
}

fn waiver_for(waivers: &[Option<Waiver>], line: usize, rule: &str) -> Option<String> {
    let covers = |w: &Waiver| w.rules.iter().any(|r| r == rule || r == "*");
    // Inline on the violating line (1-based -> 0-based).
    if let Some(Some(w)) = waivers.get(line - 1) {
        if covers(w) {
            return Some(w.reason.clone());
        }
    }
    // Standalone comment on the line directly above.
    if line >= 2 {
        if let Some(Some(w)) = waivers.get(line - 2) {
            if w.standalone && covers(w) {
                return Some(w.reason.clone());
            }
        }
    }
    None
}

// ------------------------------------------------------------------ tokens

/// Splits a code line into identifier tokens and single-char punctuation.
fn tokens(code: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && {
                let c = bytes[i] as char;
                c.is_ascii_alphanumeric() || c == '_'
            } {
                i += 1;
            }
            out.push(&code[start..i]);
        } else if c.is_whitespace() {
            i += 1;
        } else {
            out.push(&code[i..i + 1]);
            i += 1;
        }
    }
    out
}

fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false)
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn check(crate_name: &str, src: &str) -> Vec<Violation> {
        check_file(crate_name, &scan(src))
    }

    #[test]
    fn r1_flags_wall_clock_and_entropy() {
        let v = check(
            "serving",
            "use std::time::Instant;\nlet t = SystemTime::now();\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "R1").count(), 2);
        let v = check("serving", "std::thread::sleep(d);\n");
        assert_eq!(v.iter().filter(|v| v.rule == "R1").count(), 1);
        // Non-sim crates may use wall clocks.
        assert!(check("workloads", "use std::time::Instant;\n").is_empty());
    }

    #[test]
    fn r2_flags_hash_iteration_not_lookup() {
        let src = "struct S { m: HashMap<u64, u32> }\nimpl S { fn f(&self) -> usize { self.m.values().count() } }\n";
        let v = check("kv-cache", src);
        assert_eq!(v.iter().filter(|v| v.rule == "R2").count(), 1);
        // Pure lookups are fine.
        let src = "struct S { m: HashMap<u64, u32> }\nimpl S { fn f(&self) -> bool { self.m.contains_key(&1) } }\n";
        assert!(check("kv-cache", src).iter().all(|v| v.rule != "R2"));
        // BTreeMap iteration is fine.
        let src = "struct S { m: BTreeMap<u64, u32> }\nimpl S { fn f(&self) -> usize { self.m.values().count() } }\n";
        assert!(check("kv-cache", src).iter().all(|v| v.rule != "R2"));
    }

    #[test]
    fn r2_sees_let_bindings_and_for_loops() {
        let src =
            "let mut counts = std::collections::HashMap::new();\nfor (k, v) in &counts {\n}\n";
        let v = check("cluster", src);
        assert_eq!(v.iter().filter(|v| v.rule == "R2").count(), 1);
    }

    #[test]
    fn r2_ignores_vec_of_hashmap_outer_ident() {
        let src =
            "let covered: Vec<HashMap<u32, u32>> = Vec::new();\nlet n = covered.iter().count();\n";
        assert!(check("pat-core", src).iter().all(|v| v.rule != "R2"));
    }

    #[test]
    fn r3_flags_raw_time_casts_outside_sim_core() {
        let v = check("controller", "let x = event.t_ns as f64 / 1000.0;\n");
        assert_eq!(v.iter().filter(|v| v.rule == "R3").count(), 1);
        assert!(check("sim-core", "let x = t_ns as f64;\n")
            .iter()
            .all(|v| v.rule != "R3"));
        // Non-time casts are untouched.
        assert!(check("controller", "let x = tokens as f64;\n")
            .iter()
            .all(|v| v.rule != "R3"));
    }

    #[test]
    fn r4_flags_unwrap_and_expect_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); z.unwrap_or(3); }\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n";
        let v = check("anything", src);
        assert_eq!(v.iter().filter(|v| v.rule == "R4").count(), 2);
    }

    #[test]
    fn r5_requires_docs_on_pub_items() {
        let src = "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n";
        let v = check("sim-core", src);
        let r5: Vec<_> = v.iter().filter(|v| v.rule == "R5").collect();
        assert_eq!(r5.len(), 1);
        assert_eq!(r5[0].line, 4);
        // Attributes between doc and item are fine.
        let src = "/// Doc.\n#[derive(Debug)]\npub struct S;\n";
        assert!(check("cluster", src).iter().all(|v| v.rule != "R5"));
        // Other crates are out of scope.
        assert!(check("serving", "pub fn bad() {}\n")
            .iter()
            .all(|v| v.rule != "R5"));
    }

    #[test]
    fn r6_flags_raw_thread_spawn_and_scope() {
        let v = check("cluster", "std::thread::spawn(|| {});\n");
        assert_eq!(v.iter().filter(|v| v.rule == "R6").count(), 1);
        let v = check("controller", "std::thread::scope(|s| {});\n");
        assert_eq!(v.iter().filter(|v| v.rule == "R6").count(), 1);
        // The blessed implementation itself lives in sim-core.
        assert!(check("sim-core", "std::thread::scope(|s| {});\n")
            .iter()
            .all(|v| v.rule != "R6"));
        // Non-sim crates may thread freely.
        assert!(check("workloads", "std::thread::spawn(|| {});\n")
            .iter()
            .all(|v| v.rule != "R6"));
        // Test code is exempt.
        let src = "#[cfg(test)]\nmod t { fn g() { std::thread::spawn(|| {}); } }\n";
        assert!(check("cluster", src).iter().all(|v| v.rule != "R6"));
        // `thread::sleep` is R1's, not R6's.
        let v = check("cluster", "std::thread::sleep(d);\n");
        assert!(v.iter().all(|v| v.rule != "R6"));
    }

    #[test]
    fn waivers_cover_same_line_and_line_above() {
        let src = "let x = t_ns as f64; // simlint: allow(R3) -- metric egress\n";
        let v = check("controller", src);
        assert!(v[0].waived.is_some());
        let src = "// simlint: allow(R3) -- metric egress\nlet x = t_ns as f64;\n";
        let v = check("controller", src);
        assert!(v[0].waived.is_some());
        // A waiver for a different rule does not apply.
        let src = "let x = t_ns as f64; // simlint: allow(R2) -- wrong rule\n";
        let v = check("controller", src);
        assert!(v[0].waived.is_none());
        // Missing reason: not honored.
        let src = "let x = t_ns as f64; // simlint: allow(R3)\n";
        let v = check("controller", src);
        assert!(v[0].waived.is_none());
    }
}
