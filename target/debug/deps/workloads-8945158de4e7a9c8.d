/root/repo/target/debug/deps/workloads-8945158de4e7a9c8.d: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

/root/repo/target/debug/deps/libworkloads-8945158de4e7a9c8.rlib: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

/root/repo/target/debug/deps/libworkloads-8945158de4e7a9c8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrival.rs:
crates/workloads/src/io.rs:
crates/workloads/src/requests.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tenants.rs:
crates/workloads/src/traces.rs:
