//! Tile explorer: prints the offline constraint solver's feasibility grids
//! for every curated hardware model (Fig. 8b / Fig. 9) and walks the
//! runtime tile selector's decisions across query counts and KV lengths
//! (§5.2), comparing the heuristic decision tree against the committed
//! autotuned cache.
//!
//! Run with `cargo run --release --example tile_explorer`.

use pat::prelude::*;

fn main() {
    for model in GpuModel::all() {
        let solver = TileSolver::new(model.spec(), 128, 2);
        println!("{}", solver.render_table());
        let tiles = solver.feasible_tiles();
        println!("-> {} performance-equivalent configurations\n", tiles.len());
    }

    for model in GpuModel::all() {
        let spec = model.spec();
        let solver = TileSolver::new(spec.clone(), 128, 2);
        let selector = match TileSelector::new(solver.feasible_tiles()) {
            Ok(s) => s,
            Err(e) => {
                println!("{}: {e}", spec.name);
                continue;
            }
        };
        let ctx = TileContext {
            selector: &selector,
            spec: &spec,
            head_dim: 128,
            dtype_bytes: 2,
        };
        println!(
            "runtime tile selection on {} (rows = packed queries x GQA group):",
            spec.name
        );
        println!(
            "{:>6} {:>8} {:>12} {:>12}",
            "rows", "kv len", "heuristic", "autotuned"
        );
        for rows in [1usize, 4, 8, 20, 32, 64] {
            for kv in [64usize, 192, 512, 2048, 8192] {
                let shown = |r: Result<TileConfig, TileError>| match r {
                    Ok(tile) => tile.to_string(),
                    Err(_) => "row split".to_string(),
                };
                let heuristic = shown(HeuristicPolicy.choose(&ctx, rows, kv));
                let autotuned = shown(AutotunedPolicy.choose(&ctx, rows, kv));
                let mark = if heuristic == autotuned { " " } else { "*" };
                println!("{rows:>6} {kv:>8} {heuristic:>12} {autotuned:>11}{mark}");
            }
        }
        println!();
    }
    println!("Note the paper's §5.2 examples: 20 rows round up to m=32, and");
    println!("KV 192 picks n=64 over 128 to avoid a 50% final-tile compute bubble.");
    println!("Starred rows mark cells where the offline autotuner departs from");
    println!("the heuristic (only on hardware the A100-profiled tree never saw).");
}
