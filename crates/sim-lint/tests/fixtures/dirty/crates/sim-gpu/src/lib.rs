//! Fixture: R7 (raw env read), R8 (narrowing cast), and R9 (stale
//! waiver) positives.

/// Reads a knob straight from the process environment instead of the
/// `sim_core::knobs` registry.
pub fn threads_from_env() -> usize {
    std::env::var("PAT_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Truncates a block counter by hand. The waiver names a rule (R2)
/// that does not fire on the cast line, so it is stale — and it does
/// nothing to suppress the R8 on the same line.
pub fn truncate_blocks(blocks: u64) -> u32 {
    // simlint: allow(R2) -- left over from a removed hash-map reduction
    blocks as u32
}
