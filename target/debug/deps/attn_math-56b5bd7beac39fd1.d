/root/repo/target/debug/deps/attn_math-56b5bd7beac39fd1.d: crates/attn-math/src/lib.rs crates/attn-math/src/gqa.rs crates/attn-math/src/half.rs crates/attn-math/src/partial.rs crates/attn-math/src/reference.rs crates/attn-math/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libattn_math-56b5bd7beac39fd1.rmeta: crates/attn-math/src/lib.rs crates/attn-math/src/gqa.rs crates/attn-math/src/half.rs crates/attn-math/src/partial.rs crates/attn-math/src/reference.rs crates/attn-math/src/tensor.rs Cargo.toml

crates/attn-math/src/lib.rs:
crates/attn-math/src/gqa.rs:
crates/attn-math/src/half.rs:
crates/attn-math/src/partial.rs:
crates/attn-math/src/reference.rs:
crates/attn-math/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
