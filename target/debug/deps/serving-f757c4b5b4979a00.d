/root/repo/target/debug/deps/serving-f757c4b5b4979a00.d: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs

/root/repo/target/debug/deps/libserving-f757c4b5b4979a00.rlib: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs

/root/repo/target/debug/deps/libserving-f757c4b5b4979a00.rmeta: crates/serving/src/lib.rs crates/serving/src/attention.rs crates/serving/src/breakdown.rs crates/serving/src/costs.rs crates/serving/src/engine.rs crates/serving/src/metrics.rs crates/serving/src/model.rs

crates/serving/src/lib.rs:
crates/serving/src/attention.rs:
crates/serving/src/breakdown.rs:
crates/serving/src/costs.rs:
crates/serving/src/engine.rs:
crates/serving/src/metrics.rs:
crates/serving/src/model.rs:
