/root/repo/target/debug/deps/cache_equivalence-7a0bbd8089e81f3a.d: tests/cache_equivalence.rs

/root/repo/target/debug/deps/cache_equivalence-7a0bbd8089e81f3a: tests/cache_equivalence.rs

tests/cache_equivalence.rs:
