/root/repo/target/debug/deps/workloads-b879a0552b3c7eb5.d: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-b879a0552b3c7eb5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/arrival.rs:
crates/workloads/src/io.rs:
crates/workloads/src/requests.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tenants.rs:
crates/workloads/src/traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
