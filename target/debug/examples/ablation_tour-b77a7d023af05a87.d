/root/repo/target/debug/examples/ablation_tour-b77a7d023af05a87.d: examples/ablation_tour.rs

/root/repo/target/debug/examples/ablation_tour-b77a7d023af05a87: examples/ablation_tour.rs

examples/ablation_tour.rs:
