/root/repo/target/debug/deps/fig09_multitile_h100-d0e14fb44be8c1e6.d: crates/bench/benches/fig09_multitile_h100.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_multitile_h100-d0e14fb44be8c1e6.rmeta: crates/bench/benches/fig09_multitile_h100.rs Cargo.toml

crates/bench/benches/fig09_multitile_h100.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
