/root/repo/target/debug/deps/discussion_prospects-8f871e5b2e1d1858.d: crates/bench/benches/discussion_prospects.rs Cargo.toml

/root/repo/target/debug/deps/libdiscussion_prospects-8f871e5b2e1d1858.rmeta: crates/bench/benches/discussion_prospects.rs Cargo.toml

crates/bench/benches/discussion_prospects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
