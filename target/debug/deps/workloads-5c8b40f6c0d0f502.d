/root/repo/target/debug/deps/workloads-5c8b40f6c0d0f502.d: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-5c8b40f6c0d0f502.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrival.rs crates/workloads/src/io.rs crates/workloads/src/requests.rs crates/workloads/src/synthetic.rs crates/workloads/src/tenants.rs crates/workloads/src/traces.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/arrival.rs:
crates/workloads/src/io.rs:
crates/workloads/src/requests.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tenants.rs:
crates/workloads/src/traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
