/root/repo/target/debug/deps/baselines-8fcd50c9dc5e7316.d: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-8fcd50c9dc5e7316.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cascade.rs:
crates/baselines/src/common.rs:
crates/baselines/src/deft.rs:
crates/baselines/src/fasttree.rs:
crates/baselines/src/flash.rs:
crates/baselines/src/relay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
