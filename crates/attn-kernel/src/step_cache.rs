//! Step-simulation memoization: the serving-level analogue of §5.1.
//!
//! The serving engine used to run the full sim-gpu discrete-event engine
//! ([`crate::simulate_plan`]) on every decode step, even though consecutive
//! steps almost always have *identical structure* — every active request
//! grows by one token inside its final partial KV block, which changes
//! neither the packing (that is LazyPat's observation) nor, at block
//! granularity, the simulated timing. [`StepSimCache`] memoizes the
//! simulated timing report under the canonical batch fingerprint
//! ([`crate::batch_timing_fingerprint`]) plus the backend identity,
//! so structurally identical steps skip both the pack scheduler and the
//! event loop entirely.
//!
//! **Invalidation is structural:** any request arrival, departure,
//! preemption, or block-table growth into a fresh block changes the
//! fingerprint and misses. Within a structural span the cached report is
//! replayed verbatim; the timing quantization this introduces is at most
//! one partial KV block per request (< 1% of KV length at serving scale)
//! and is applied identically on every run — results stay bit-deterministic
//! per seed, they are simply computed at block rather than token
//! granularity.
//!
//! The cache is bounded, per-engine, and strictly deterministic: a
//! `BTreeMap` with sequence-number LRU eviction, capacity from the
//! `PAT_STEP_CACHE` environment variable (default 256, minimum 1). Worker
//! threads never share a cache, so parallel fleet execution cannot affect
//! hit patterns.
//!
//! This module lives in `attn-kernel` (next to the fingerprint it keys on)
//! so that both the serving engine and the `replica-fidelity` Replay
//! backend can share it; `serving` re-exports the public items unchanged.

use serde::Serialize;
use std::collections::BTreeMap;

/// Default cache capacity when `PAT_STEP_CACHE` is unset.
pub const DEFAULT_STEP_CACHE_CAPACITY: usize = 256;

/// The memoized slice of a simulated timing report — exactly the fields the
/// serving engine consumes when costing a decode step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSimReport {
    /// End-to-end simulated kernel latency in ns (one layer).
    pub total_ns: f64,
    /// Exposed scheduling cost in ns, paid once per step.
    pub scheduling_ns: f64,
}

/// Hit/miss counters of a [`StepSimCache`], plus the planning-reuse split
/// of the miss path (how steps that did run the planner produced their
/// packing: reused plan state vs a cold rebuild).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StepSimStats {
    /// Decode steps whose timing was served from cache.
    pub hits: u64,
    /// Decode steps that ran the full plan + sim-gpu pipeline.
    pub misses: u64,
    /// Miss-path steps whose packing reused plan state (a frozen replay or
    /// an incremental delta patch) instead of a scratch rebuild.
    pub plan_reuse_hits: u64,
    /// Miss-path steps that rebuilt the packing from scratch (always the
    /// case for stateless baseline backends).
    pub plan_cold: u64,
}

impl StepSimStats {
    /// Fraction of decode steps served from cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of decode steps that missed the step cache but still reused
    /// planning state (0 when none ran). Together with
    /// [`StepSimStats::hit_rate`] and [`StepSimStats::plan_cold_rate`] this
    /// forms the three-way split of Fig. 16: step-cache hit / plan-reuse
    /// hit / cold plan.
    pub fn plan_reuse_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.plan_reuse_hits as f64 / total as f64
        }
    }

    /// Fraction of decode steps planned entirely from scratch (0 when none
    /// ran).
    pub fn plan_cold_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cold as f64 / total as f64
        }
    }

    /// Accumulates another engine's counters (fleet-level aggregation).
    pub fn merge(&mut self, other: StepSimStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.plan_reuse_hits += other.plan_reuse_hits;
        self.plan_cold += other.plan_cold;
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    report: StepSimReport,
    last_used: u64,
}

/// A bounded, deterministic LRU cache mapping
/// `(batch timing fingerprint, backend fingerprint)` to the simulated step
/// report. See the module docs for keying and invalidation semantics.
#[derive(Debug)]
pub struct StepSimCache {
    map: BTreeMap<(u64, u64), Entry>,
    capacity: usize,
    seq: u64,
    stats: StepSimStats,
}

impl StepSimCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        StepSimCache {
            map: BTreeMap::new(),
            capacity: capacity.max(1),
            seq: 0,
            stats: StepSimStats::default(),
        }
    }

    /// Creates a cache sized from the `PAT_STEP_CACHE` knob (entries;
    /// default [`DEFAULT_STEP_CACHE_CAPACITY`]).
    pub fn from_env() -> Self {
        let capacity =
            sim_core::knobs::usize_knob("PAT_STEP_CACHE").unwrap_or(DEFAULT_STEP_CACHE_CAPACITY);
        StepSimCache::new(capacity)
    }

    /// Looks up a step report, counting a hit or miss and refreshing LRU
    /// recency on hit.
    pub fn get(&mut self, key: (u64, u64)) -> Option<StepSimReport> {
        self.seq += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.seq;
                self.stats.hits += 1;
                Some(entry.report)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly simulated report, evicting the least recently used
    /// entry when at capacity. Eviction scans the ordered map, so ties and
    /// ordering are platform-independent.
    pub fn insert(&mut self, key: (u64, u64), report: StepSimReport) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            if let Some(victim) = victim {
                self.map.remove(&victim);
            }
        }
        self.seq += 1;
        let last_used = self.seq;
        self.map.insert(key, Entry { report, last_used });
    }

    /// Records how a miss-path step produced its packing (called once per
    /// step that actually invoked the planner): `true` when plan state was
    /// reused (frozen replay or delta patch), `false` for a scratch rebuild.
    pub fn note_plan(&mut self, reused: bool) {
        if reused {
            self.stats.plan_reuse_hits += 1;
        } else {
            self.stats.plan_cold += 1;
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> StepSimStats {
        self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl Default for StepSimCache {
    fn default() -> Self {
        StepSimCache::new(DEFAULT_STEP_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(x: f64) -> StepSimReport {
        StepSimReport {
            total_ns: x,
            scheduling_ns: x / 10.0,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = StepSimCache::new(4);
        assert_eq!(c.get((1, 1)), None);
        c.insert((1, 1), report(100.0));
        assert_eq!(c.get((1, 1)), Some(report(100.0)));
        assert_eq!(
            c.stats(),
            StepSimStats {
                hits: 1,
                misses: 1,
                ..StepSimStats::default()
            }
        );
    }

    #[test]
    fn note_plan_splits_the_miss_path() {
        let mut c = StepSimCache::new(4);
        c.note_plan(true);
        c.note_plan(true);
        c.note_plan(false);
        let s = c.stats();
        assert_eq!(s.plan_reuse_hits, 2);
        assert_eq!(s.plan_cold, 1);
        // Rates are over all steps (hits + misses), not just the miss path.
        let mut s = StepSimStats {
            hits: 5,
            misses: 5,
            plan_reuse_hits: 4,
            plan_cold: 1,
        };
        assert!((s.plan_reuse_rate() - 0.4).abs() < 1e-12);
        assert!((s.plan_cold_rate() - 0.1).abs() < 1e-12);
        s.merge(StepSimStats {
            hits: 0,
            misses: 2,
            plan_reuse_hits: 1,
            plan_cold: 1,
        });
        assert_eq!(s.plan_reuse_hits, 5);
        assert_eq!(s.plan_cold, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = StepSimCache::new(2);
        c.insert((1, 0), report(1.0));
        c.insert((2, 0), report(2.0));
        assert_eq!(c.get((1, 0)), Some(report(1.0))); // refresh 1
        c.insert((3, 0), report(3.0)); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get((2, 0)).is_none());
        assert_eq!(c.get((1, 0)), Some(report(1.0)));
        assert_eq!(c.get((3, 0)), Some(report(3.0)));
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c = StepSimCache::new(2);
        c.insert((1, 0), report(1.0));
        c.insert((2, 0), report(2.0));
        c.insert((1, 0), report(10.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get((2, 0)), Some(report(2.0)));
        assert_eq!(c.get((1, 0)), Some(report(10.0)));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut c = StepSimCache::new(0);
        c.insert((1, 0), report(1.0));
        c.insert((2, 0), report(2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((2, 0)), Some(report(2.0)));
    }

    #[test]
    fn hit_rate_and_merge() {
        let mut a = StepSimStats {
            hits: 8,
            misses: 2,
            ..StepSimStats::default()
        };
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
        a.merge(StepSimStats {
            hits: 2,
            misses: 8,
            ..StepSimStats::default()
        });
        assert_eq!(
            a,
            StepSimStats {
                hits: 10,
                misses: 10,
                ..StepSimStats::default()
            }
        );
        assert_eq!(StepSimStats::default().hit_rate(), 0.0);
    }
}
