/root/repo/target/debug/examples/ablation_tour-b83f28203bba768d.d: examples/ablation_tour.rs

/root/repo/target/debug/examples/ablation_tour-b83f28203bba768d: examples/ablation_tour.rs

examples/ablation_tour.rs:
