/root/repo/target/debug/deps/serde_derive-229bf3838a7be84b.d: crates/compat-serde-derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-229bf3838a7be84b.rmeta: crates/compat-serde-derive/src/lib.rs Cargo.toml

crates/compat-serde-derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
