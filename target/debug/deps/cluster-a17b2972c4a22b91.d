/root/repo/target/debug/deps/cluster-a17b2972c4a22b91.d: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libcluster-a17b2972c4a22b91.rlib: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libcluster-a17b2972c4a22b91.rmeta: crates/cluster/src/lib.rs crates/cluster/src/metrics.rs crates/cluster/src/router.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/metrics.rs:
crates/cluster/src/router.rs:
crates/cluster/src/sim.rs:
