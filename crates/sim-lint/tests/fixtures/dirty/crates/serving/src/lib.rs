//! Fixture: R3 positive — a raw time cast outside `sim-core`.

/// Converts an integer timestamp by hand instead of going through
/// `sim-core`'s blessed egress API.
pub fn to_float(t_ns: u64) -> f64 {
    t_ns as f64
}
