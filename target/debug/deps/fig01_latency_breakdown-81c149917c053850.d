/root/repo/target/debug/deps/fig01_latency_breakdown-81c149917c053850.d: crates/bench/benches/fig01_latency_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_latency_breakdown-81c149917c053850.rmeta: crates/bench/benches/fig01_latency_breakdown.rs Cargo.toml

crates/bench/benches/fig01_latency_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
