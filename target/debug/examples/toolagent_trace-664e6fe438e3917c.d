/root/repo/target/debug/examples/toolagent_trace-664e6fe438e3917c.d: examples/toolagent_trace.rs

/root/repo/target/debug/examples/toolagent_trace-664e6fe438e3917c: examples/toolagent_trace.rs

examples/toolagent_trace.rs:
