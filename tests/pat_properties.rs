//! Property-based integration tests: random prefix-tree workloads through
//! the full PAT pipeline (pack → tiles → split → streams → numeric execution
//! and simulation).

use pat::prelude::*;
use proptest::prelude::*;

/// Strategy: a random multi-level batch description. Produces
/// `(levels, per-level lengths)` with node counts that divide.
fn random_spec() -> impl Strategy<Value = BatchSpec> {
    (
        1usize..=3,
        prop::collection::vec(1usize..=4, 0..3),
        prop::collection::vec(16usize..768, 1..4),
        1usize..=8,
    )
        .prop_map(|(first, growths, mut lens, leaf_mult)| {
            let mut b = vec![first];
            for g in growths {
                b.push(b.last().unwrap() * g);
            }
            b.push(b.last().unwrap() * leaf_mult);
            lens.resize(b.len(), 64);
            BatchSpec::new(b, lens)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PAT plans are structurally valid and numerically exact on random trees.
    #[test]
    fn pat_is_exact_on_random_trees(spec in random_spec(), seed in 0u64..1000) {
        let head = HeadConfig::new(4, 2, 8);
        let batch = spec.build(head);
        let gpu = GpuSpec::a100_sxm4_80gb();
        let plan = PatBackend::new().plan(&batch, &gpu);
        plan.validate(&batch).unwrap();
        let acts = QueryActivations::synthetic(head, batch.num_queries(), seed);
        let store = KvStore::synthetic_for(&batch, seed ^ 0xABCD);
        let got = execute_numeric(&batch, &acts, &store, &plan).unwrap();
        let want = reference_output(&batch, &acts, &store);
        prop_assert!(got.max_abs_diff(&want) < 1e-4);
    }

    /// The timing simulation conserves work: the makespan is at least the
    /// DRAM bytes divided by achievable bandwidth, and utilization is
    /// consistent with the reported traffic.
    #[test]
    fn simulation_conserves_bandwidth(spec in random_spec()) {
        let head = HeadConfig::new(32, 8, 128);
        let batch = spec.build(head);
        let gpu = GpuSpec::a100_sxm4_80gb();
        let plan = PatBackend::new().plan(&batch, &gpu);
        let report = simulate_plan(&batch, &plan, &gpu).unwrap();
        let floor_ns = report.traffic.kv_dram_bytes
            / (gpu.global_bandwidth * gpu.dram_efficiency);
        prop_assert!(
            report.forward_ns >= floor_ns * 0.999,
            "forward {} ns below bandwidth floor {} ns",
            report.forward_ns,
            floor_ns
        );
        prop_assert!(report.bandwidth_utilization <= gpu.dram_efficiency + 1e-6);
    }

    /// Lazy update across simulated decode growth: cached plans refreshed
    /// with new token counts stay valid and exact.
    #[test]
    fn lazy_plans_stay_exact_as_decoding_progresses(spec in random_spec(), seed in 0u64..1000) {
        let head = HeadConfig::new(4, 2, 8);
        let batch0 = spec.build(head);
        let gpu = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        let _ = lazy.plan(&batch0, &gpu);
        // One decode step: every request gains a token (appending into a
        // fresh private block to keep the structure simple but changed
        // token counts where the last block was partial).
        let tables: Vec<BlockTable> = batch0
            .tables()
            .iter()
            .map(|t| {
                let mut t = t.clone();
                if t.num_tokens() < t.blocks().len() * t.block_size() {
                    t.extend_last_block(1);
                }
                t
            })
            .collect();
        let batch1 = DecodeBatch::new(head, tables, 2);
        let plan = lazy.plan(&batch1, &gpu);
        plan.validate(&batch1).unwrap();
        let acts = QueryActivations::synthetic(head, batch1.num_queries(), seed);
        let store = KvStore::synthetic_for(&batch1, seed ^ 0xBEEF);
        let got = execute_numeric(&batch1, &acts, &store, &plan).unwrap();
        let want = reference_output(&batch1, &acts, &store);
        prop_assert!(got.max_abs_diff(&want) < 1e-4);
    }

    /// Shared-prefix traffic dominance: PAT's KV loads never exceed the
    /// one-query-per-CTA paradigm's on any random tree.
    #[test]
    fn pat_traffic_is_dominated_by_query_centric(spec in random_spec()) {
        let head = HeadConfig::new(32, 8, 128);
        let batch = spec.build(head);
        let gpu = GpuSpec::a100_sxm4_80gb();
        let pat = simulate_plan(&batch, &PatBackend::new().plan(&batch, &gpu), &gpu).unwrap();
        let fa = simulate_plan(&batch, &FlashAttention::new().plan(&batch, &gpu), &gpu).unwrap();
        prop_assert!(pat.traffic.kv_loaded_bytes() <= fa.traffic.kv_loaded_bytes() * 1.001);
    }
}
