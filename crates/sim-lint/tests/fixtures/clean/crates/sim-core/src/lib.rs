//! Fixture: negatives — nothing here may be flagged.

/// An instant only mentioned in comments and strings: "std::time::Instant".
pub fn not_a_clock() -> &'static str {
    // Instant::now() in a comment is fine.
    "std::time::Instant"
}

/// Sorted iteration over a `BTreeMap` is deterministic.
pub fn sum_btree(map: &std::collections::BTreeMap<u64, u64>) -> u64 {
    map.values().sum()
}

/// `unwrap_or` is not `unwrap`; `expect(char)` methods are not
/// `.expect("…")`.
pub fn safe(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
