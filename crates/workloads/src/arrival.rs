//! Arrival processes for online-serving experiments (§8.4).

use rand::Rng;

/// A Poisson arrival process: exponential inter-arrival gaps at a fixed
/// request rate.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use workloads::PoissonArrivals;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let arrivals: Vec<f64> = PoissonArrivals::new(5.0)
///     .take_until(60.0, &mut rng);
/// // ~300 arrivals in 60 s at 5 req/s.
/// assert!(arrivals.len() > 200 && arrivals.len() < 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rate_per_s: f64,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_s` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_per_s: f64) -> Self {
        assert!(rate_per_s > 0.0, "arrival rate must be positive");
        PoissonArrivals { rate_per_s }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_s
    }

    /// Samples one inter-arrival gap in seconds.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.rate_per_s
    }

    /// All arrival times in `[0, duration_s)`.
    pub fn take_until<R: Rng + ?Sized>(&self, duration_s: f64, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = self.next_gap(rng);
        while t < duration_s {
            out.push(t);
            t += self.next_gap(rng);
        }
        out
    }
}

/// A burst window of a [`BurstyArrivals`] profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst start, seconds from trace start (inclusive).
    pub start_s: f64,
    /// Burst end, seconds (exclusive).
    pub end_s: f64,
    /// Rate multiplier applied inside the window (e.g. 4.0 for a 4x burst).
    pub multiplier: f64,
}

/// A piecewise-constant arrival process: a base Poisson rate with scripted
/// burst windows (a flash crowd, a retry storm, a viral moment). Sampled by
/// thinning a homogeneous process at the peak rate, so the output is exact
/// and deterministic per seed.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use workloads::{Burst, BurstyArrivals};
///
/// let profile = BurstyArrivals::new(
///     4.0,
///     vec![Burst { start_s: 10.0, end_s: 20.0, multiplier: 4.0 }],
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let arrivals = profile.take_until(30.0, &mut rng);
/// let in_burst = arrivals.iter().filter(|&&t| (10.0..20.0).contains(&t)).count();
/// let outside = arrivals.len() - in_burst;
/// // 10 s at 16/s inside vs 20 s at 4/s outside.
/// assert!(in_burst > outside);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyArrivals {
    base_rate_per_s: f64,
    bursts: Vec<Burst>,
}

impl BurstyArrivals {
    /// A base rate with scripted burst windows.
    ///
    /// # Panics
    ///
    /// Panics if the base rate is not strictly positive, or any burst has a
    /// non-positive multiplier or an empty window.
    pub fn new(base_rate_per_s: f64, bursts: Vec<Burst>) -> Self {
        assert!(base_rate_per_s > 0.0, "arrival rate must be positive");
        for b in &bursts {
            assert!(b.multiplier > 0.0, "burst multiplier must be positive");
            assert!(b.end_s > b.start_s, "burst window must be non-empty");
        }
        BurstyArrivals {
            base_rate_per_s,
            bursts,
        }
    }

    /// The instantaneous rate at time `t_s`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let mut rate = self.base_rate_per_s;
        for b in &self.bursts {
            if (b.start_s..b.end_s).contains(&t_s) {
                rate = self.base_rate_per_s * b.multiplier;
            }
        }
        rate
    }

    /// All arrival times in `[0, duration_s)`, by thinning.
    pub fn take_until<R: Rng + ?Sized>(&self, duration_s: f64, rng: &mut R) -> Vec<f64> {
        let peak = self
            .bursts
            .iter()
            .map(|b| self.base_rate_per_s * b.multiplier)
            .fold(self.base_rate_per_s, f64::max);
        thin(peak, |t| self.rate_at(t), duration_s, rng)
    }
}

/// A smoothly varying diurnal arrival process:
/// `rate(t) = mean * (1 + amplitude * sin(2*pi*t / period))`, sampled by
/// thinning. Models the day/night load cycle that makes static fleet sizing
/// wasteful and motivates autoscaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalArrivals {
    mean_rate_per_s: f64,
    period_s: f64,
    amplitude: f64,
}

impl DiurnalArrivals {
    /// A sinusoidal profile around `mean_rate_per_s` with relative swing
    /// `amplitude` over one `period_s`.
    ///
    /// # Panics
    ///
    /// Panics if the mean rate or period is not strictly positive, or the
    /// amplitude is outside `[0, 1)` (the rate must stay positive).
    pub fn new(mean_rate_per_s: f64, period_s: f64, amplitude: f64) -> Self {
        assert!(mean_rate_per_s > 0.0, "arrival rate must be positive");
        assert!(period_s > 0.0, "period must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        DiurnalArrivals {
            mean_rate_per_s,
            period_s,
            amplitude,
        }
    }

    /// The instantaneous rate at time `t_s`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        self.mean_rate_per_s
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t_s / self.period_s).sin())
    }

    /// All arrival times in `[0, duration_s)`, by thinning.
    pub fn take_until<R: Rng + ?Sized>(&self, duration_s: f64, rng: &mut R) -> Vec<f64> {
        let peak = self.mean_rate_per_s * (1.0 + self.amplitude);
        thin(peak, |t| self.rate_at(t), duration_s, rng)
    }
}

/// Samples an inhomogeneous Poisson process with instantaneous rate
/// `rate_at(t) <= peak` by thinning a homogeneous process at `peak`.
fn thin<R: Rng + ?Sized>(
    peak: f64,
    rate_at: impl Fn(f64) -> f64,
    duration_s: f64,
    rng: &mut R,
) -> Vec<f64> {
    let proposal = PoissonArrivals::new(peak);
    let mut out = Vec::new();
    let mut t = proposal.next_gap(rng);
    while t < duration_s {
        if rng.gen_range(0.0..1.0) * peak < rate_at(t) {
            out.push(t);
        }
        t += proposal.next_gap(rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bursty_rate_profile_is_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let profile = BurstyArrivals::new(
            5.0,
            vec![Burst {
                start_s: 100.0,
                end_s: 200.0,
                multiplier: 4.0,
            }],
        );
        let arrivals = profile.take_until(300.0, &mut rng);
        let in_burst = arrivals
            .iter()
            .filter(|&&t| (100.0..200.0).contains(&t))
            .count() as f64
            / 100.0;
        let outside = arrivals
            .iter()
            .filter(|&&t| !(100.0..200.0).contains(&t))
            .count() as f64
            / 200.0;
        assert!((in_burst - 20.0).abs() < 2.0, "burst rate {in_burst}");
        assert!((outside - 5.0).abs() < 1.0, "base rate {outside}");
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diurnal_peak_and_trough_differ() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let profile = DiurnalArrivals::new(10.0, 200.0, 0.8);
        let arrivals = profile.take_until(200.0, &mut rng);
        // First half-period covers the sinusoid's peak, second the trough.
        let first = arrivals.iter().filter(|&&t| t < 100.0).count();
        let second = arrivals.len() - first;
        assert!(
            first as f64 > 2.0 * second as f64,
            "peak {first} vs trough {second}"
        );
        let mean = arrivals.len() as f64 / 200.0;
        assert!((mean - 10.0).abs() < 1.5, "mean rate {mean}");
    }

    #[test]
    fn mean_rate_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let arrivals = PoissonArrivals::new(8.0).take_until(600.0, &mut rng);
        let rate = arrivals.len() as f64 / 600.0;
        assert!((rate - 8.0).abs() < 0.5, "rate {rate}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let arrivals = PoissonArrivals::new(3.0).take_until(30.0, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(arrivals.iter().all(|&t| (0.0..30.0).contains(&t)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = PoissonArrivals::new(0.0);
    }
}
