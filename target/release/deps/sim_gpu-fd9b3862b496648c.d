/root/repo/target/release/deps/sim_gpu-fd9b3862b496648c.d: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs

/root/repo/target/release/deps/libsim_gpu-fd9b3862b496648c.rlib: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs

/root/repo/target/release/deps/libsim_gpu-fd9b3862b496648c.rmeta: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs

crates/sim-gpu/src/lib.rs:
crates/sim-gpu/src/chrome.rs:
crates/sim-gpu/src/engine.rs:
crates/sim-gpu/src/l2.rs:
crates/sim-gpu/src/memory.rs:
crates/sim-gpu/src/occupancy.rs:
crates/sim-gpu/src/spec.rs:
crates/sim-gpu/src/trace.rs:
