//! The `PAT_*` knob registry: every environment knob declared exactly once.
//!
//! Reproducibility claims ("byte-identical fleet runs per seed") are only as
//! strong as the set of hidden inputs, and environment variables are the
//! easiest hidden input to lose track of. This module is the workspace's
//! single source of truth for configuration knobs:
//!
//! * every knob is **declared once** in [`KNOBS`] — name, type, default,
//!   parser (the [`KnobKind`] validation), scope, and a one-line doc;
//! * every knob is **read once**, through [`raw`] — the only sanctioned
//!   `std::env::var` call site in the workspace (sim-lint rule **R7** bans
//!   raw reads everywhere else);
//! * every run can **record its configuration**: [`snapshot`] captures the
//!   effective value of every knob, and [`Snapshot::artifact_entries`]
//!   yields the output-affecting subset that bench JSON artifacts and
//!   Chrome traces embed, so an artifact proves which configuration
//!   produced it.
//!
//! ## Output-affecting vs performance-only knobs
//!
//! Each knob declares a [`KnobScope`]. `Output` knobs change *what* is
//! simulated (hardware model, tile policy, replica fidelity, smoke
//! scenarios) and are embedded in artifacts. `PerfOnly` knobs change only
//! *how fast* the host simulates — worker counts, cache capacities — and
//! are excluded from artifact snapshots *by contract*: CI regenerates the
//! smoke artifacts at `PAT_SIM_THREADS=1` and `4` and asserts byte
//! identity, which is exactly the proof that the exclusion is sound.
//!
//! ## Test overrides
//!
//! Mutating the process environment is unsafe under a threaded test runner,
//! so tests pin knob values with [`set_override`] instead; [`raw`] consults
//! the override map before the environment.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// How a knob's raw string value is validated and interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// A non-negative integer (`usize`).
    Usize,
    /// A boolean flag: set-and-non-empty-and-not-`"0"` means on.
    Flag,
    /// One of a fixed set of case-insensitive names.
    Choice(&'static [&'static str]),
}

/// Whether a knob can change simulation *outputs* or only host performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobScope {
    /// Changes what is simulated; embedded in bench artifacts and traces.
    Output,
    /// Changes only host wall-clock (worker counts, cache sizes); excluded
    /// from artifact snapshots, with the exclusion verified by CI's
    /// cross-thread byte-identity checks.
    PerfOnly,
}

/// One declared environment knob.
#[derive(Debug, Clone, Copy)]
pub struct KnobDef {
    /// Environment variable name (`PAT_*`).
    pub name: &'static str,
    /// Value type and parser.
    pub kind: KnobKind,
    /// Effective value when unset (or unparseable), as a display string.
    pub default: &'static str,
    /// Output-affecting or performance-only.
    pub scope: KnobScope,
    /// One-line description for the generated README table.
    pub doc: &'static str,
}

/// Every `PAT_*` knob the workspace reads, in fixed report order.
pub const KNOBS: &[KnobDef] = &[
    KnobDef {
        name: "PAT_SIM_THREADS",
        kind: KnobKind::Usize,
        default: "auto",
        scope: KnobScope::PerfOnly,
        doc: "Worker count for `sim_core::par` (0/unset = `min(cores, 8)`; \
              outputs are bit-identical at any value)",
    },
    KnobDef {
        name: "PAT_STEP_CACHE",
        kind: KnobKind::Usize,
        default: "256",
        scope: KnobScope::PerfOnly,
        doc: "Per-engine capacity (entries) of the step-simulation LRU cache",
    },
    KnobDef {
        name: "PAT_PLAN_CACHE",
        kind: KnobKind::Choice(&["0", "1"]),
        default: "1",
        scope: KnobScope::PerfOnly,
        doc: "Incremental delta-planning: patch the maintained prefix forest \
              across decode steps instead of rebuilding it (plans are \
              bit-identical either way)",
    },
    KnobDef {
        name: "PAT_BENCH_SMOKE",
        kind: KnobKind::Flag,
        default: "0",
        scope: KnobScope::Output,
        doc: "Run scaled-down bench scenarios (CI smoke mode); committed \
              artifacts are never overwritten in smoke mode",
    },
    KnobDef {
        name: "PAT_REPLICA_FIDELITY",
        kind: KnobKind::Choice(&["exact", "replay", "analytical"]),
        default: "exact",
        scope: KnobScope::Output,
        doc: "Default replica model for fleet simulations",
    },
    KnobDef {
        name: "PAT_GPU_MODEL",
        kind: KnobKind::Choice(&["v100", "a100", "h100", "b200", "tpu"]),
        default: "a100",
        scope: KnobScope::Output,
        doc: "Hardware model for env-constructed engines (`sim_gpu::GpuModel`)",
    },
    KnobDef {
        name: "PAT_TILE_POLICY",
        kind: KnobKind::Choice(&["heuristic", "autotuned"]),
        default: "heuristic",
        scope: KnobScope::Output,
        doc: "PAT's per-CTA tile choice: the \u{a7}5.2 decision tree or the \
              committed per-hardware autotuned cache",
    },
];

/// Looks up a knob's declaration. Panics on unregistered names — reading an
/// undeclared knob is a programming error the registry exists to prevent.
pub fn def(name: &str) -> &'static KnobDef {
    match KNOBS.iter().find(|k| k.name == name) {
        Some(d) => d,
        None => panic!("`{name}` is not a registered knob; declare it in sim_core::knobs::KNOBS"),
    }
}

fn overrides() -> &'static Mutex<BTreeMap<String, Option<String>>> {
    static OVERRIDES: OnceLock<Mutex<BTreeMap<String, Option<String>>>> = OnceLock::new();
    OVERRIDES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Pins a knob's value for the current process (test hook), overriding the
/// environment; `Some(None)`-style removal: pass `None` to clear the
/// override, `Some("")` to simulate an empty variable. Overrides exist
/// because `std::env::set_var` is unsafe under a threaded test runner.
pub fn set_override(name: &str, value: Option<&str>) {
    let _ = def(name); // unregistered names fail fast
    let mut map = match overrides().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    match value {
        Some(v) => map.insert(name.to_string(), Some(v.to_string())),
        None => map.remove(name),
    };
}

/// The raw string value of a registered knob: the test override if set,
/// else the process environment. `None` when unset. This is the only
/// sanctioned `std::env::var` call site in the workspace (R7).
pub fn raw(name: &str) -> Option<String> {
    let _ = def(name);
    {
        let map = match overrides().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(v) = map.get(name) {
            return v.clone();
        }
    }
    std::env::var(name).ok()
}

/// A `Usize` knob's parsed value; `None` when unset or unparseable.
pub fn usize_knob(name: &str) -> Option<usize> {
    debug_assert_eq!(
        def(name).kind,
        KnobKind::Usize,
        "{name} is not a Usize knob"
    );
    raw(name).and_then(|v| v.trim().parse::<usize>().ok())
}

/// A `Flag` knob: true when set, non-empty, and not `"0"`.
pub fn flag(name: &str) -> bool {
    debug_assert_eq!(def(name).kind, KnobKind::Flag, "{name} is not a Flag knob");
    raw(name).is_some_and(|v| !v.is_empty() && v != "0")
}

/// A `Choice` knob's normalized (trimmed, lowercased) value when it names a
/// declared choice; `None` when unset or unrecognized, in which case the
/// caller falls back to its default.
pub fn choice(name: &str) -> Option<String> {
    let d = def(name);
    let KnobKind::Choice(allowed) = d.kind else {
        debug_assert!(false, "{name} is not a Choice knob");
        return None;
    };
    let v = raw(name)?.trim().to_ascii_lowercase();
    allowed.contains(&v.as_str()).then_some(v)
}

/// The effective value of one knob: the validated environment/override
/// value if present, else the declared default. `explicit` records whether
/// the environment actually supplied it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnobValue {
    /// Knob name (`PAT_*`).
    pub name: &'static str,
    /// Effective (validated) value as a display string.
    pub value: String,
    /// True when the value came from the environment or an override.
    pub explicit: bool,
    /// The knob's declared scope.
    pub scope: KnobScope,
}

/// The effective configuration of every registered knob at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-knob effective values, in [`KNOBS`] order.
    pub values: Vec<KnobValue>,
}

impl Snapshot {
    /// `(name, effective value)` pairs for the output-affecting knobs — the
    /// subset bench artifacts and Chrome traces embed. Performance-only
    /// knobs are excluded by contract (see the module docs).
    pub fn artifact_entries(&self) -> Vec<(String, String)> {
        self.values
            .iter()
            .filter(|v| v.scope == KnobScope::Output)
            .map(|v| (v.name.to_string(), v.value.clone()))
            .collect()
    }

    /// The output-affecting subset as an ordered map, ready for JSON
    /// embedding (`"knobs": { ... }` in bench artifacts).
    pub fn artifact_map(&self) -> BTreeMap<String, String> {
        self.artifact_entries().into_iter().collect()
    }

    /// The output-affecting subset rendered as a compact JSON object, for
    /// exporters that hand-roll their JSON (Chrome traces).
    pub fn artifact_json(&self) -> String {
        let entries: Vec<String> = self
            .artifact_entries()
            .iter()
            .map(|(k, v)| format!("\"{k}\":\"{v}\""))
            .collect();
        format!("{{{}}}", entries.join(","))
    }

    /// The effective value of one knob in this snapshot.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.value.as_str())
    }
}

/// Captures the effective value of every registered knob. Invalid
/// environment values (unparseable numbers, unrecognized choices) collapse
/// to the declared default with `explicit: false`, mirroring what every
/// reader's fallback actually does.
pub fn snapshot() -> Snapshot {
    let values = KNOBS
        .iter()
        .map(|d| {
            let (value, explicit) = match d.kind {
                KnobKind::Usize => match usize_knob(d.name) {
                    Some(v) => (v.to_string(), true),
                    None => (d.default.to_string(), false),
                },
                KnobKind::Flag => {
                    let set = raw(d.name).is_some();
                    let on = flag(d.name);
                    (if on { "1" } else { "0" }.to_string(), set)
                }
                KnobKind::Choice(_) => match choice(d.name) {
                    Some(v) => (v, true),
                    None => (d.default.to_string(), false),
                },
            };
            KnobValue {
                name: d.name,
                value,
                explicit,
                scope: d.scope,
            }
        })
        .collect();
    Snapshot { values }
}

/// Renders the registry as the markdown table behind the README
/// "Performance knobs" section (`sim-lint --knobs` regenerates it; CI
/// diffs it against the README so docs cannot drift from code).
pub fn markdown_table() -> String {
    let mut out = String::from(
        "| Knob | Type | Default | Scope | Effect |\n\
         |------|------|---------|-------|--------|\n",
    );
    for d in KNOBS {
        let kind = match d.kind {
            KnobKind::Usize => "integer".to_string(),
            KnobKind::Flag => "flag".to_string(),
            KnobKind::Choice(allowed) => allowed.join(" \\| "),
        };
        let scope = match d.scope {
            KnobScope::Output => "output",
            KnobScope::PerfOnly => "perf-only",
        };
        let doc: String = d.doc.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {} | {} |\n",
            d.name, kind, d.default, scope, doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_knob_default_passes_its_own_parser() {
        for d in KNOBS {
            match d.kind {
                KnobKind::Usize => {
                    // "auto" is the one symbolic default (meaning: derived).
                    assert!(
                        d.default == "auto" || d.default.parse::<usize>().is_ok(),
                        "{}: default `{}` unparseable",
                        d.name,
                        d.default
                    );
                }
                KnobKind::Flag => assert!(matches!(d.default, "0" | "1"), "{}", d.name),
                KnobKind::Choice(allowed) => {
                    assert!(
                        allowed.contains(&d.default),
                        "{}: default not a choice",
                        d.name
                    )
                }
            }
            assert!(
                d.name.starts_with("PAT_"),
                "{}: knobs are PAT_-prefixed",
                d.name
            );
            assert!(!d.doc.is_empty(), "{}: doc required", d.name);
        }
    }

    #[test]
    fn knob_names_are_unique_and_ordered_stably() {
        let mut names: Vec<&str> = KNOBS.iter().map(|d| d.name).collect();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate knob declaration");
    }

    #[test]
    fn overrides_shadow_environment_and_clear() {
        set_override("PAT_STEP_CACHE", Some("77"));
        assert_eq!(usize_knob("PAT_STEP_CACHE"), Some(77));
        let snap = snapshot();
        assert_eq!(snap.get("PAT_STEP_CACHE"), Some("77"));
        set_override("PAT_STEP_CACHE", None);
    }

    #[test]
    fn invalid_values_collapse_to_defaults_in_snapshots() {
        set_override("PAT_GPU_MODEL", Some("mi300"));
        set_override("PAT_STEP_CACHE", Some("not-a-number"));
        let snap = snapshot();
        assert_eq!(snap.get("PAT_GPU_MODEL"), Some("a100"));
        assert_eq!(snap.get("PAT_STEP_CACHE"), Some("256"));
        assert!(!snap
            .values
            .iter()
            .any(|v| v.name == "PAT_GPU_MODEL" && v.explicit));
        set_override("PAT_GPU_MODEL", None);
        set_override("PAT_STEP_CACHE", None);
    }

    #[test]
    fn artifact_snapshot_excludes_perf_only_knobs() {
        let snap = snapshot();
        let map = snap.artifact_map();
        assert!(!map.contains_key("PAT_SIM_THREADS"));
        assert!(!map.contains_key("PAT_STEP_CACHE"));
        for name in [
            "PAT_BENCH_SMOKE",
            "PAT_REPLICA_FIDELITY",
            "PAT_GPU_MODEL",
            "PAT_TILE_POLICY",
        ] {
            assert!(
                map.contains_key(name),
                "{name} missing from artifact snapshot"
            );
        }
        let json = snap.artifact_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"PAT_GPU_MODEL\""));
    }

    #[test]
    fn markdown_table_covers_every_knob() {
        let table = markdown_table();
        for d in KNOBS {
            assert!(table.contains(d.name), "{} missing from table", d.name);
        }
        assert_eq!(
            table.lines().count(),
            KNOBS.len() + 2,
            "header + one row per knob"
        );
    }

    #[test]
    fn unregistered_knob_names_fail_fast() {
        assert!(std::panic::catch_unwind(|| raw("PAT_NOT_A_KNOB")).is_err());
    }
}
