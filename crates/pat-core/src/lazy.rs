//! The lazy-update mechanism (§5.1).
//!
//! The pack scheduler is linear, but invoking it per transformer layer per
//! decode step would still cost. PAT instead (1) reuses a packing across
//! continuous-batching iterations until the block-table *structure* changes
//! (arrivals, departures, or new block assignments — growing the final
//! partial block does not count), and (2) runs the scheduler asynchronously,
//! overlapped with pre-attention work, so its latency is not exposed
//! (validated in Fig. 16 / §8.7).

use crate::backend::{scheduling_cost_from_counts, PatBackend};
use crate::packer::Pack;
use crate::plan_state::{plan_cache_enabled, PlanReuse, PlanState};
use crate::selector::TileError;
use attn_kernel::{DecodeBatch, KernelPlan};
use kv_cache::PrefixForest;
use sim_gpu::GpuSpec;

/// Cache statistics of the lazy scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// Plans served from cache with frozen pack decisions (structure
    /// fingerprint hit).
    pub hits: u64,
    /// Plans re-packed from the incrementally patched forest (structure
    /// miss classified as chain-local; no forest rebuild).
    pub delta_hits: u64,
    /// Full scheduler invocations (forest rebuild + re-pack).
    pub misses: u64,
}

impl LazyStats {
    fn total(&self) -> u64 {
        self.hits + self.delta_hits + self.misses
    }

    /// Fraction of decode steps that reused a cached packing verbatim.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Fraction of decode steps that patched the maintained forest instead
    /// of rebuilding it (delta-planning hits).
    pub fn delta_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.delta_hits as f64 / self.total() as f64
        }
    }

    /// Fraction of decode steps that avoided a scratch forest rebuild —
    /// frozen replays plus delta patches.
    pub fn reuse_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.hits + self.delta_hits) as f64 / self.total() as f64
        }
    }
}

/// A PAT scheduler with plan caching across decode steps.
///
/// # Examples
///
/// ```
/// use attn_kernel::DecodeBatch;
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
/// use pat_core::LazyPat;
/// use sim_gpu::GpuSpec;
///
/// let head = HeadConfig::new(32, 8, 128);
/// let spec = GpuSpec::a100_sxm4_80gb();
/// let mut lazy = LazyPat::new();
/// let step = |tokens| DecodeBatch::new(head, vec![
///     BlockTable::new(vec![BlockId(0), BlockId(1)], tokens, 16),
///     BlockTable::new(vec![BlockId(0), BlockId(2)], tokens, 16),
/// ], 2);
/// lazy.plan(&step(20), &spec); // miss: full packing
/// lazy.plan(&step(21), &spec); // hit: same block structure, +1 token
/// assert_eq!(lazy.stats().misses, 1);
/// assert_eq!(lazy.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct LazyPat {
    backend: PatBackend,
    cached: Option<(u64, Vec<Pack>)>,
    state: Option<PlanState>,
    delta_enabled: bool,
    last_reuse: Option<PlanReuse>,
    last_cost_ns: Option<f64>,
    stats: LazyStats,
}

impl Default for LazyPat {
    fn default() -> Self {
        LazyPat::new()
    }
}

impl LazyPat {
    /// Creates a lazy scheduler around full PAT.
    pub fn new() -> Self {
        LazyPat::with_backend(PatBackend::default())
    }

    /// Creates a lazy scheduler around a configured backend. Delta-planning
    /// is governed by `PAT_PLAN_CACHE` (performance-only; plans are
    /// identical with it on or off).
    pub fn with_backend(backend: PatBackend) -> Self {
        LazyPat {
            backend,
            cached: None,
            state: None,
            delta_enabled: plan_cache_enabled(),
            last_reuse: None,
            last_cost_ns: None,
            stats: LazyStats::default(),
        }
    }

    /// Creates a lazy scheduler around [`PatBackend::from_env`] (tile
    /// policy from `PAT_TILE_POLICY`).
    pub fn from_env() -> Self {
        LazyPat::with_backend(PatBackend::from_env())
    }

    /// Overrides the `PAT_PLAN_CACHE` decision for this scheduler (A/B
    /// lever for benches and tests that must not touch process-global knob
    /// state).
    #[must_use]
    pub fn with_plan_cache(mut self, enabled: bool) -> Self {
        self.delta_enabled = enabled;
        self
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &PatBackend {
        &self.backend
    }

    /// Cache statistics.
    pub fn stats(&self) -> LazyStats {
        self.stats
    }

    /// How the most recent [`LazyPat::try_plan`] produced its packing, or
    /// `None` before the first plan.
    pub fn last_plan_reuse(&self) -> Option<PlanReuse> {
        self.last_reuse
    }

    /// Whether incremental delta-planning is active on this scheduler.
    pub fn plan_cache_active(&self) -> bool {
        self.delta_enabled
    }

    /// CPU-side pack-scheduler cost for `batch`, reusing the forest node
    /// count recorded by the most recent plan when the batch structure is
    /// unchanged (the serving engine samples this immediately after
    /// planning the same step). Bit-identical to
    /// [`PatBackend::scheduling_cost_ns`], which rebuilds the forest to
    /// count its nodes.
    pub fn scheduling_cost_ns(&self, batch: &DecodeBatch) -> f64 {
        match (self.last_cost_ns, &self.cached) {
            (Some(cost), Some((key, _))) if *key == structure_fingerprint(batch) => cost,
            _ => self.backend.scheduling_cost_ns(batch),
        }
    }

    /// Plans a decode step, reusing the cached packing when the block-table
    /// structure is unchanged. Token counts are refreshed either way, so the
    /// plan is always exact for the current step.
    ///
    /// # Panics
    ///
    /// Panics when tile selection fails; [`LazyPat::try_plan`] surfaces the
    /// same condition as a typed [`TileError`] instead.
    pub fn plan(&mut self, batch: &DecodeBatch, spec: &GpuSpec) -> KernelPlan {
        match self.try_plan(batch, spec) {
            Ok(plan) => plan,
            Err(e) => panic!("PAT planning failed on {}: {e}", spec.name),
        }
    }

    /// Fallible [`LazyPat::plan`]: surfaces no-feasible-tile conditions as
    /// [`TileError`] so serving replicas can record them instead of
    /// crashing. Cache statistics are updated either way (the pack stage
    /// itself cannot fail — only tile selection can).
    pub fn try_plan(
        &mut self,
        batch: &DecodeBatch,
        spec: &GpuSpec,
    ) -> Result<KernelPlan, TileError> {
        let key = structure_fingerprint(batch);
        let packs = match &self.cached {
            Some((cached_key, packs)) if *cached_key == key => {
                self.stats.hits += 1;
                self.last_reuse = Some(PlanReuse::Frozen);
                // A same-structure step cannot change query identities in
                // place, but a caller may stop attaching ids (or swap id
                // spaces); desynchronized state must not classify later
                // deltas.
                if let (Some(state), Some(ids)) = (&self.state, batch.query_ids()) {
                    if state.ids() != ids {
                        self.state = None;
                    }
                }
                let mut packs = packs.clone();
                for p in &mut packs {
                    p.refresh_tokens(batch.tables());
                }
                packs
            }
            _ => {
                let packs = self.plan_packs(batch);
                self.cached = Some((key, packs.clone()));
                packs
            }
        };
        self.backend.try_finish_plan(batch, packs, spec)
    }

    /// The structure-miss pack path: patch the maintained forest when the
    /// step's delta is chain-local, rebuild from scratch otherwise.
    fn plan_packs(&mut self, batch: &DecodeBatch) -> Vec<Pack> {
        let group_size = batch.head().group_size();
        if self.delta_enabled {
            if let Some(mut state) = self.state.take() {
                if state.advance(batch) {
                    self.stats.delta_hits += 1;
                    self.last_reuse = Some(PlanReuse::DeltaPatched);
                    self.note_cost(state.forest(), batch);
                    let packs = self.backend.pack_from_forest(state.forest(), group_size);
                    self.state = Some(state);
                    return packs;
                }
                // Structural step (or unpatchable edge): the state may be
                // partially patched — drop it and re-capture below.
            }
        }
        self.stats.misses += 1;
        self.last_reuse = Some(PlanReuse::Cold);
        let forest = PrefixForest::from_block_tables(batch.tables());
        self.note_cost(&forest, batch);
        let packs = self.backend.pack_from_forest(&forest, group_size);
        if self.delta_enabled {
            self.state = PlanState::capture(batch, forest);
        }
        packs
    }

    fn note_cost(&mut self, forest: &PrefixForest, batch: &DecodeBatch) {
        let blocks: usize = batch.tables().iter().map(|t| t.blocks().len()).sum();
        self.last_cost_ns = Some(scheduling_cost_from_counts(forest.num_nodes(), blocks));
    }

    /// Drops the cached packing and maintained plan state (e.g. on engine
    /// reconfiguration).
    pub fn invalidate(&mut self) {
        self.cached = None;
        self.state = None;
        self.last_cost_ns = None;
    }
}

/// Fingerprint of the batch's block-table *structure*: block ids and query
/// order, but not token counts (the final partial block grows every step
/// without changing the packing). Delegates to the shared
/// [`attn_kernel::batch_structure_fingerprint`] so the lazy-update cache
/// and the serving layer's step-simulation cache agree on what "identical
/// structure" means.
pub fn structure_fingerprint(batch: &DecodeBatch) -> u64 {
    attn_kernel::batch_structure_fingerprint(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    fn batch(rows: &[(&[u32], usize)]) -> DecodeBatch {
        let tables = rows
            .iter()
            .map(|(ids, tokens)| {
                BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), *tokens, 16)
            })
            .collect();
        DecodeBatch::new(HeadConfig::new(32, 8, 128), tables, 2)
    }

    #[test]
    fn token_growth_hits_the_cache_and_stays_exact() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        let p1 = lazy.plan(&batch(&[(&[0, 1], 20), (&[0, 2], 24)]), &spec);
        let b2 = batch(&[(&[0, 1], 21), (&[0, 2], 25)]);
        let p2 = lazy.plan(&b2, &spec);
        assert_eq!(
            lazy.stats(),
            LazyStats {
                hits: 1,
                delta_hits: 0,
                misses: 1
            }
        );
        // Refreshed plan covers the new token counts exactly.
        p2.validate(&b2).unwrap();
        let t1: usize = p1.ctas.iter().map(|c| c.kv.tokens * c.queries.len()).sum();
        let t2: usize = p2.ctas.iter().map(|c| c.kv.tokens * c.queries.len()).sum();
        assert_eq!(t2, t1 + 2);
    }

    #[test]
    fn new_block_invalidates() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        lazy.plan(&batch(&[(&[0, 1], 32), (&[0, 2], 32)]), &spec);
        // Query 0 rolled into a fresh block: structure changed.
        let b = batch(&[(&[0, 1, 7], 33), (&[0, 2], 32)]);
        let p = lazy.plan(&b, &spec);
        // Without query ids there is no plan state to patch: both steps are
        // full scheduler invocations.
        assert_eq!(
            lazy.stats(),
            LazyStats {
                hits: 0,
                delta_hits: 0,
                misses: 2
            }
        );
        p.validate(&b).unwrap();
    }

    #[test]
    fn arrival_and_departure_invalidate() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        lazy.plan(&batch(&[(&[0, 1], 32), (&[0, 2], 32)]), &spec);
        lazy.plan(
            &batch(&[(&[0, 1], 32), (&[0, 2], 32), (&[0, 3], 32)]),
            &spec,
        );
        lazy.plan(&batch(&[(&[0, 1], 32)]), &spec);
        assert_eq!(lazy.stats().misses, 3);
    }

    #[test]
    fn explicit_invalidation_forces_repack() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        let b = batch(&[(&[0, 1], 32), (&[0, 2], 32)]);
        lazy.plan(&b, &spec);
        lazy.invalidate();
        lazy.plan(&b, &spec);
        assert_eq!(
            lazy.stats(),
            LazyStats {
                hits: 0,
                delta_hits: 0,
                misses: 2
            }
        );
    }

    fn batch_with_ids(rows: &[(&[u32], usize)], ids: &[u64]) -> DecodeBatch {
        batch(rows).with_query_ids(ids.to_vec())
    }

    #[test]
    fn chain_local_steps_patch_instead_of_rebuilding() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        lazy.plan(
            &batch_with_ids(&[(&[0, 1], 32), (&[0, 2], 32), (&[5], 10)], &[7, 8, 9]),
            &spec,
        );
        // Request 7 crosses a block boundary; 9 completes; 11 arrives.
        let b = batch_with_ids(
            &[(&[0, 1, 3], 33), (&[0, 2], 32), (&[6, 7], 20)],
            &[7, 8, 11],
        );
        let patched = lazy.plan(&b, &spec);
        assert_eq!(
            lazy.stats(),
            LazyStats {
                hits: 0,
                delta_hits: 1,
                misses: 1
            }
        );
        assert_eq!(lazy.last_plan_reuse(), Some(crate::PlanReuse::DeltaPatched));
        // The patched plan is identical to what a cold scheduler produces.
        assert_eq!(patched, LazyPat::new().plan(&b, &spec));
    }

    #[test]
    fn disabled_plan_cache_always_rebuilds() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new().with_plan_cache(false);
        assert!(!lazy.plan_cache_active());
        lazy.plan(
            &batch_with_ids(&[(&[0, 1], 32), (&[0, 2], 32)], &[1, 2]),
            &spec,
        );
        let b = batch_with_ids(&[(&[0, 1, 3], 33), (&[0, 2], 32)], &[1, 2]);
        let p = lazy.plan(&b, &spec);
        assert_eq!(
            lazy.stats(),
            LazyStats {
                hits: 0,
                delta_hits: 0,
                misses: 2
            }
        );
        assert_eq!(lazy.last_plan_reuse(), Some(crate::PlanReuse::Cold));
        // Same plan as the delta path: the knob is performance-only.
        let mut with_cache = LazyPat::new().with_plan_cache(true);
        with_cache.plan(
            &batch_with_ids(&[(&[0, 1], 32), (&[0, 2], 32)], &[1, 2]),
            &spec,
        );
        assert_eq!(p, with_cache.plan(&b, &spec));
    }

    #[test]
    fn id_swap_on_frozen_hit_drops_the_state() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new().with_plan_cache(true);
        lazy.plan(
            &batch_with_ids(&[(&[0, 1], 31), (&[0, 2], 31)], &[1, 2]),
            &spec,
        );
        // Same structure, different identities: frozen hit, but the state
        // must not classify later deltas against the stale ids.
        lazy.plan(
            &batch_with_ids(&[(&[0, 1], 32), (&[0, 2], 32)], &[3, 4]),
            &spec,
        );
        assert_eq!(lazy.last_plan_reuse(), Some(crate::PlanReuse::Frozen));
        // Chain-local-looking step now goes cold (no state to patch).
        lazy.plan(
            &batch_with_ids(&[(&[0, 1, 5], 33), (&[0, 2], 32)], &[3, 4]),
            &spec,
        );
        assert_eq!(
            lazy.stats(),
            LazyStats {
                hits: 1,
                delta_hits: 0,
                misses: 2
            }
        );
    }

    #[test]
    fn scheduling_cost_matches_backend_formula() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        let b0 = batch_with_ids(&[(&[0, 1], 32), (&[0, 2], 32)], &[1, 2]);
        // Before any plan: falls back to the batch-walking form.
        assert_eq!(
            lazy.scheduling_cost_ns(&b0),
            lazy.backend().scheduling_cost_ns(&b0)
        );
        lazy.plan(&b0, &spec);
        assert_eq!(
            lazy.scheduling_cost_ns(&b0),
            lazy.backend().scheduling_cost_ns(&b0)
        );
        // After a delta-patched step the recorded cost still matches the
        // scratch formula bit-for-bit.
        let b1 = batch_with_ids(&[(&[0, 1, 4], 33), (&[0, 2], 32)], &[1, 2]);
        lazy.plan(&b1, &spec);
        assert_eq!(lazy.stats().delta_hits, 1);
        assert_eq!(
            lazy.scheduling_cost_ns(&b1),
            lazy.backend().scheduling_cost_ns(&b1)
        );
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let mut lazy = LazyPat::new();
        for tokens in 20..30 {
            lazy.plan(&batch(&[(&[0, 1], tokens), (&[0, 2], tokens)]), &spec);
        }
        assert!((lazy.stats().hit_rate() - 0.9).abs() < 1e-12);
    }
}
