//! Synthetic decode batches with controlled prefix structure (§8.2).
//!
//! A batch is specified by `B` and `L` exactly as in the paper: `B` defines
//! the prefix-tree node counts per level (the last entry is the number of
//! leaves, i.e. the batch size) and `L` the KV tokens contributed at each
//! level. For example `B = [1, 4, 16]`, `L = [128, 256, 1024]` builds one
//! 128-token first-level prefix, four 256-token second-level prefixes, and
//! 16 requests with 1024 non-shared tokens each.

use attn_kernel::DecodeBatch;
use attn_math::HeadConfig;
use kv_cache::{BlockId, BlockTable, DEFAULT_BLOCK_SIZE};

/// A `(B, L)` batch specification.
///
/// # Examples
///
/// ```
/// use attn_math::HeadConfig;
/// use workloads::BatchSpec;
///
/// let spec = BatchSpec::new(vec![1, 4, 16], vec![128, 256, 1024]);
/// let batch = spec.build(HeadConfig::new(32, 8, 128));
/// assert_eq!(batch.num_queries(), 16);
/// assert_eq!(batch.kv_len(0), 128 + 256 + 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec {
    b: Vec<usize>,
    l: Vec<usize>,
}

impl BatchSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics unless `b` and `l` have equal nonzero length, node counts are
    /// nondecreasing with each level dividing the next, and every level
    /// length is positive.
    pub fn new(b: Vec<usize>, l: Vec<usize>) -> Self {
        assert_eq!(b.len(), l.len(), "B and L must have equal length");
        assert!(!b.is_empty(), "spec needs at least one level");
        assert!(
            b[0] >= 1 && l.iter().all(|&x| x > 0),
            "levels must be positive"
        );
        for w in b.windows(2) {
            assert!(
                w[1] >= w[0] && w[1] % w[0] == 0,
                "node counts must divide: {} -> {}",
                w[0],
                w[1]
            );
        }
        BatchSpec { b, l }
    }

    /// Tree-structured decoding (beam search / speculative trees — the
    /// workload DeFT targets): `beams` hypotheses share the prompt and
    /// diverge in a binary tree as decoding progresses, so each divergence
    /// level contributes `decoded_tokens / levels` shared tokens.
    ///
    /// # Panics
    ///
    /// Panics unless `beams` is a power of two ≥ 2 and lengths are positive.
    pub fn beam_search(prompt_tokens: usize, beams: usize, decoded_tokens: usize) -> Self {
        assert!(
            beams.is_power_of_two() && beams >= 2,
            "beams must be a power of two >= 2"
        );
        assert!(
            prompt_tokens > 0 && decoded_tokens > 0,
            "lengths must be positive"
        );
        let levels = beams.trailing_zeros() as usize;
        let mut b = vec![1usize];
        let mut l = vec![prompt_tokens];
        let per_level = (decoded_tokens / levels).max(1);
        for k in 1..=levels {
            b.push(1 << k);
            l.push(per_level);
        }
        BatchSpec::new(b, l)
    }

    /// The per-level node counts.
    pub fn levels(&self) -> &[usize] {
        &self.b
    }

    /// The per-level KV token lengths.
    pub fn lengths(&self) -> &[usize] {
        &self.l
    }

    /// Batch size (number of leaves).
    pub fn batch_size(&self) -> usize {
        *self.b.last().expect("non-empty")
    }

    /// Whether the spec has any shared prefix level.
    pub fn has_prefix(&self) -> bool {
        self.b.len() > 1
    }

    /// Short display form, e.g. `B=[1,4,16] L=[128,256,1024]`.
    pub fn label(&self) -> String {
        format!("B={:?} L={:?}", self.b, self.l)
    }

    /// Builds the decode batch with fp16 KV and 16-token blocks.
    pub fn build(&self, head: HeadConfig) -> DecodeBatch {
        let bs = DEFAULT_BLOCK_SIZE;
        let mut next_block: u32 = 0;
        // Per level, assign each node a run of fresh blocks. The final block
        // of each non-leaf level is padded to a block boundary so levels
        // share at whole-block granularity (as real paged caches do).
        let mut level_blocks: Vec<Vec<Vec<BlockId>>> = Vec::new();
        for (&nodes, &len) in self.b.iter().zip(&self.l) {
            let blocks_needed = len.div_ceil(bs);
            let mut per_node = Vec::with_capacity(nodes);
            for _ in 0..nodes {
                let run: Vec<BlockId> = (next_block..next_block + blocks_needed as u32)
                    .map(BlockId)
                    .collect();
                next_block += blocks_needed as u32;
                per_node.push(run);
            }
            level_blocks.push(per_node);
        }
        let batch_size = self.batch_size();
        let tables: Vec<BlockTable> = (0..batch_size)
            .map(|q| {
                let mut blocks = Vec::new();
                let mut tokens = 0usize;
                for (level, per_node) in level_blocks.iter().enumerate() {
                    let node = q * self.b[level] / batch_size;
                    blocks.extend_from_slice(&per_node[node]);
                    // Shared levels occupy whole blocks; only the leaf level
                    // may end mid-block.
                    if level + 1 < self.b.len() {
                        tokens += self.l[level].div_ceil(bs) * bs;
                    } else {
                        tokens += self.l[level];
                    }
                }
                BlockTable::new(blocks, tokens, bs)
            })
            .collect();
        DecodeBatch::new(head, tables, 2)
    }
}

/// The 20 decode-batch configurations of the kernel benchmark (Fig. 11 /
/// Fig. 17). Configurations 1–18 have shared prefixes (① multiple levels,
/// multiple first-level roots, short/long prefixes, small/large batches);
/// 19–20 have none.
pub fn figure11_specs() -> Vec<BatchSpec> {
    vec![
        /* 1 */ BatchSpec::new(vec![1, 8], vec![128, 1024]),
        /* 2 */ BatchSpec::new(vec![1, 8], vec![1024, 1024]),
        /* 3 */ BatchSpec::new(vec![1, 8], vec![4096, 1024]),
        /* 4 */ BatchSpec::new(vec![1, 32], vec![1024, 1024]),
        /* 5 */ BatchSpec::new(vec![1, 64], vec![1024, 1024]),
        /* 6 */ BatchSpec::new(vec![1, 4, 16], vec![128, 256, 1024]),
        /* 7 */ BatchSpec::new(vec![1, 4, 16], vec![1024, 2048, 1024]),
        /* 8 */ BatchSpec::new(vec![1, 4, 64], vec![2048, 512, 256]),
        /* 9 */ BatchSpec::new(vec![2, 8], vec![1024, 512]),
        /* 10 */ BatchSpec::new(vec![4, 64], vec![2048, 256]),
        /* 11 */ BatchSpec::new(vec![1, 2, 4, 8, 16], vec![512, 512, 512, 512, 512]),
        /* 12 */ BatchSpec::new(vec![1, 16], vec![2517, 512]),
        /* 13 */ BatchSpec::new(vec![1, 8, 64], vec![48, 304, 1776]),
        /* 14 */ BatchSpec::new(vec![4, 16, 64], vec![512, 512, 512]),
        /* 15 */ BatchSpec::new(vec![1, 128], vec![2048, 256]),
        /* 16 */ BatchSpec::new(vec![2, 4, 32], vec![1024, 512, 768]),
        /* 17 */ BatchSpec::new(vec![1, 32], vec![8192, 512]),
        /* 18 */ BatchSpec::new(vec![8, 64], vec![128, 2048]),
        /* 19 */ BatchSpec::new(vec![8], vec![1024]),
        /* 20 */ BatchSpec::new(vec![64], vec![1024]),
    ]
}

/// The ablation workload of §8.6: the Fig. 11 suite extended with
/// short-first-level-prefix trees where the Scheme-1/Scheme-2 packing
/// decision (and thus the memory- vs compute-oriented cost models) actually
/// diverges — CTA query sizes span 1–64 and KV lengths 32–4096.
pub fn ablation_specs() -> Vec<BatchSpec> {
    let mut specs = figure11_specs();
    specs.extend([
        // Short roots over large child groups: 4*s_i > l_u, so PAT merges
        // the parent blocks downward while PAT-naive splits every node.
        BatchSpec::new(vec![1, 8, 64], vec![16, 512, 512]),
        BatchSpec::new(vec![1, 4, 64], vec![32, 2048, 256]),
        BatchSpec::new(vec![1, 2, 32], vec![16, 4096, 512]),
        BatchSpec::new(vec![1, 2, 16], vec![32, 1024, 64]),
        BatchSpec::new(vec![1, 4, 16], vec![48, 320, 32]),
        BatchSpec::new(vec![2, 16, 64], vec![16, 768, 384]),
    ]);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_cache::BatchPrefixStats;

    fn head() -> HeadConfig {
        HeadConfig::new(32, 8, 128)
    }

    #[test]
    fn paper_example_structure() {
        let spec = BatchSpec::new(vec![1, 4, 16], vec![128, 256, 1024]);
        let batch = spec.build(head());
        let forest = batch.forest();
        assert_eq!(forest.roots().len(), 1);
        assert_eq!(forest.roots()[0].children.len(), 4);
        // 1 root + 4 mid + 16 leaves.
        assert_eq!(forest.num_nodes(), 21);
        assert_eq!(forest.num_shared_nodes(), 5);
    }

    #[test]
    fn multiple_first_level_roots() {
        let spec = BatchSpec::new(vec![2, 8], vec![1024, 512]);
        let batch = spec.build(head());
        assert_eq!(batch.forest().roots().len(), 2);
        // Queries 0-3 share root 0, queries 4-7 share root 1.
        assert_eq!(batch.tables()[0].blocks()[0], batch.tables()[3].blocks()[0]);
        assert_ne!(batch.tables()[0].blocks()[0], batch.tables()[4].blocks()[0]);
    }

    #[test]
    fn no_prefix_specs_have_zero_coverage() {
        let spec = BatchSpec::new(vec![8], vec![1024]);
        let batch = spec.build(head());
        let stats = BatchPrefixStats::from_tables(batch.tables());
        assert_eq!(stats.shared_coverage(), 0.0);
        assert!(!spec.has_prefix());
    }

    #[test]
    fn kv_lengths_match_level_sums() {
        let spec = BatchSpec::new(vec![1, 4, 16], vec![100, 250, 1000]);
        let batch = spec.build(head());
        // Shared levels round to block boundaries: 112 + 256 + 1000.
        assert_eq!(batch.kv_len(0), 112 + 256 + 1000);
    }

    #[test]
    fn figure11_set_has_twenty_entries() {
        let specs = figure11_specs();
        assert_eq!(specs.len(), 20);
        assert!(specs[..18].iter().all(BatchSpec::has_prefix));
        assert!(specs[18..].iter().all(|s| !s.has_prefix()));
        for spec in &specs {
            let batch = spec.build(head());
            assert_eq!(batch.num_queries(), spec.batch_size());
        }
    }

    #[test]
    fn beam_search_builds_a_binary_divergence_tree() {
        let spec = BatchSpec::beam_search(1024, 8, 192);
        let batch = spec.build(head());
        assert_eq!(batch.num_queries(), 8);
        let forest = batch.forest();
        assert_eq!(forest.roots().len(), 1);
        // Root + 2 + 4 + 8 = 15 nodes; all internal nodes shared.
        assert_eq!(forest.num_nodes(), 15);
        assert_eq!(forest.num_shared_nodes(), 7);
        // Every beam's KV = prompt + 3 levels of 64 decoded tokens.
        assert_eq!(batch.kv_len(0), 1024 + 3 * 64);
    }

    #[test]
    fn ablation_specs_extend_figure11() {
        let specs = ablation_specs();
        assert_eq!(specs.len(), 26);
        // The extra configs have short first-level prefixes.
        assert!(specs[20..].iter().all(|s| s.lengths()[0] <= 48));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_dividing_levels_rejected() {
        let _ = BatchSpec::new(vec![3, 8], vec![16, 16]);
    }
}
