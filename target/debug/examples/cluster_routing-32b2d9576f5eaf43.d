/root/repo/target/debug/examples/cluster_routing-32b2d9576f5eaf43.d: examples/cluster_routing.rs

/root/repo/target/debug/examples/cluster_routing-32b2d9576f5eaf43: examples/cluster_routing.rs

examples/cluster_routing.rs:
