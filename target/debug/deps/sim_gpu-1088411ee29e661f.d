/root/repo/target/debug/deps/sim_gpu-1088411ee29e661f.d: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs

/root/repo/target/debug/deps/sim_gpu-1088411ee29e661f: crates/sim-gpu/src/lib.rs crates/sim-gpu/src/chrome.rs crates/sim-gpu/src/engine.rs crates/sim-gpu/src/l2.rs crates/sim-gpu/src/memory.rs crates/sim-gpu/src/occupancy.rs crates/sim-gpu/src/spec.rs crates/sim-gpu/src/trace.rs

crates/sim-gpu/src/lib.rs:
crates/sim-gpu/src/chrome.rs:
crates/sim-gpu/src/engine.rs:
crates/sim-gpu/src/l2.rs:
crates/sim-gpu/src/memory.rs:
crates/sim-gpu/src/occupancy.rs:
crates/sim-gpu/src/spec.rs:
crates/sim-gpu/src/trace.rs:
