/root/repo/target/debug/deps/serde_json-7d5b240b78407421.d: crates/compat-serde-json/src/lib.rs

/root/repo/target/debug/deps/serde_json-7d5b240b78407421: crates/compat-serde-json/src/lib.rs

crates/compat-serde-json/src/lib.rs:
