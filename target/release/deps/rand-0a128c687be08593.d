/root/repo/target/release/deps/rand-0a128c687be08593.d: crates/compat-rand/src/lib.rs

/root/repo/target/release/deps/librand-0a128c687be08593.rlib: crates/compat-rand/src/lib.rs

/root/repo/target/release/deps/librand-0a128c687be08593.rmeta: crates/compat-rand/src/lib.rs

crates/compat-rand/src/lib.rs:
