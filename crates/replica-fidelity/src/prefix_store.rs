//! Block-granularity prefix-warmth tracking for analytical replicas.
//!
//! An analytical replica does not maintain a real paged KV cache, but the
//! fleet still needs its prefix-warmth behavior: routers probe overlap,
//! prefills get a discount for resident prefixes, and the KV transfer plane
//! imports prefixes into it. [`PrefixStore`] mirrors the real
//! [`kv_cache::CacheManager`] at exactly the granularity that matters for
//! those questions — the *chain hash* of each leading full block of a
//! token sequence — without holding block tables or token payloads.
//!
//! Residency is bounded (`capacity` blocks) with deterministic
//! sequence-number LRU eviction, so a store never grows past a few
//! megabytes even under millions of requests. All maps are `BTreeMap`s;
//! behavior is a pure function of the call sequence.

use kv_cache::{IngestReport, Token};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// Bounded, deterministic store of resident KV block-chain hashes.
#[derive(Debug, Clone)]
pub struct PrefixStore {
    /// Chain hash of a resident full block → last-used sequence number.
    by_hash: BTreeMap<u64, u64>,
    /// LRU index: (last-used sequence number, chain hash).
    by_seq: BTreeSet<(u64, u64)>,
    capacity: usize,
    block_size: usize,
    seq: u64,
    hit_tokens: u64,
    miss_tokens: u64,
    imported_tokens: u64,
}

impl PrefixStore {
    /// A store tracking at most `capacity` blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(capacity: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        PrefixStore {
            by_hash: BTreeMap::new(),
            by_seq: BTreeSet::new(),
            capacity: capacity.max(1),
            block_size,
            seq: 0,
            hit_tokens: 0,
            miss_tokens: 0,
            imported_tokens: 0,
        }
    }

    /// The block size in tokens.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks currently tracked as resident.
    pub fn len(&self) -> usize {
        self.by_hash.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.by_hash.is_empty()
    }

    /// Token-level `(hit, miss)` counters, mirroring
    /// [`kv_cache::CacheStats`] semantics (decode appends count as misses).
    pub fn hit_miss_tokens(&self) -> (u64, u64) {
        (self.hit_tokens, self.miss_tokens)
    }

    /// Token-level hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_tokens + self.miss_tokens;
        if total == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / total as f64
        }
    }

    /// Chain hash of each leading full block of `tokens`, in order.
    fn chain_hashes(&self, tokens: &[Token]) -> Vec<u64> {
        let blocks = tokens.len() / self.block_size;
        let mut hashes = Vec::with_capacity(blocks);
        let mut chain = 0u64;
        for b in 0..blocks {
            let mut h = DefaultHasher::new();
            chain.hash(&mut h);
            tokens[b * self.block_size..(b + 1) * self.block_size].hash(&mut h);
            chain = h.finish();
            hashes.push(chain);
        }
        hashes
    }

    /// Leading tokens of `tokens` that are resident, at block granularity.
    /// Read-only: does not touch recency (mirroring the read-only probe
    /// contract of [`kv_cache::CacheManager::prefix_overlap_tokens`]).
    pub fn overlap_tokens(&self, tokens: &[Token]) -> usize {
        let mut covered = 0usize;
        for hash in self.chain_hashes(tokens) {
            if self.by_hash.contains_key(&hash) {
                covered += self.block_size;
            } else {
                break;
            }
        }
        covered.min(tokens.len())
    }

    /// Marks one chain hash resident (or refreshes its recency), evicting
    /// the least recently used block when full.
    fn touch(&mut self, hash: u64) -> bool {
        self.seq += 1;
        if let Some(seq) = self.by_hash.get_mut(&hash) {
            self.by_seq.remove(&(*seq, hash));
            *seq = self.seq;
            self.by_seq.insert((self.seq, hash));
            return true;
        }
        if self.by_hash.len() >= self.capacity {
            if let Some(&(victim_seq, victim_hash)) = self.by_seq.iter().next() {
                self.by_seq.remove(&(victim_seq, victim_hash));
                self.by_hash.remove(&victim_hash);
            }
        }
        self.by_hash.insert(hash, self.seq);
        self.by_seq.insert((self.seq, hash));
        false
    }

    /// Records a prefill of `tokens`: every leading full block becomes
    /// resident, and the call returns how many leading tokens were already
    /// resident (the prefill compute discount). Counts hit/miss tokens like
    /// a real cache insert (the partial tail block is always a miss).
    pub fn insert_sequence(&mut self, tokens: &[Token]) -> usize {
        let mut covered = 0usize;
        let mut prefix_intact = true;
        for hash in self.chain_hashes(tokens) {
            let was_resident = self.touch(hash);
            if was_resident && prefix_intact {
                covered += self.block_size;
            } else {
                prefix_intact = false;
            }
        }
        let covered = covered.min(tokens.len());
        self.hit_tokens += covered as u64;
        self.miss_tokens += (tokens.len() - covered) as u64;
        covered
    }

    /// Counts `n` decode-appended tokens (always misses, as in
    /// [`kv_cache::CacheStats`]).
    pub fn note_decode_tokens(&mut self, n: u64) {
        self.miss_tokens += n;
    }

    /// Imports the full-block prefix of `tokens` as if streamed from a
    /// donor replica, without counting hits or misses. Returns the same
    /// accounting as [`kv_cache::CacheManager::ingest_prefix`].
    pub fn ingest_prefix(&mut self, tokens: &[Token]) -> IngestReport {
        let mut covered_blocks = 0usize;
        let mut imported_blocks = 0usize;
        for hash in self.chain_hashes(tokens) {
            if !self.touch(hash) {
                imported_blocks += 1;
            }
            covered_blocks += 1;
        }
        let imported_tokens = imported_blocks * self.block_size;
        self.imported_tokens += imported_tokens as u64;
        IngestReport {
            covered_tokens: covered_blocks * self.block_size,
            imported_tokens,
            imported_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(range: std::ops::Range<u32>) -> Vec<Token> {
        range.collect()
    }

    #[test]
    fn overlap_grows_with_inserts_at_block_granularity() {
        let mut s = PrefixStore::new(1024, 16);
        assert_eq!(s.overlap_tokens(&toks(0..40)), 0);
        let covered = s.insert_sequence(&toks(0..40));
        assert_eq!(covered, 0);
        // Two full blocks resident; the 8-token tail is not.
        assert_eq!(s.overlap_tokens(&toks(0..40)), 32);
        assert_eq!(s.overlap_tokens(&toks(0..32)), 32);
        // A diverging second block stops the chain after one block.
        let mut diverged = toks(0..40);
        diverged[20] = 9999;
        assert_eq!(s.overlap_tokens(&diverged), 16);
    }

    #[test]
    fn reinsert_counts_hits() {
        let mut s = PrefixStore::new(1024, 16);
        s.insert_sequence(&toks(0..64));
        let covered = s.insert_sequence(&toks(0..64));
        assert_eq!(covered, 64);
        let (hit, miss) = s.hit_miss_tokens();
        assert_eq!((hit, miss), (64, 64));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_is_bounded_and_ordered() {
        let mut s = PrefixStore::new(2, 16);
        s.insert_sequence(&toks(0..16));
        s.insert_sequence(&toks(100..116));
        assert_eq!(s.len(), 2);
        // Refresh the first, then insert a third: the second is evicted.
        assert_eq!(s.overlap_tokens(&toks(0..16)), 16);
        s.insert_sequence(&toks(0..16));
        s.insert_sequence(&toks(200..216));
        assert_eq!(s.len(), 2);
        assert_eq!(s.overlap_tokens(&toks(0..16)), 16);
        assert_eq!(s.overlap_tokens(&toks(100..116)), 0);
        assert_eq!(s.overlap_tokens(&toks(200..216)), 16);
    }

    #[test]
    fn ingest_reports_imported_and_covered() {
        let mut s = PrefixStore::new(1024, 16);
        let r = s.ingest_prefix(&toks(0..40));
        assert_eq!(r.covered_tokens, 32);
        assert_eq!(r.imported_tokens, 32);
        assert_eq!(r.imported_blocks, 2);
        // Second ingest of the same prefix imports nothing new.
        let r2 = s.ingest_prefix(&toks(0..40));
        assert_eq!(r2.covered_tokens, 32);
        assert_eq!(r2.imported_tokens, 0);
        // Ingested prefixes serve prefill overlap.
        assert_eq!(s.overlap_tokens(&toks(0..40)), 32);
    }
}
