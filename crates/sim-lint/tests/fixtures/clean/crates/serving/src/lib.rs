//! Fixture: negatives for the configuration and cast rules — reading
//! knobs through the registry and spelling casts the blessed way is
//! clean in a simulation crate.

/// Widening casts are lossless and untouched by R8.
pub fn widen(x: u16) -> u64 {
    u64::from(x) + (x as u64)
}

/// Routing a truncation through the blessed helper is the sanctioned
/// spelling; the helper name itself must not trip R8.
pub fn shrink(x: u64) -> u32 {
    sim_core::cast::u64_to_u32(x)
}

/// Reading through the registry, not `std::env`, is the sanctioned path
/// (the `flag` call must not trip R7).
pub fn smoke() -> bool {
    sim_core::knobs::flag("PAT_BENCH_SMOKE")
}
