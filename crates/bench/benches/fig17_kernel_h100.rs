//! Fig. 17 (Appendix A): the Fig. 11 kernel benchmark re-run on the
//! simulated H100, with the tile suite re-derived by the constraint solver.

use pat_bench::{run_kernel_figure, save_json};
use sim_gpu::GpuSpec;

fn main() {
    let cells =
        run_kernel_figure(&GpuSpec::h100_sxm5_80gb(), "Fig. 17").expect("kernel figure simulates");
    save_json("fig17_kernel_h100", &cells).expect("persist bench results");
}
