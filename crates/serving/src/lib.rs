//! # serving — a continuous-batching LLM serving simulator
//!
//! The end-to-end substrate of the PAT reproduction (the role vLLM v0.9.0
//! plays in the paper): request arrival → prefill admission with a
//! prefix-reusing paged KV cache → decode steps whose attention is planned by
//! a pluggable backend ([`ServingAttention`]) and priced on the GPU
//! simulator, with all non-attention work covered by a roofline
//! [`CostModel`]. Produces the paper's serving metrics (TTFT, mean/P99 TPOT —
//! Fig. 12/13), the latency breakdown of Fig. 1, and the scheduler-overhead
//! samples of Fig. 16. Supports TP/PP sharding and MoE cost modelling (§8.5).
//!
//! ## Example
//!
//! ```no_run
//! use pat_core::LazyPat;
//! use serving::{simulate_serving, ModelSpec, ServingConfig};
//! use workloads::{generate_trace, TraceConfig, TraceKind};
//!
//! let requests = generate_trace(TraceConfig {
//!     kind: TraceKind::Conversation,
//!     rate_per_s: 5.0,
//!     duration_s: 30.0,
//!     seed: 1,
//! });
//! let config = ServingConfig::single_gpu(ModelSpec::llama3_8b());
//! let mut pat = LazyPat::new();
//! let result = simulate_serving(&config, &mut pat, &requests);
//! println!("mean TPOT: {:.2} ms", result.metrics.mean_tpot_ms);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attention;
mod breakdown;
mod costs;
mod engine;
mod metrics;
mod model;

pub use attention::{ServingAttention, Stateless};
pub use attn_kernel::{StepSimCache, StepSimReport, StepSimStats, DEFAULT_STEP_CACHE_CAPACITY};
pub use breakdown::{latency_breakdown, BreakdownRow};
pub use costs::CostModel;
pub use engine::{
    simulate_serving, EngineError, Parallelism, ServingConfig, ServingEngine, SimulationResult,
    StepOutcome,
};
pub use metrics::{percentile, AggregateMetrics, RequestMetrics};
pub use model::{ModelSpec, MoeSpec};
