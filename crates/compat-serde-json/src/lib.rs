//! Minimal in-workspace stand-in for `serde_json`.
//!
//! Renders and parses the [`serde::Value`] model of the in-workspace serde
//! stub. Floats print with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` preserves every `f64` exactly (the guarantee the
//! real crate's `float_roundtrip` feature provides).

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats (JSON has no representation).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Value::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::custom("non-finite float is not valid JSON"));
            }
            // Rust's shortest round-trip formatting; force a decimal point so
            // the number re-parses as a float-compatible value.
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, b"[]", items.len(), indent, level, |out, i, lvl| {
                write_value(out, &items[i], indent, lvl)
            })?;
        }
        Value::Map(entries) => {
            write_bracketed(out, b"{}", entries.len(), indent, level, |out, i, lvl| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, lvl)
            })?;
        }
    }
    Ok(())
}

fn write_bracketed(
    out: &mut String,
    brackets: &[u8; 2],
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(brackets[0] as char);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i, level + 1)?;
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets[1] as char);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::Int(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let v = Value::Map(vec![
            ("id".into(), Value::UInt(3)),
            ("arrival_s".into(), Value::Float(0.12345678901234567)),
            ("neg".into(), Value::Int(-7)),
            ("name".into(), Value::Str("a \"quoted\" \\ line\n".into())),
            (
                "seq".into(),
                Value::Seq(vec![Value::Null, Value::Bool(true), Value::Float(1.5)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        // Integral-valued floats reparse as ints; compare numerically.
        assert_eq!(
            parsed.get("arrival_s").unwrap().as_f64(),
            Some(0.12345678901234567)
        );
        assert_eq!(parsed.get("neg").unwrap().as_i64(), Some(-7));
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(
            parsed.get("name").unwrap(),
            &Value::Str("a \"quoted\" \\ line\n".into())
        );
        let pretty = to_string_pretty(&v).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [1.0 / 3.0, 1e-308, 123456.789, f64::MIN_POSITIVE, 0.59] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x, y, "{s}");
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
