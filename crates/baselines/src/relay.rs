//! RelayAttention and RelayAttention++ (§8.2 baselines 4–5).
//!
//! RelayAttention packs the single first-level shared system prefix into
//! dedicated CTAs and delegates the per-request suffixes to FlashAttention's
//! kernel. It cannot handle multi-level prefixes or multiple first-level
//! prefixes (missing bars in Fig. 11/12).
//!
//! RelayAttention++ is the paper's extension: deeper shared prefixes stay in
//! one physical copy (vLLM-style reuse), and suffix CTAs that share blocks
//! are issued adjacently so the redundant re-loads hit L2
//! ([`L2Affinity::Grouped`]). It still requires a single first-level prefix.

use crate::common::supported_tile;
use attn_kernel::{
    AttentionBackend, CtaPlan, DecodeBatch, KernelPlan, KvSlice, L2Affinity, TileConfig,
};
use kv_cache::PrefixForest;
use sim_gpu::GpuSpec;

/// Tile of the delegated FlashAttention kernel.
const FA_TILE: TileConfig = TileConfig { m: 64, n: 128 };

/// Builds the relay plan: prefix CTAs (chunked over queries to fit the FA
/// tile) plus one suffix CTA per query. The delegated FlashAttention tile
/// degrades with the device, like FA itself.
fn relay_plan(batch: &DecodeBatch, spec: &GpuSpec, affinity: L2Affinity) -> KernelPlan {
    let tile = supported_tile(spec, batch.head().head_dim(), batch.dtype_bytes(), FA_TILE);
    let bs = batch.block_size();
    let forest = batch.forest();
    let root = &forest.roots()[0];
    let prefix_blocks = root.blocks.clone();
    let prefix_tokens = root.token_len;
    let g = batch.head().group_size();
    let per_cta = (tile.m / g).max(1);

    let mut ctas = Vec::new();
    let queries: Vec<usize> = (0..batch.num_queries()).collect();
    for chunk in queries.chunks(per_cta) {
        ctas.push(CtaPlan {
            queries: chunk.to_vec(),
            kv: KvSlice::new(prefix_blocks.clone(), prefix_tokens, bs),
            tile,
            stream: 0,
            phase: 0,
        });
    }
    // The suffix kernel launches after the prefix (relay) kernel completes:
    // two serial FlashAttention launches on one stream.
    for q in 0..batch.num_queries() {
        let table = &batch.tables()[q];
        let suffix_blocks = table.blocks()[prefix_blocks.len()..].to_vec();
        let tokens = table.num_tokens() - prefix_tokens;
        if tokens > 0 {
            ctas.push(CtaPlan {
                queries: vec![q],
                kv: KvSlice::new(suffix_blocks, tokens, bs),
                tile,
                stream: 0,
                phase: 1,
            });
        }
    }
    let mut plan = KernelPlan::new(ctas);
    plan.l2_affinity = affinity;
    // Relay delegates its forward kernels to FlashAttention, inheriting its
    // GQA-oblivious per-query-head grid (§8.4: Relay's curves track FA's).
    plan.per_query_head_kv = true;
    plan
}

/// Whether the batch has exactly one first-level prefix covering all queries.
fn single_first_level_prefix(forest: &PrefixForest, num_queries: usize) -> bool {
    forest.roots().len() == 1
        && forest.roots()[0].num_queries() == num_queries
        && forest.roots()[0].token_len > 0
        && num_queries > 1
}

/// RelayAttention: single system-prefix relay + FlashAttention suffixes.
#[derive(Debug, Clone, Default)]
pub struct RelayAttention;

impl RelayAttention {
    /// Creates the backend.
    pub fn new() -> Self {
        RelayAttention
    }
}

impl AttentionBackend for RelayAttention {
    fn name(&self) -> &str {
        "RelayAttention"
    }

    fn supports(&self, batch: &DecodeBatch) -> bool {
        let forest = batch.forest();
        // No multi-level prefixes: below the shared root, every child must be
        // a private leaf.
        single_first_level_prefix(&forest, batch.num_queries())
            && forest.roots()[0].children.iter().all(|c| c.is_leaf())
    }

    fn plan(&self, batch: &DecodeBatch, spec: &GpuSpec) -> KernelPlan {
        relay_plan(batch, spec, L2Affinity::Scattered)
    }
}

/// RelayAttention++: relay + KV-cache reuse for deeper prefixes via L2.
#[derive(Debug, Clone, Default)]
pub struct RelayAttentionPP;

impl RelayAttentionPP {
    /// Creates the backend.
    pub fn new() -> Self {
        RelayAttentionPP
    }
}

impl AttentionBackend for RelayAttentionPP {
    fn name(&self) -> &str {
        "RelayAttention++"
    }

    fn supports(&self, batch: &DecodeBatch) -> bool {
        // Multi-level prefixes are fine (they reuse L2), but there must be a
        // single first-level prefix shared by every request.
        single_first_level_prefix(&batch.forest(), batch.num_queries())
    }

    fn plan(&self, batch: &DecodeBatch, spec: &GpuSpec) -> KernelPlan {
        relay_plan(batch, spec, L2Affinity::Grouped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_kernel::{
        execute_numeric, reference_output, simulate_plan, KvStore, QueryActivations,
    };
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    /// All queries share blocks [0..8); multi_level adds a second-level
    /// prefix for half the queries.
    fn batch(head: HeadConfig, multi_level: bool) -> DecodeBatch {
        let tables = (0..6u32)
            .map(|q| {
                let mut ids: Vec<BlockId> = (0..8).map(BlockId).collect();
                if multi_level && q < 3 {
                    ids.extend((50..54).map(BlockId));
                }
                ids.push(BlockId(100 + q));
                let blocks = ids.len();
                BlockTable::new(ids, blocks * 16, 16)
            })
            .collect();
        DecodeBatch::new(head, tables, 2)
    }

    #[test]
    fn relay_supports_only_single_level() {
        let head = HeadConfig::new(32, 8, 128);
        assert!(RelayAttention::new().supports(&batch(head, false)));
        assert!(!RelayAttention::new().supports(&batch(head, true)));
        assert!(RelayAttentionPP::new().supports(&batch(head, true)));
    }

    #[test]
    fn no_shared_root_means_unsupported() {
        let head = HeadConfig::new(32, 8, 128);
        let tables = (0..4u32)
            .map(|q| BlockTable::new(vec![BlockId(q * 10), BlockId(q * 10 + 1)], 32, 16))
            .collect();
        let b = DecodeBatch::new(head, tables, 2);
        assert!(!RelayAttention::new().supports(&b));
        assert!(!RelayAttentionPP::new().supports(&b));
    }

    #[test]
    fn relay_plan_is_numerically_exact() {
        let head = HeadConfig::new(8, 4, 16);
        let b = batch(head, false);
        let plan = RelayAttention::new().plan(&b, &GpuSpec::a100_sxm4_80gb());
        plan.validate(&b).unwrap();
        let acts = QueryActivations::synthetic(head, b.num_queries(), 7);
        let store = KvStore::synthetic_for(&b, 8);
        let got = execute_numeric(&b, &acts, &store, &plan).unwrap();
        assert!(got.max_abs_diff(&reference_output(&b, &acts, &store)) < 1e-4);
    }

    #[test]
    fn relay_pp_plan_is_numerically_exact_on_multi_level() {
        let head = HeadConfig::new(8, 4, 16);
        let b = batch(head, true);
        let plan = RelayAttentionPP::new().plan(&b, &GpuSpec::a100_sxm4_80gb());
        plan.validate(&b).unwrap();
        let acts = QueryActivations::synthetic(head, b.num_queries(), 7);
        let store = KvStore::synthetic_for(&b, 8);
        let got = execute_numeric(&b, &acts, &store, &plan).unwrap();
        assert!(got.max_abs_diff(&reference_output(&b, &acts, &store)) < 1e-4);
    }

    #[test]
    fn relay_pp_beats_relay_on_deep_prefixes() {
        // Large second-level prefixes: ++'s grouped L2 reuse cuts DRAM
        // traffic relative to plain relay (§8.3: 67.4% latency reduction).
        let head = HeadConfig::new(32, 8, 128);
        let tables = (0..16u32)
            .map(|q| {
                let mut ids: Vec<BlockId> = (0..64).map(BlockId).collect();
                ids.extend((1000 + (q / 8) * 1000..1000 + (q / 8) * 1000 + 640).map(BlockId));
                ids.push(BlockId(20_000 + q));
                let blocks = ids.len();
                BlockTable::new(ids, blocks * 16, 16)
            })
            .collect();
        let b = DecodeBatch::new(head, tables, 2);
        let spec = GpuSpec::a100_sxm4_80gb();
        let pp = RelayAttentionPP::new().plan(&b, &spec);
        let base = relay_plan(&b, &spec, L2Affinity::Scattered);
        let t_pp = simulate_plan(&b, &pp, &spec).unwrap();
        let t_base = simulate_plan(&b, &base, &spec).unwrap();
        assert!(t_pp.traffic.kv_dram_bytes < t_base.traffic.kv_dram_bytes);
        assert!(t_pp.forward_ns < t_base.forward_ns);
    }
}
