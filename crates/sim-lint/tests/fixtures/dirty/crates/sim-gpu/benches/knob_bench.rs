//! Fixture: bench targets get the configuration rules only — the raw
//! env read below is an R7 positive, while the narrowing cast must NOT
//! be flagged (R8 does not apply outside library code).

fn main() {
    let smoke = std::env::var("PAT_BENCH_SMOKE").is_ok();
    let big: u64 = if smoke { 1 } else { 1 << 40 };
    let _truncated = big as u32;
}
