//! Regenerates the committed autotuned tile cache.
//!
//! ```text
//! cargo run --release -p pat-core --bin tune             # rewrite tile_cache.json
//! cargo run --release -p pat-core --bin tune -- --check  # fail if it would change
//! ```
//!
//! Tuning is deterministic (fixed hardware-model order, fixed candidate
//! grid, thread-count-invariant parallel map, no entropy), so `--check` is
//! a byte-level drift ratchet: it fails exactly when a kernel-simulator or
//! tile-solver change shifted a tuned choice, forcing the new cache
//! through review like any other baseline change.

use pat_core::{generate_tile_cache, COMMITTED_TILE_CACHE_JSON};
use std::path::Path;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let regenerated = generate_tile_cache().to_canonical_json();
    if check {
        if regenerated == COMMITTED_TILE_CACHE_JSON {
            println!(
                "tile_cache.json is up to date ({} bytes)",
                regenerated.len()
            );
            return;
        }
        eprintln!(
            "tile_cache.json drifted from regeneration.\n\
             If a kernel-simulator or tile-solver change is intentional, rerun\n\
             `cargo run --release -p pat-core --bin tune` and commit the diff."
        );
        std::process::exit(1);
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tile_cache.json");
    match std::fs::write(&path, &regenerated) {
        Ok(()) => println!("wrote {} ({} bytes)", path.display(), regenerated.len()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
