//! Minimal in-workspace stand-in for `serde`.
//!
//! The build environment cannot fetch crates.io, so this crate supplies the
//! subset the workspace relies on: `Serialize`/`Deserialize` traits (via an
//! intermediate [`Value`] model rather than serde's visitor machinery) and
//! re-exported derive macros for plain named-field structs. `serde_json`
//! (also stubbed) renders and parses [`Value`].

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (ints widen losslessly enough for metrics).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {value:?}")))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {value:?}")))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let Value::Seq(items) = value else {
                    return Err(Error::custom(format!("expected tuple array, got {value:?}")));
                };
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        // Integral floats coerce into ints and back.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <(f64, f64)>::from_value(&(1.0f64, 2.0f64).to_value()).unwrap(),
            (1.0, 2.0)
        );
    }

    #[test]
    fn map_lookup_works() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
    }
}
