/root/repo/target/debug/deps/criterion-17282e87c3f43b0a.d: crates/compat-criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-17282e87c3f43b0a: crates/compat-criterion/src/lib.rs

crates/compat-criterion/src/lib.rs:
