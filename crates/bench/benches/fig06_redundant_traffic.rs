//! Fig. 6a: average KV cache loaded from global memory per decode step on
//! toolagent- and conversation-style batches — FlashAttention vs PAT vs the
//! theoretical minimum (every distinct block loaded once).

use attn_kernel::{theoretical_min_kv_bytes, DecodeBatch};
use attn_math::HeadConfig;
use baselines::FlashAttention;
use kv_cache::CacheManager;
use pat_bench::{banner, save_json, time_backend};
use pat_core::PatBackend;
use serde::Serialize;
use sim_gpu::GpuSpec;
use workloads::{generate_trace, TraceConfig, TraceKind};

#[derive(Serialize)]
struct Row {
    trace: String,
    fa_gb: f64,
    pat_gb: f64,
    optimal_gb: f64,
    fa_over_optimal: f64,
    fa_over_pat: f64,
}

fn main() {
    banner("Fig. 6a — KV bytes from global memory per decode step (GB)");
    let spec = GpuSpec::a100_sxm4_80gb();
    let head = HeadConfig::new(32, 8, 128);
    let mut rows = Vec::new();
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "trace", "FA", "PAT", "optimal", "FA/optimal", "FA/PAT"
    );
    for kind in [TraceKind::ToolAgent, TraceKind::Conversation] {
        let requests = generate_trace(TraceConfig {
            kind,
            rate_per_s: 10.0,
            duration_s: 60.0,
            seed: 6,
        });
        // Decode batches of 64 concurrent requests drawn from the trace.
        let mut cache = CacheManager::new(4_000_000, 16);
        let (mut fa_sum, mut pat_sum, mut opt_sum) = (0.0f64, 0.0f64, 0.0f64);
        let mut steps = 0;
        for window in requests.chunks(64).take(6) {
            if window.len() < 8 {
                continue;
            }
            let tables: Vec<_> = window
                .iter()
                .map(|r| {
                    cache
                        .insert_sequence(&r.prompt.to_tokens())
                        .expect("pool sized")
                })
                .collect();
            let batch = DecodeBatch::new(head, tables.clone(), 2);
            let fa = time_backend(&FlashAttention::new(), &batch, &spec)
                .expect("plan simulates")
                .expect("supported");
            let pat = time_backend(&PatBackend::new(), &batch, &spec)
                .expect("plan simulates")
                .expect("supported");
            fa_sum += fa.traffic.kv_dram_bytes;
            pat_sum += pat.traffic.kv_dram_bytes;
            opt_sum += theoretical_min_kv_bytes(&batch);
            steps += 1;
            for t in &tables {
                cache.free_sequence(t).expect("allocated");
            }
        }
        let n = steps as f64;
        let row = Row {
            trace: kind.name().to_string(),
            fa_gb: fa_sum / n / 1e9,
            pat_gb: pat_sum / n / 1e9,
            optimal_gb: opt_sum / n / 1e9,
            fa_over_optimal: fa_sum / opt_sum,
            fa_over_pat: fa_sum / pat_sum,
        };
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>10.3} {:>13.1}x {:>11.1}x",
            row.trace, row.fa_gb, row.pat_gb, row.optimal_gb, row.fa_over_optimal, row.fa_over_pat
        );
        rows.push(row);
    }
    // A FlashAttention-vs-backend check is meaningful per layer; the numbers
    // above are per decode step for one layer.
    println!("\npaper: FA loads 4.3-8.7x the theoretical minimum and 4.1-7.5x PAT.");
    save_json("fig06_redundant_traffic", &rows).expect("persist bench results");
}
