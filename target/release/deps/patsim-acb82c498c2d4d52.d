/root/repo/target/release/deps/patsim-acb82c498c2d4d52.d: src/bin/patsim.rs

/root/repo/target/release/deps/patsim-acb82c498c2d4d52: src/bin/patsim.rs

src/bin/patsim.rs:
