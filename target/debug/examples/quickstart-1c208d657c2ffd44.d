/root/repo/target/debug/examples/quickstart-1c208d657c2ffd44.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1c208d657c2ffd44: examples/quickstart.rs

examples/quickstart.rs:
