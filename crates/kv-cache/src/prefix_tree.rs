//! Tree-structure block table (Fig. 7b).
//!
//! The pack scheduler's first step (§5.1) converts a decode batch's
//! two-dimensional block table into a path-compressed prefix forest: each
//! internal node is a run of KV blocks shared by the same set of queries, with
//! attributes `l` (KV token length of the run) and `s` (number of sharing
//! queries); each leaf is one query's non-shared suffix, and the root-to-leaf
//! path reconstructs the query's full KV sequence.

use crate::{BlockId, BlockTable};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A node of the prefix forest: a run of blocks shared by `queries`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixNode {
    /// The run of physical blocks this node represents (may be empty for a
    /// query that ends exactly at its parent's boundary).
    pub blocks: Vec<BlockId>,
    /// KV tokens covered by the run (`l` in the paper's profit model).
    pub token_len: usize,
    /// Queries (batch indices) sharing this run (`s = queries.len()`).
    pub queries: Vec<usize>,
    /// Child nodes partitioning the continuation.
    pub children: Vec<PrefixNode>,
}

impl PrefixNode {
    /// Whether this node is a leaf (exactly one query, no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of sharing queries (`s`).
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Nodes in this subtree (including self).
    pub fn num_nodes(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PrefixNode::num_nodes)
            .sum::<usize>()
    }
}

/// The prefix forest of one decode batch.
///
/// # Examples
///
/// ```
/// use kv_cache::{BlockId, BlockTable, PrefixForest};
///
/// let b = |ids: &[u32], tokens: usize| {
///     BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
/// };
/// // Two queries share blocks [0, 1]; each has a private suffix.
/// let forest = PrefixForest::from_block_tables(&[
///     b(&[0, 1, 2], 48),
///     b(&[0, 1, 3, 4], 64),
/// ]);
/// assert_eq!(forest.roots().len(), 1);
/// let root = &forest.roots()[0];
/// assert_eq!(root.token_len, 32);
/// assert_eq!(root.num_queries(), 2);
/// assert_eq!(root.children.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixForest {
    roots: Vec<PrefixNode>,
    num_queries: usize,
}

impl PrefixForest {
    /// Builds the forest from a batch's block tables. Row `q` of `tables`
    /// belongs to query `q`.
    pub fn from_block_tables(tables: &[BlockTable]) -> Self {
        let queries: Vec<usize> = (0..tables.len()).collect();
        let roots = Self::build(tables, &queries, 0);
        PrefixForest {
            roots,
            num_queries: tables.len(),
        }
    }

    /// The first-level shared prefixes (roots).
    pub fn roots(&self) -> &[PrefixNode] {
        &self.roots
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Total node count (|V| of Algorithm 1's complexity bound).
    pub fn num_nodes(&self) -> usize {
        self.roots.iter().map(PrefixNode::num_nodes).sum()
    }

    /// Internal (shared, `s > 1`) node count — the "distinct shared prefixes"
    /// statistic of §3.1.
    pub fn num_shared_nodes(&self) -> usize {
        fn count(node: &PrefixNode) -> usize {
            let own = usize::from(node.num_queries() > 1 && node.token_len > 0);
            own + node.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// KV tokens covered by shared prefixes, counted once per sharing query
    /// (the "intra-batch shared prefix coverage" numerator of §3.1).
    pub fn shared_token_coverage(&self) -> usize {
        fn walk(node: &PrefixNode) -> usize {
            let own = if node.num_queries() > 1 {
                node.token_len * node.num_queries()
            } else {
                0
            };
            own + node.children.iter().map(walk).sum::<usize>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// A stable fingerprint of the forest structure, used by the lazy-update
    /// mechanism (§5.1) to detect block-table changes across decode steps.
    pub fn fingerprint(&self) -> u64 {
        fn feed(node: &PrefixNode, h: &mut DefaultHasher) {
            node.blocks.hash(h);
            node.token_len.hash(h);
            node.queries.hash(h);
            0xB10C_u16.hash(h);
            for child in &node.children {
                feed(child, h);
            }
        }
        let mut h = DefaultHasher::new();
        self.num_queries.hash(&mut h);
        for root in &self.roots {
            feed(root, &mut h);
        }
        h.finish()
    }

    fn build(tables: &[BlockTable], queries: &[usize], depth: usize) -> Vec<PrefixNode> {
        // Partition queries by their block at `depth`; queries exhausted at
        // this depth become zero-length leaves at the caller's level.
        let mut by_block: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
        let mut nodes = Vec::new();
        for &q in queries {
            match tables[q].blocks().get(depth) {
                Some(&b) => by_block.entry(b).or_default().push(q),
                None => nodes.push(PrefixNode {
                    blocks: Vec::new(),
                    token_len: 0,
                    queries: vec![q],
                    children: Vec::new(),
                }),
            }
        }
        for (_, group) in by_block {
            if group.len() == 1 {
                let q = group[0];
                let run: Vec<BlockId> = tables[q].blocks()[depth..].to_vec();
                let token_len = Self::run_tokens(tables, &[q], depth, run.len());
                nodes.push(PrefixNode {
                    blocks: run,
                    token_len,
                    queries: vec![q],
                    children: Vec::new(),
                });
                continue;
            }
            // Longest common run among the group starting at `depth`.
            let mut lcp = 1;
            'extend: loop {
                let probe = tables[group[0]].blocks().get(depth + lcp);
                let Some(&candidate) = probe else { break };
                for &q in &group[1..] {
                    if tables[q].blocks().get(depth + lcp) != Some(&candidate) {
                        break 'extend;
                    }
                }
                lcp += 1;
            }
            let run: Vec<BlockId> = tables[group[0]].blocks()[depth..depth + lcp].to_vec();
            let token_len = Self::run_tokens(tables, &group, depth, lcp);
            let children = Self::build(tables, &group, depth + lcp);
            nodes.push(PrefixNode {
                blocks: run,
                token_len,
                queries: group,
                children,
            });
        }
        nodes
    }

    /// Tokens covered by blocks `[depth, depth+len)`, taking the minimum over
    /// sharers so a partially filled final block is not over-counted.
    fn run_tokens(tables: &[BlockTable], queries: &[usize], depth: usize, len: usize) -> usize {
        (depth..depth + len)
            .map(|i| {
                queries
                    .iter()
                    .map(|&q| tables[q].tokens_in_block(i))
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    }

    // ----- incremental maintenance (delta-planning, §5.1 extended) -----
    //
    // The operations below patch an already-built forest so that it stays
    // *deeply equal* to `from_block_tables(tables)` for the updated tables —
    // the invariant every caller relies on (and that the delta-planning
    // proptests assert). They preserve the builder's canonical shape:
    // zero-length leaves first in query order, then runs in ascending
    // first-block order; maximal runs; singleton subtrees collapsed into one
    // leaf. Operations that cannot restore that shape locally return `false`
    // and the caller rebuilds from scratch.

    /// Recomputes every node's `token_len` from the current tables. Per-node
    /// closed form: with `m` the minimum member KV length, a run of `len`
    /// blocks at block-depth `d` covers `clamp(m − d·bs, 0, len·bs)` tokens —
    /// identical, in integer arithmetic, to the builder's per-position
    /// min-over-sharers sum.
    pub fn refresh_token_lens(&mut self, tables: &[BlockTable]) {
        fn walk(node: &mut PrefixNode, depth: usize, tables: &[BlockTable], bs: usize) {
            let m = node
                .queries
                .iter()
                .map(|&q| tables[q].num_tokens())
                .min()
                .unwrap_or(0);
            node.token_len = m.saturating_sub(depth * bs).min(node.blocks.len() * bs);
            let child_depth = depth + node.blocks.len();
            for child in &mut node.children {
                walk(child, child_depth, tables, bs);
            }
        }
        let Some(bs) = tables.first().map(BlockTable::block_size) else {
            return;
        };
        for root in &mut self.roots {
            walk(root, 0, tables, bs);
        }
    }

    /// Patches the forest after query `q`'s table appended block(s) to its
    /// private tail (`tables` is the updated batch). Returns `false` when the
    /// change is not a pure tail extension of `q`'s own leaf — e.g. the new
    /// block coincides with a sibling run's first block, which would extend a
    /// shared run — in which case the caller must rebuild.
    ///
    /// Token lengths are *not* refreshed; run
    /// [`refresh_token_lens`](Self::refresh_token_lens) after a batch of
    /// patches.
    pub fn extend_query(&mut self, q: usize, tables: &[BlockTable]) -> bool {
        Self::extend_in(&mut self.roots, q, 0, tables)
    }

    fn extend_in(
        nodes: &mut Vec<PrefixNode>,
        q: usize,
        depth: usize,
        tables: &[BlockTable],
    ) -> bool {
        let Some(pos) = nodes
            .iter()
            .position(|n| n.queries.binary_search(&q).is_ok())
        else {
            return false;
        };
        if nodes[pos].queries.len() > 1 {
            let child_depth = depth + nodes[pos].blocks.len();
            return Self::extend_in(&mut nodes[pos].children, q, child_depth, tables);
        }
        let run: Vec<BlockId> = tables[q].blocks()[depth..].to_vec();
        if !nodes[pos].blocks.is_empty() {
            // `q`'s own leaf run: replace it with the table's current suffix.
            // A pure append keeps the first block, so siblings stay disjoint.
            if run.len() <= nodes[pos].blocks.len()
                || run[..nodes[pos].blocks.len()] != nodes[pos].blocks[..]
            {
                return false;
            }
            nodes[pos].blocks = run;
            return true;
        }
        // A zero-length leaf grew a real suffix: it leaves the query-ordered
        // zero-leaf prefix and joins the block-ordered siblings. If its first
        // block matches an existing sibling run, a scratch build would merge
        // them — hand that (physically impossible for fresh allocations) case
        // back to the rebuilder.
        let Some(&first) = run.first() else {
            return false;
        };
        if nodes.iter().any(|n| n.blocks.first() == Some(&first)) {
            return false;
        }
        let mut leaf = nodes.remove(pos);
        leaf.blocks = run;
        let at = nodes
            .iter()
            .position(|n| n.blocks.first().is_some_and(|&b| b > first))
            .unwrap_or(nodes.len());
        nodes.insert(at, leaf);
        true
    }

    /// Removes query `q` (an index into the *current* batch) and renumbers
    /// the remaining queries down by one, matching a rebuilt forest over the
    /// batch with row `q` deleted. Nodes left covering a single continuation
    /// are re-collapsed into maximal runs.
    ///
    /// Ancestor token lengths may grow once the shortest sharer leaves; run
    /// [`refresh_token_lens`](Self::refresh_token_lens) afterwards.
    pub fn remove_query(&mut self, q: usize) {
        Self::remove_in(&mut self.roots, q);
        Self::shift_down(&mut self.roots, q);
        self.num_queries -= 1;
    }

    fn remove_in(nodes: &mut Vec<PrefixNode>, q: usize) {
        let Some(pos) = nodes
            .iter()
            .position(|n| n.queries.binary_search(&q).is_ok())
        else {
            return;
        };
        if nodes[pos].queries.len() == 1 {
            nodes.remove(pos);
            return;
        }
        let node = &mut nodes[pos];
        if let Ok(i) = node.queries.binary_search(&q) {
            node.queries.remove(i);
        }
        Self::remove_in(&mut node.children, q);
        // Canonical shape: a node whose single child covers the same query
        // set is one maximal run in a scratch build — merge them. Repeats
        // until a fan-out (or leaf) is reached.
        while node.children.len() == 1 && node.children[0].queries == node.queries {
            let child = node.children.remove(0);
            node.blocks.extend(child.blocks);
            node.token_len += child.token_len;
            node.children = child.children;
        }
    }

    fn shift_down(nodes: &mut [PrefixNode], q: usize) {
        for node in nodes {
            for x in &mut node.queries {
                if *x > q {
                    *x -= 1;
                }
            }
            Self::shift_down(&mut node.children, q);
        }
    }

    /// Inserts a newly arrived query — row `self.num_queries()` of `tables`,
    /// i.e. arrivals append at the batch tail — splitting runs where it
    /// diverges mid-run.
    ///
    /// Token lengths of split/extended nodes are left stale; run
    /// [`refresh_token_lens`](Self::refresh_token_lens) afterwards.
    pub fn insert_query(&mut self, tables: &[BlockTable]) {
        let q = self.num_queries;
        Self::insert_in(&mut self.roots, q, 0, tables);
        self.num_queries += 1;
    }

    fn insert_in(nodes: &mut Vec<PrefixNode>, q: usize, depth: usize, tables: &[BlockTable]) {
        let leaf = |blocks: Vec<BlockId>| PrefixNode {
            blocks,
            token_len: 0,
            queries: vec![q],
            children: Vec::new(),
        };
        let Some(&b) = tables[q].blocks().get(depth) else {
            // Exhausted at this depth: zero-length leaves sit before the
            // block-ordered runs, in query order — and `q` is the largest
            // index, so it goes last among them.
            let at = nodes
                .iter()
                .position(|n| !n.blocks.is_empty())
                .unwrap_or(nodes.len());
            nodes.insert(at, leaf(Vec::new()));
            return;
        };
        let Some(pos) = nodes.iter().position(|n| n.blocks.first() == Some(&b)) else {
            // No run shares the first block: a fresh singleton leaf takes the
            // whole remaining suffix, in ascending first-block order.
            let at = nodes
                .iter()
                .position(|n| n.blocks.first().is_some_and(|&x| x > b))
                .unwrap_or(nodes.len());
            nodes.insert(at, leaf(tables[q].blocks()[depth..].to_vec()));
            return;
        };
        let node = &mut nodes[pos];
        // Common run length between `q`'s suffix and this node's run (≥ 1).
        let mut k = 1;
        while k < node.blocks.len() && tables[q].blocks().get(depth + k) == Some(&node.blocks[k]) {
            k += 1;
        }
        if k < node.blocks.len() {
            // Diverges mid-run: split the node at `k`. The tail keeps the old
            // members and children; the head gains `q` and fans out to the
            // tail plus `q`'s continuation.
            let tail = PrefixNode {
                blocks: node.blocks.split_off(k),
                token_len: 0,
                queries: node.queries.clone(),
                children: std::mem::take(&mut node.children),
            };
            node.children.push(tail);
        } else if node.children.is_empty() {
            // Full match on a singleton leaf: its owner is exhausted exactly
            // at the run's end and becomes a zero-length child.
            let owner = node.queries[0];
            node.children.push(PrefixNode {
                blocks: Vec::new(),
                token_len: 0,
                queries: vec![owner],
                children: Vec::new(),
            });
        }
        node.queries.push(q); // largest index: list stays sorted
        Self::insert_in(&mut node.children, q, depth + k, tables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(ids: &[u32], tokens: usize) -> BlockTable {
        BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
    }

    #[test]
    fn paper_figure7_structure() {
        // Fig. 7a: 4 queries; q0/q1/q2/q3 share blocks [0]; q0,q1 share [0,1];
        // each query has a private suffix.
        let tables = vec![
            table(&[0, 1, 2], 48),
            table(&[0, 1, 3], 48),
            table(&[0, 4, 5], 48),
            table(&[0, 4, 6, 7], 64),
        ];
        let forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots().len(), 1);
        let root = &forest.roots()[0];
        assert_eq!(root.blocks, vec![BlockId(0)]);
        assert_eq!(root.num_queries(), 4);
        assert_eq!(root.children.len(), 2);
        let left = &root.children[0];
        assert_eq!(left.blocks, vec![BlockId(1)]);
        assert_eq!(left.num_queries(), 2);
        assert_eq!(left.children.len(), 2);
        assert!(left.children.iter().all(PrefixNode::is_leaf));
        // Two shared internal nodes: [0] and [1] ... plus [4].
        assert_eq!(forest.num_shared_nodes(), 3);
    }

    #[test]
    fn disjoint_queries_form_separate_roots() {
        let tables = vec![table(&[0, 1], 32), table(&[2, 3], 32)];
        let forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots().len(), 2);
        assert!(forest.roots().iter().all(PrefixNode::is_leaf));
        assert_eq!(forest.num_shared_nodes(), 0);
        assert_eq!(forest.shared_token_coverage(), 0);
    }

    #[test]
    fn identical_tables_share_everything() {
        let tables = vec![table(&[0, 1, 2], 40), table(&[0, 1, 2], 40)];
        let forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots().len(), 1);
        let root = &forest.roots()[0];
        assert_eq!(root.blocks.len(), 3);
        // 16 + 16 + 8 tokens, shared by both queries.
        assert_eq!(root.token_len, 40);
        assert_eq!(root.children.len(), 2);
        assert!(root
            .children
            .iter()
            .all(|c| c.token_len == 0 && c.is_leaf()));
        assert_eq!(forest.shared_token_coverage(), 80);
    }

    #[test]
    fn leaf_token_length_counts_partial_block() {
        let tables = vec![table(&[0, 1], 20), table(&[0, 2], 28)];
        let forest = PrefixForest::from_block_tables(&tables);
        let root = &forest.roots()[0];
        assert_eq!(root.token_len, 16);
        let mut leaf_lens: Vec<usize> = root.children.iter().map(|c| c.token_len).collect();
        leaf_lens.sort_unstable();
        assert_eq!(leaf_lens, vec![4, 12]);
    }

    #[test]
    fn fingerprint_changes_with_structure() {
        let a = PrefixForest::from_block_tables(&[table(&[0, 1], 32), table(&[0, 2], 32)]);
        let b = PrefixForest::from_block_tables(&[table(&[0, 1], 32), table(&[0, 1], 32)]);
        let a2 = PrefixForest::from_block_tables(&[table(&[0, 1], 32), table(&[0, 2], 32)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn node_count_is_linear_in_queries() {
        let tables: Vec<BlockTable> = (0..64).map(|q| table(&[0, 1, 100 + q], 48)).collect();
        let forest = PrefixForest::from_block_tables(&tables);
        // One shared root + 64 leaves.
        assert_eq!(forest.num_nodes(), 65);
        assert_eq!(forest.num_queries(), 64);
    }

    #[test]
    fn empty_batch_is_empty_forest() {
        let forest = PrefixForest::from_block_tables(&[]);
        assert!(forest.roots().is_empty());
        assert_eq!(forest.num_nodes(), 0);
    }

    // ----- incremental maintenance: patched forest == scratch rebuild -----

    /// Patch-vs-rebuild oracle: after any delta operation (plus a token
    /// refresh) the maintained forest must be *deeply equal* to a scratch
    /// build over the updated tables.
    fn assert_matches_scratch(forest: &PrefixForest, tables: &[BlockTable]) {
        assert_eq!(
            *forest,
            PrefixForest::from_block_tables(tables),
            "patched forest diverged from scratch build"
        );
    }

    #[test]
    fn refresh_token_lens_tracks_token_growth() {
        let mut tables = vec![table(&[0, 1, 2], 40), table(&[0, 1, 3], 44)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        for grow in 1..=4 {
            tables = vec![table(&[0, 1, 2], 40 + grow), table(&[0, 1, 3], 44 + grow)];
            forest.refresh_token_lens(&tables);
            assert_matches_scratch(&forest, &tables);
        }
    }

    #[test]
    fn extend_replaces_a_singleton_leaf_run() {
        let mut tables = vec![table(&[0, 1, 2], 48), table(&[0, 1, 3], 48)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        tables[0] = table(&[0, 1, 2, 9], 49);
        assert!(forest.extend_query(0, &tables));
        forest.refresh_token_lens(&tables);
        assert_matches_scratch(&forest, &tables);
    }

    #[test]
    fn extend_promotes_a_zero_length_leaf() {
        // Query 1 is a strict prefix of query 0: its leaf is zero-length.
        // Growing it into a fresh block moves it among the block-ordered
        // siblings of the shared node.
        let mut tables = vec![table(&[0, 1, 2], 48), table(&[0, 1], 32)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        tables[1] = table(&[0, 1, 7], 33);
        assert!(forest.extend_query(1, &tables));
        forest.refresh_token_lens(&tables);
        assert_matches_scratch(&forest, &tables);
    }

    #[test]
    fn extend_onto_a_sibling_run_bails_out() {
        // Query 1's new block equals query 0's continuation: a scratch build
        // would extend the shared run, which the local patch cannot do.
        let mut tables = vec![table(&[0, 1, 2], 48), table(&[0, 1], 32)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        tables[1] = table(&[0, 1, 2], 33);
        assert!(!forest.extend_query(1, &tables));
    }

    #[test]
    fn remove_collapses_the_orphaned_run() {
        let tables = vec![
            table(&[0, 1, 2], 48),
            table(&[0, 1, 3], 48),
            table(&[0, 4], 32),
        ];
        let mut forest = PrefixForest::from_block_tables(&tables);
        // Removing query 2 leaves [0] + [1] as one maximal shared run.
        let remaining = vec![tables[0].clone(), tables[1].clone()];
        forest.remove_query(2);
        forest.refresh_token_lens(&remaining);
        assert_matches_scratch(&forest, &remaining);
        // Removing query 1 (old index; now renumbered) collapses to a single
        // leaf holding query 0's entire table.
        let solo = vec![remaining[0].clone()];
        forest.remove_query(1);
        forest.refresh_token_lens(&solo);
        assert_matches_scratch(&forest, &solo);
        assert_eq!(forest.roots().len(), 1);
        assert!(forest.roots()[0].is_leaf());
    }

    #[test]
    fn remove_shortest_sharer_regrows_run_tokens() {
        // Query 1 limits the shared run's token count; dropping it must
        // restore query 0's full coverage.
        let tables = vec![table(&[0, 1], 30), table(&[0, 1], 20)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        assert_eq!(forest.roots()[0].token_len, 20);
        let solo = vec![tables[0].clone()];
        forest.remove_query(1);
        forest.refresh_token_lens(&solo);
        assert_matches_scratch(&forest, &solo);
        assert_eq!(forest.roots()[0].token_len, 30);
    }

    #[test]
    fn insert_splits_runs_and_orders_siblings() {
        let mut tables = vec![table(&[0, 1, 2, 3], 64), table(&[10, 11], 32)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        // Diverges inside query 0's run: the [0,1,2,3] leaf splits at 2.
        tables.push(table(&[0, 1, 9], 44));
        forest.insert_query(&tables);
        forest.refresh_token_lens(&tables);
        assert_matches_scratch(&forest, &tables);
        // Exhausts exactly at a run boundary: zero-length leaf, query order.
        tables.push(table(&[0, 1], 32));
        forest.insert_query(&tables);
        forest.refresh_token_lens(&tables);
        assert_matches_scratch(&forest, &tables);
        // Entirely disjoint: a new root in ascending first-block order.
        tables.push(table(&[5, 6], 18));
        forest.insert_query(&tables);
        forest.refresh_token_lens(&tables);
        assert_matches_scratch(&forest, &tables);
    }

    #[test]
    fn random_delta_sequences_match_scratch_builds() {
        // Deterministic xorshift so the sequence is stable across runs.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move |n: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % n as u64) as usize
        };
        let bs = 16;
        let mut next_block = 1000u32;
        let mut tables: Vec<BlockTable> =
            vec![table(&[0, 1, 2], 41), table(&[0, 1, 3], 37), table(&[7], 9)];
        let mut forest = PrefixForest::from_block_tables(&tables);
        for _ in 0..300 {
            match rng(10) {
                // Arrival: shares a random existing prefix (or none).
                0 | 1 => {
                    let mut ids: Vec<u32> = if tables.is_empty() || rng(3) == 0 {
                        Vec::new()
                    } else {
                        let donor = tables[rng(tables.len())].clone();
                        let take = rng(donor.blocks().len() + 1);
                        donor.blocks()[..take].iter().map(|b| b.0).collect()
                    };
                    for _ in 0..rng(3) {
                        next_block += 1;
                        ids.push(next_block);
                    }
                    if ids.is_empty() {
                        next_block += 1;
                        ids.push(next_block);
                    }
                    let tokens = (ids.len() - 1) * bs + 1 + rng(bs);
                    tables.push(table(&ids, tokens));
                    forest.insert_query(&tables);
                }
                // Completion.
                2 | 3 if tables.len() > 1 => {
                    let q = rng(tables.len());
                    tables.remove(q);
                    forest.remove_query(q);
                }
                // Token growth, appending a fresh block past a boundary.
                _ => {
                    let q = rng(tables.len());
                    let t = &tables[q];
                    if t.num_tokens() < t.blocks().len() * bs {
                        tables[q] = table(
                            &t.blocks().iter().map(|b| b.0).collect::<Vec<_>>(),
                            t.num_tokens() + 1,
                        );
                    } else {
                        next_block += 1;
                        let mut ids: Vec<u32> = t.blocks().iter().map(|b| b.0).collect();
                        ids.push(next_block);
                        let tokens = t.num_tokens() + 1;
                        tables[q] = table(&ids, tokens);
                        if !forest.extend_query(q, &tables) {
                            forest = PrefixForest::from_block_tables(&tables);
                        }
                    }
                }
            }
            forest.refresh_token_lens(&tables);
            assert_matches_scratch(&forest, &tables);
        }
    }
}
