//! Tile configurations and their hardware resource footprints (§5.2).
//!
//! A tile configuration `(m, n)` fixes a kernel's Q-tile (query rows) and
//! KV-tile (keys per pipeline stage). It determines:
//!
//! * shared-memory usage: `m·h·b` (Q tile) + `4·n·h·b` (double-buffered K and
//!   V tiles) + `m·h·b'` (fp32 intermediate accumulators), following the
//!   paper's constraint ①;
//! * register usage: an affine model standing in for the paper's offline
//!   compilation + static analysis (`R_thr(m, n)`);
//! * the per-CTA sustainable load rate (`2·n·h·b / L`, constraint ②);
//! * tensor-core work per tile (`4·m·n·h` FLOPs for QKᵀ and PV).

use sim_gpu::{CtaResources, GpuSpec};
use std::fmt;

/// Size in bytes of the fp32 intermediates (`b'` in the paper).
pub const INTERMEDIATE_BYTES: usize = 4;

/// A kernel tile configuration `(m, n)`.
///
/// # Examples
///
/// ```
/// use attn_kernel::TileConfig;
///
/// let tile = TileConfig::new(32, 64);
/// assert_eq!(tile.m, 32);
/// let res = tile.resources(128, 2);
/// assert!(res.smem_bytes > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileConfig {
    /// Q-tile: query rows processed by one CTA (padded if fewer are present).
    pub m: usize,
    /// KV-tile: keys/values loaded per pipeline stage.
    pub n: usize,
}

impl TileConfig {
    /// Creates a tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "tile dimensions must be positive");
        TileConfig { m, n }
    }

    /// Threads per CTA for this tile: one warp row per 8 query rows, with the
    /// CUTLASS-style minimum of 128 threads and maximum of 256.
    pub fn threads(&self) -> usize {
        if self.m <= 32 {
            128
        } else {
            256
        }
    }

    /// Shared-memory bytes used by one CTA (constraint ① formula): the Q
    /// tile, three KV buffers (resident K and V plus one `cp_async` prefetch
    /// buffer that alternates between them), and fp32 intermediates.
    pub fn smem_bytes(&self, head_dim: usize, dtype_bytes: usize) -> usize {
        let q_tile = self.m * head_dim * dtype_bytes;
        let kv_tiles = 3 * self.n * head_dim * dtype_bytes;
        let intermediates = self.m * head_dim * INTERMEDIATE_BYTES;
        q_tile + kv_tiles + intermediates
    }

    /// Registers per thread. The paper obtains `R_thr(m, n)` by offline
    /// compilation and static analysis (§5.2); we stand in a calibration
    /// table over the Q-tile bucket (dominated by fp32 output accumulators
    /// per thread) plus a small n-dependent addressing term. The table is
    /// tuned so the constraint solver reproduces Fig. 8b's feasible set.
    pub fn regs_per_thread(&self, head_dim: usize) -> usize {
        let bucket = self.m.next_power_of_two().max(16);
        let base = match bucket {
            16 => 72,
            32 => 100,
            64 => 168,
            128 => 258,
            _ => 300,
        };
        // The table is calibrated for head dim 128; scale the accumulator
        // part for other dims.
        let accum_scale = head_dim as f64 / 128.0;
        let overhead = 40.0;
        ((base as f64 - overhead) * accum_scale + overhead) as usize + self.n / 8
    }

    /// Full resource footprint of one CTA running this tile.
    pub fn resources(&self, head_dim: usize, dtype_bytes: usize) -> CtaResources {
        CtaResources {
            smem_bytes: self.smem_bytes(head_dim, dtype_bytes),
            regs_per_thread: self.regs_per_thread(head_dim),
            threads: self.threads(),
        }
    }

    /// Tensor-core FLOPs per KV tile (QKᵀ and PV over padded `m` rows).
    pub fn flops_per_tile(&self, head_dim: usize) -> f64 {
        4.0 * self.m as f64 * self.n as f64 * head_dim as f64
    }

    /// Maximum DRAM load rate one CTA can sustain with this tile, bytes/ns:
    /// its double-buffered in-flight KV data divided by the memory latency
    /// (the quantity behind constraint ②).
    pub fn rate_cap(&self, spec: &GpuSpec, head_dim: usize, dtype_bytes: usize) -> f64 {
        let inflight = (2 * self.n * head_dim * dtype_bytes) as f64;
        (inflight / spec.mem_latency_ns).min(spec.global_bandwidth)
    }

    /// Number of KV tiles needed to cover `kv_len` keys.
    pub fn tiles_for(&self, kv_len: usize) -> usize {
        kv_len.div_ceil(self.n)
    }
}

impl fmt::Display for TileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.m, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smem_grows_with_both_dimensions() {
        let base = TileConfig::new(16, 16).smem_bytes(128, 2);
        assert!(TileConfig::new(32, 16).smem_bytes(128, 2) > base);
        assert!(TileConfig::new(16, 32).smem_bytes(128, 2) > base);
    }

    #[test]
    fn smem_formula_matches_paper_terms() {
        let t = TileConfig::new(64, 32);
        // 64*128*2 (Q) + 3*32*128*2 (KV buffers) + 64*128*4 (fp32).
        assert_eq!(t.smem_bytes(128, 2), 16384 + 24576 + 32768);
    }

    #[test]
    fn rate_cap_scales_with_n_and_caps_at_bus() {
        let spec = GpuSpec::a100_sxm4_80gb();
        let small = TileConfig::new(16, 16).rate_cap(&spec, 128, 2);
        let large = TileConfig::new(16, 128).rate_cap(&spec, 128, 2);
        assert!(large > small);
        let huge = TileConfig::new(16, 1 << 20).rate_cap(&spec, 128, 2);
        assert_eq!(huge, spec.global_bandwidth);
    }

    #[test]
    fn tiles_round_up() {
        let t = TileConfig::new(16, 128);
        assert_eq!(t.tiles_for(1), 1);
        assert_eq!(t.tiles_for(128), 1);
        assert_eq!(t.tiles_for(129), 2);
        assert_eq!(t.tiles_for(0), 0);
    }

    #[test]
    fn thread_count_steps_at_m_64() {
        assert_eq!(TileConfig::new(16, 64).threads(), 128);
        assert_eq!(TileConfig::new(32, 64).threads(), 128);
        assert_eq!(TileConfig::new(64, 64).threads(), 256);
        assert_eq!(TileConfig::new(128, 64).threads(), 256);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let _ = TileConfig::new(0, 16);
    }
}
