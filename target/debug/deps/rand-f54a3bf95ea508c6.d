/root/repo/target/debug/deps/rand-f54a3bf95ea508c6.d: crates/compat-rand/src/lib.rs

/root/repo/target/debug/deps/librand-f54a3bf95ea508c6.rlib: crates/compat-rand/src/lib.rs

/root/repo/target/debug/deps/librand-f54a3bf95ea508c6.rmeta: crates/compat-rand/src/lib.rs

crates/compat-rand/src/lib.rs:
