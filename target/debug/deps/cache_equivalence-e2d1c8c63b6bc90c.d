/root/repo/target/debug/deps/cache_equivalence-e2d1c8c63b6bc90c.d: tests/cache_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcache_equivalence-e2d1c8c63b6bc90c.rmeta: tests/cache_equivalence.rs Cargo.toml

tests/cache_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
