//! Shared plumbing for the baseline planners.

use attn_kernel::{CtaPlan, DecodeBatch, KvSlice, TileConfig};
use sim_gpu::{GpuSpec, Occupancy};

/// The per-architecture tile fallback every real kernel ships: the
/// baseline's documented `preferred` tile when the device can launch it,
/// otherwise the closest launchable degradation (KV tile halved first —
/// preserving query-row capacity — then the Q tile). On the paper's A100
/// testbed every baseline's preferred tile launches, so the default path
/// is unchanged; on smaller devices (V100's 96 KB shared memory) this is
/// the fair-fight equivalent of FlashAttention's Volta fallbacks, keeping
/// comparisons against PAT about scheduling rather than launch failures.
pub fn supported_tile(
    spec: &GpuSpec,
    head_dim: usize,
    dtype_bytes: usize,
    preferred: TileConfig,
) -> TileConfig {
    let occ = Occupancy::new(spec.clone());
    let fits = |t: TileConfig| occ.ctas_per_sm(t.resources(head_dim, dtype_bytes)).is_ok();
    let mut m = preferred.m;
    while m >= 16 {
        let mut n = preferred.n;
        while n >= 16 {
            let tile = TileConfig::new(m, n);
            if fits(tile) {
                return tile;
            }
            n /= 2;
        }
        m /= 2;
    }
    // Nothing launches; return the preferred tile and let the simulator
    // report the resource violation.
    preferred
}

/// One CTA per query over its full KV — the query-centric paradigm (§3.2).
pub fn one_query_per_cta(batch: &DecodeBatch, tile: TileConfig, stream: usize) -> Vec<CtaPlan> {
    (0..batch.num_queries())
        .map(|q| CtaPlan {
            queries: vec![q],
            kv: KvSlice::new(
                batch.tables()[q].blocks().to_vec(),
                batch.kv_len(q),
                batch.block_size(),
            ),
            tile,
            stream,
            phase: 0,
        })
        .collect()
}

/// Splits every query's KV into chunks of at most `chunk_tokens` (block
/// aligned), one CTA per chunk — FlashInfer-style load balancing.
pub fn kv_chunked_ctas(batch: &DecodeBatch, chunk_tokens: usize, tile: TileConfig) -> Vec<CtaPlan> {
    let bs = batch.block_size();
    let blocks_per_chunk = (chunk_tokens / bs).max(1);
    let mut ctas = Vec::new();
    for q in 0..batch.num_queries() {
        let table = &batch.tables()[q];
        let total = table.num_tokens();
        let mut consumed = 0usize;
        for chunk in table.blocks().chunks(blocks_per_chunk) {
            let tokens = (chunk.len() * bs).min(total - consumed);
            ctas.push(CtaPlan {
                queries: vec![q],
                kv: KvSlice::new(chunk.to_vec(), tokens, bs),
                tile,
                stream: 0,
                phase: 0,
            });
            consumed += tokens;
        }
    }
    ctas
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_kernel::KernelPlan;
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    fn batch() -> DecodeBatch {
        let tables = (0..4u32)
            .map(|q| {
                let ids: Vec<BlockId> = (0..8).map(BlockId).chain([BlockId(100 + q)]).collect();
                BlockTable::new(ids, 9 * 16 - 3, 16)
            })
            .collect();
        DecodeBatch::new(HeadConfig::new(32, 8, 128), tables, 2)
    }

    #[test]
    fn one_query_per_cta_covers_batch() {
        let b = batch();
        let plan = KernelPlan::new(one_query_per_cta(&b, TileConfig::new(64, 128), 0));
        plan.validate(&b).unwrap();
        assert_eq!(plan.num_ctas(), 4);
    }

    #[test]
    fn kv_chunking_respects_block_alignment_and_coverage() {
        let b = batch();
        let plan = KernelPlan::new(kv_chunked_ctas(&b, 48, TileConfig::new(16, 128)));
        plan.validate(&b).unwrap();
        assert_eq!(plan.num_ctas(), 4 * 3); // 9 blocks in chunks of 3
    }

    #[test]
    fn supported_tile_keeps_paper_tiles_on_a100_and_degrades_elsewhere() {
        let fa = TileConfig::new(64, 128);
        // The paper's testbed launches every baseline's documented tile.
        let a100 = GpuSpec::a100_sxm4_80gb();
        assert_eq!(supported_tile(&a100, 128, 2, fa), fa);
        assert_eq!(
            supported_tile(&a100, 128, 2, TileConfig::new(16, 128)),
            TileConfig::new(16, 128)
        );
        // Volta's 96 KB shared memory cannot host the Ampere tile; the KV
        // tile halves first.
        let v100 = sim_gpu::GpuModel::V100.spec();
        assert_eq!(supported_tile(&v100, 128, 2, fa), TileConfig::new(64, 64));
    }

    #[test]
    fn oversized_chunk_degenerates_to_one_cta() {
        let b = batch();
        let plan = KernelPlan::new(kv_chunked_ctas(&b, 1 << 20, TileConfig::new(16, 128)));
        plan.validate(&b).unwrap();
        assert_eq!(plan.num_ctas(), 4);
    }
}
