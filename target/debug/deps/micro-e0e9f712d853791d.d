/root/repo/target/debug/deps/micro-e0e9f712d853791d.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-e0e9f712d853791d.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
