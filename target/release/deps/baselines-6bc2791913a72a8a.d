/root/repo/target/release/deps/baselines-6bc2791913a72a8a.d: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

/root/repo/target/release/deps/libbaselines-6bc2791913a72a8a.rlib: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

/root/repo/target/release/deps/libbaselines-6bc2791913a72a8a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cascade.rs crates/baselines/src/common.rs crates/baselines/src/deft.rs crates/baselines/src/fasttree.rs crates/baselines/src/flash.rs crates/baselines/src/relay.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cascade.rs:
crates/baselines/src/common.rs:
crates/baselines/src/deft.rs:
crates/baselines/src/fasttree.rs:
crates/baselines/src/flash.rs:
crates/baselines/src/relay.rs:
