//! The PAT attention backend (§4): pack → forward → merge planning.

use crate::packer::{enforce_row_limit, pack_forest, Pack};
use crate::policy::{tile_policy_from_env, TileContext, TilePolicyKind};
use crate::selector::{TileError, TileSelector};
use crate::split::split_long_kv;
use crate::tiles::TileSolver;
use attn_kernel::{
    AttentionBackend, CtaPlan, DecodeBatch, KernelPlan, KvSlice, L2Affinity, TileConfig,
};
use kv_cache::{PrefixForest, PrefixNode};
use sim_gpu::GpuSpec;

/// Packing policy of the pack stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingPolicy {
    /// PAT's memory-centric profit model (§5.1).
    #[default]
    MemoryProfit,
    /// FastTree-style compute-oriented cost model (PAT-compute, §8.6):
    /// scheme decisions minimize padded tensor-core work, ignoring
    /// intermediate memory traffic.
    ComputeCost,
    /// Every tree node becomes a CTA regardless of profit (PAT-naive, §8.6).
    Naive,
}

/// Configuration of the PAT backend; the defaults are full PAT, and the
/// ablations of §8.6 disable one feature each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatConfig {
    /// Packing policy (PAT-compute/PAT-naive change this).
    pub packing: PackingPolicy,
    /// Select per-CTA tiles from the multi-tile suite; when false, every CTA
    /// uses [`PatConfig::fixed_tile`] (PAT-fixed).
    pub multi_tile: bool,
    /// Fixed tile used when `multi_tile` is off (FlashAttention's (64, 128)).
    pub fixed_tile: TileConfig,
    /// One CUDA stream per active tile configuration; when false, all
    /// kernels serialize on stream 0 (PAT-serial).
    pub multi_stream: bool,
    /// Split CTAs whose KV exceeds the batch mean (§6).
    pub long_kv_split: bool,
    /// How per-CTA tiles are chosen when `multi_tile` is on: the §5.2
    /// heuristic decision tree, or the committed offline-autotuned cache
    /// (PAT-autotuned).
    pub tile_policy: TilePolicyKind,
}

impl Default for PatConfig {
    fn default() -> Self {
        PatConfig {
            packing: PackingPolicy::MemoryProfit,
            multi_tile: true,
            fixed_tile: TileConfig::new(64, 128),
            multi_stream: true,
            long_kv_split: true,
            tile_policy: TilePolicyKind::Heuristic,
        }
    }
}

/// The PAT backend.
///
/// # Examples
///
/// ```
/// use attn_kernel::{simulate_plan, AttentionBackend, DecodeBatch};
/// use attn_math::HeadConfig;
/// use kv_cache::{BlockId, BlockTable};
/// use pat_core::PatBackend;
/// use sim_gpu::GpuSpec;
///
/// let head = HeadConfig::new(32, 8, 128);
/// let tables = vec![
///     BlockTable::new(vec![BlockId(0), BlockId(1)], 32, 16),
///     BlockTable::new(vec![BlockId(0), BlockId(2)], 32, 16),
/// ];
/// let batch = DecodeBatch::new(head, tables, 2);
/// let spec = GpuSpec::a100_sxm4_80gb();
/// let pat = PatBackend::new();
/// let plan = pat.plan(&batch, &spec);
/// let report = simulate_plan(&batch, &plan, &spec).unwrap();
/// assert!(report.total_ns > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatBackend {
    config: PatConfig,
}

impl PatBackend {
    /// Full PAT with default configuration.
    pub fn new() -> Self {
        PatBackend::default()
    }

    /// PAT with an explicit configuration (used by the ablations).
    pub fn with_config(config: PatConfig) -> Self {
        PatBackend { config }
    }

    /// Full PAT with the tile policy taken from `PAT_TILE_POLICY`
    /// (defaulting to the heuristic when unset).
    pub fn from_env() -> Self {
        PatBackend::with_config(PatConfig {
            tile_policy: tile_policy_from_env(),
            ..PatConfig::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PatConfig {
        &self.config
    }

    /// The pack stage only: batch → packs under the configured policy
    /// (before row-limit enforcement, splitting, and tile selection).
    pub fn pack(&self, batch: &DecodeBatch) -> Vec<Pack> {
        self.pack_from_forest(&batch.forest(), batch.head().group_size())
    }

    /// The pack stage over an already-built forest. The delta-planning path
    /// ([`crate::LazyPat`] with [`crate::PlanState`]) maintains the forest
    /// incrementally across decode steps and packs it here without the
    /// per-step rebuild that [`PatBackend::pack`] performs.
    pub fn pack_from_forest(&self, forest: &PrefixForest, group_size: usize) -> Vec<Pack> {
        match self.config.packing {
            PackingPolicy::MemoryProfit => pack_forest(forest),
            PackingPolicy::Naive => naive_pack(forest),
            PackingPolicy::ComputeCost => compute_pack(forest, group_size),
        }
    }

    /// The forward-stage planning: packs → CTAs with tiles and streams.
    /// Used directly by the lazy-update scheduler with cached packs.
    ///
    /// # Panics
    ///
    /// Panics when tile selection fails (no feasible tile for the
    /// device/geometry); [`PatBackend::try_finish_plan`] surfaces the same
    /// condition as a typed [`TileError`] instead.
    pub fn finish_plan(&self, batch: &DecodeBatch, packs: Vec<Pack>, spec: &GpuSpec) -> KernelPlan {
        match self.try_finish_plan(batch, packs, spec) {
            Ok(plan) => plan,
            Err(e) => panic!("PAT planning failed on {}: {e}", spec.name),
        }
    }

    /// Fallible forward-stage planning: packs → CTAs with tiles and
    /// streams, surfacing no-feasible-tile conditions as [`TileError`].
    pub fn try_finish_plan(
        &self,
        batch: &DecodeBatch,
        packs: Vec<Pack>,
        spec: &GpuSpec,
    ) -> Result<KernelPlan, TileError> {
        let head = batch.head();
        let g = head.group_size();
        let selector = TileSelector::new(
            TileSolver::new(spec.clone(), head.head_dim(), batch.dtype_bytes()).feasible_tiles(),
        )?;
        let policy = self.config.tile_policy.policy();
        let ctx = TileContext {
            selector: &selector,
            spec,
            head_dim: head.head_dim(),
            dtype_bytes: batch.dtype_bytes(),
        };
        let max_m = if self.config.multi_tile {
            selector.max_m()
        } else {
            self.config.fixed_tile.m
        };
        let mut packs = enforce_row_limit(packs, g, max_m);
        if self.config.long_kv_split {
            // Splitting exists to fill idle SMs (§6); once the device is
            // oversubscribed it only adds intermediate traffic, so it is
            // applied when the batch cannot form ~2 full waves of CTAs.
            let target_packs = (4 * spec.num_sms) / head.num_kv_heads().max(1);
            if packs.len() < target_packs.max(1) {
                packs = split_long_kv(packs, batch.block_size());
            }
        }

        let mut ctas: Vec<CtaPlan> = Vec::with_capacity(packs.len());
        for pack in packs {
            let rows = pack.queries.len() * g;
            let tile = if self.config.multi_tile {
                policy.choose(&ctx, rows, pack.tokens)?
            } else {
                self.config.fixed_tile
            };
            ctas.push(CtaPlan {
                queries: pack.queries,
                kv: KvSlice::new(pack.blocks, pack.tokens, batch.block_size()),
                tile,
                stream: 0,
                phase: 0,
            });
        }

        if self.config.multi_stream {
            // Longest-KV-first dispatch across the whole batch: the GigaThread
            // engine then places the heaviest CTAs before short ones fill the
            // SMs (LPT scheduling), shrinking the tail bubble. Streams keep
            // one kernel per tile, so intra-stream order is free to choose.
            ctas.sort_by(|a, b| {
                (std::cmp::Reverse(a.kv.tokens), a.tile)
                    .cmp(&(std::cmp::Reverse(b.kv.tokens), b.tile))
            });
        } else {
            // Serial execution groups CTAs by tile so each configuration is
            // one kernel launch, longest KV first within a launch.
            ctas.sort_by(|a, b| {
                (a.tile, std::cmp::Reverse(a.kv.tokens))
                    .cmp(&(b.tile, std::cmp::Reverse(b.kv.tokens)))
            });
        }
        if self.config.multi_stream {
            // One stream per distinct active tile configuration (§6).
            let mut seen: Vec<TileConfig> = Vec::new();
            for cta in &mut ctas {
                let stream = match seen.iter().position(|&t| t == cta.tile) {
                    Some(i) => i,
                    None => {
                        seen.push(cta.tile);
                        seen.len() - 1
                    }
                };
                cta.stream = stream;
            }
        }
        // Exposed scheduling cost is zero: the lazy-update mechanism overlaps
        // packing with pre-attention work (§5.1, validated in Fig. 16).
        let mut plan = KernelPlan::new(ctas);
        // PAT dispatches row-chunks of the same KV run back to back, so any
        // residual re-accesses (row-limit chunking, merged parent blocks)
        // enjoy L2 temporal locality.
        plan.l2_affinity = L2Affinity::Grouped;
        Ok(plan)
    }

    /// CPU-side cost of one pack-scheduler invocation in ns — the Fig. 16
    /// quantity. Linear in tree nodes and block-table size (Algorithm 1's
    /// `O(|V|+|E|)` plus block-table conversion).
    pub fn scheduling_cost_ns(&self, batch: &DecodeBatch) -> f64 {
        let forest = batch.forest();
        let blocks: usize = batch.tables().iter().map(|t| t.blocks().len()).sum();
        scheduling_cost_from_counts(forest.num_nodes(), blocks)
    }
}

/// [`PatBackend::scheduling_cost_ns`] from precomputed forest statistics.
/// The lazy scheduler evaluates this against its maintained forest so cost
/// accounting needs no second per-step forest build; the formula (and hence
/// the reported f64) is bit-identical to the batch-walking form.
pub fn scheduling_cost_from_counts(nodes: usize, blocks: usize) -> f64 {
    1_000.0 + 80.0 * nodes as f64 + 2.0 * blocks as f64
}

impl AttentionBackend for PatBackend {
    fn name(&self) -> &str {
        match (
            self.config.packing,
            self.config.multi_tile,
            self.config.multi_stream,
            self.config.tile_policy,
        ) {
            (PackingPolicy::MemoryProfit, true, true, TilePolicyKind::Heuristic) => "PAT",
            (PackingPolicy::MemoryProfit, true, true, TilePolicyKind::Autotuned) => "PAT-autotuned",
            (PackingPolicy::ComputeCost, _, _, _) => "PAT-compute",
            (PackingPolicy::Naive, _, _, _) => "PAT-naive",
            (_, false, _, _) => "PAT-fixed",
            (_, _, false, _) => "PAT-serial",
        }
    }

    fn plan(&self, batch: &DecodeBatch, spec: &GpuSpec) -> KernelPlan {
        self.finish_plan(batch, self.pack(batch), spec)
    }
}

/// PAT-naive packing: one CTA per non-empty tree node.
fn naive_pack(forest: &PrefixForest) -> Vec<Pack> {
    fn walk(node: &PrefixNode, depth: usize, packs: &mut Vec<Pack>) {
        if node.token_len > 0 {
            packs.push(Pack {
                queries: node.queries.clone(),
                blocks: node.blocks.clone(),
                tokens: node.token_len,
                start: depth,
            });
        }
        for child in &node.children {
            walk(child, depth + node.blocks.len(), packs);
        }
    }
    let mut packs = Vec::new();
    for root in forest.roots() {
        walk(root, 0, &mut packs);
    }
    packs
}

/// PAT-compute packing: FastTree-style scheme decisions that minimize padded
/// tensor-core work. Merging a child into its parent's blocks shrinks the
/// parent CTA's padding but duplicates the parent's KV compute; the policy
/// merges whenever padded compute decreases, ignoring intermediate traffic.
fn compute_pack(forest: &PrefixForest, group_size: usize) -> Vec<Pack> {
    fn padded_rows(queries: usize, g: usize) -> usize {
        (queries * g).next_power_of_two().max(16)
    }
    fn walk(
        node: &PrefixNode,
        inherited: &[kv_cache::BlockId],
        inherited_tokens: usize,
        node_depth: usize,
        g: usize,
        packs: &mut Vec<Pack>,
    ) {
        let mut blocks: Vec<kv_cache::BlockId> = inherited.to_vec();
        blocks.extend_from_slice(&node.blocks);
        let tokens = inherited_tokens + node.token_len;
        let start = node_depth - inherited.len();
        let child_depth = node_depth + node.blocks.len();
        if node.is_leaf() {
            if tokens > 0 {
                packs.push(Pack {
                    queries: node.queries.clone(),
                    blocks,
                    tokens,
                    start,
                });
            }
            return;
        }
        let mut remaining: Vec<usize> = node.queries.clone();
        for child in &node.children {
            let s_u = remaining.len();
            let s_i = child.num_queries();
            // Compute-oriented comparison: padded work of keeping the child's
            // queries in the parent CTA vs duplicating the parent KV in a
            // merged child CTA.
            let keep = padded_rows(s_u, g) * tokens;
            let merge = padded_rows(s_u - s_i, g) * tokens + padded_rows(s_i, g) * tokens;
            if merge < keep && s_u > s_i {
                walk(child, &blocks, tokens, child_depth, g, packs);
                remaining.retain(|q| !child.queries.contains(q));
            } else {
                walk(child, &[], 0, child_depth, g, packs);
            }
        }
        if !remaining.is_empty() && tokens > 0 {
            packs.push(Pack {
                queries: remaining,
                blocks,
                tokens,
                start,
            });
        }
    }
    let mut packs = Vec::new();
    for root in forest.roots() {
        walk(root, &[], 0, 0, group_size, &mut packs);
    }
    packs
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_kernel::{execute_numeric, reference_output, KvStore, QueryActivations};
    use attn_math::HeadConfig;
    use kv_cache::{BlockId, BlockTable};

    fn table(ids: &[u32], tokens: usize) -> BlockTable {
        BlockTable::new(ids.iter().map(|&i| BlockId(i)).collect(), tokens, 16)
    }

    /// A three-level batch: 8 queries share 32 blocks; halves share 8 more;
    /// private tails of varying length.
    fn multi_level_batch(head: HeadConfig) -> DecodeBatch {
        let tables: Vec<BlockTable> = (0..8u32)
            .map(|q| {
                let mut ids: Vec<u32> = (0..32).collect();
                let half = q / 4;
                ids.extend(100 + half * 50..100 + half * 50 + 8);
                ids.extend(1000 + q * 32..1000 + q * 32 + 2 + q);
                let blocks = ids.len();
                table(&ids, blocks * 16 - 7)
            })
            .collect();
        DecodeBatch::new(head, tables, 2)
    }

    #[test]
    fn pat_plan_validates_and_matches_reference_numerically() {
        let head = HeadConfig::new(8, 4, 16);
        let batch = multi_level_batch(head);
        let spec = GpuSpec::a100_sxm4_80gb();
        let plan = PatBackend::new().plan(&batch, &spec);
        plan.validate(&batch).unwrap();
        let acts = QueryActivations::synthetic(head, batch.num_queries(), 3);
        let store = KvStore::synthetic_for(&batch, 4);
        let got = execute_numeric(&batch, &acts, &store, &plan).unwrap();
        let want = reference_output(&batch, &acts, &store);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn all_ablation_variants_produce_valid_plans() {
        let head = HeadConfig::new(8, 4, 16);
        let batch = multi_level_batch(head);
        let spec = GpuSpec::a100_sxm4_80gb();
        let acts = QueryActivations::synthetic(head, batch.num_queries(), 3);
        let store = KvStore::synthetic_for(&batch, 4);
        let want = reference_output(&batch, &acts, &store);
        for config in [
            PatConfig {
                packing: PackingPolicy::ComputeCost,
                ..PatConfig::default()
            },
            PatConfig {
                packing: PackingPolicy::Naive,
                ..PatConfig::default()
            },
            PatConfig {
                multi_tile: false,
                ..PatConfig::default()
            },
            PatConfig {
                multi_stream: false,
                ..PatConfig::default()
            },
            PatConfig {
                long_kv_split: false,
                ..PatConfig::default()
            },
        ] {
            let backend = PatBackend::with_config(config);
            let plan = backend.plan(&batch, &spec);
            plan.validate(&batch)
                .unwrap_or_else(|e| panic!("{config:?}: {e}"));
            let got = execute_numeric(&batch, &acts, &store, &plan).unwrap();
            assert!(got.max_abs_diff(&want) < 1e-4, "{config:?}");
        }
    }

    #[test]
    fn multi_stream_assigns_one_stream_per_tile() {
        let head = HeadConfig::new(32, 8, 128);
        let batch = multi_level_batch(head);
        let spec = GpuSpec::a100_sxm4_80gb();
        let plan = PatBackend::new().plan(&batch, &spec);
        // Streams and distinct tiles must correspond 1:1.
        let mut tiles: Vec<TileConfig> = plan.ctas.iter().map(|c| c.tile).collect();
        tiles.sort();
        tiles.dedup();
        assert_eq!(plan.num_streams(), tiles.len());
        for cta in &plan.ctas {
            for other in &plan.ctas {
                if cta.stream == other.stream {
                    assert_eq!(cta.tile, other.tile);
                }
            }
        }
    }

    #[test]
    fn serial_variant_uses_one_stream() {
        let head = HeadConfig::new(32, 8, 128);
        let batch = multi_level_batch(head);
        let spec = GpuSpec::a100_sxm4_80gb();
        let plan = PatBackend::with_config(PatConfig {
            multi_stream: false,
            ..PatConfig::default()
        })
        .plan(&batch, &spec);
        assert_eq!(plan.num_streams(), 1);
    }

    #[test]
    fn naive_packs_every_shared_node() {
        let head = HeadConfig::new(8, 4, 16);
        let batch = multi_level_batch(head);
        let naive = PatBackend::with_config(PatConfig {
            packing: PackingPolicy::Naive,
            ..PatConfig::default()
        });
        let packs = naive.pack(&batch);
        // 1 root + 2 half-nodes + 8 leaves.
        assert_eq!(packs.len(), 11);
    }

    #[test]
    fn scheduling_cost_grows_with_batch() {
        let head = HeadConfig::new(8, 4, 16);
        let small = DecodeBatch::new(head, vec![table(&[0], 16), table(&[1], 16)], 2);
        let large = multi_level_batch(head);
        let pat = PatBackend::new();
        assert!(pat.scheduling_cost_ns(&large) > pat.scheduling_cost_ns(&small));
    }

    #[test]
    fn backend_names_reflect_configuration() {
        assert_eq!(PatBackend::new().name(), "PAT");
        let fixed = PatBackend::with_config(PatConfig {
            multi_tile: false,
            ..Default::default()
        });
        assert_eq!(fixed.name(), "PAT-fixed");
        let serial = PatBackend::with_config(PatConfig {
            multi_stream: false,
            ..Default::default()
        });
        assert_eq!(serial.name(), "PAT-serial");
    }
}
