//! The tile-selection policy seam: heuristic decision tree vs committed
//! autotuned cache.
//!
//! PAT's §5.2 runtime selector hard-codes thresholds profiled on an A100.
//! Parameterizing the hardware ([`sim_gpu::GpuModel`]) makes that
//! brittleness visible: on a TPU-like systolic part the feasible suite has
//! no `n ≤ 32` tile at all, and on B200 the Q-tile roof drops to `m = 32`,
//! so a decision tree tuned for one device cannot be right for the family.
//!
//! [`TilePolicy`] abstracts the per-CTA choice:
//!
//! * [`HeuristicPolicy`] — the original round-up + piecewise-`n` tree in
//!   [`TileSelector`], unchanged (the default; byte-for-bit identical to
//!   the pre-seam behaviour).
//! * [`AutotunedPolicy`] — looks the choice up in a **committed tile
//!   cache** (`tile_cache.json` next to this crate), produced offline by
//!   [`generate_tile_cache`]: a deterministic, exhaustive search of the
//!   constraint-feasible `(m, n)` space per (hardware model, workload
//!   signature bucket) with the kernel simulator as the oracle. The cache
//!   is ratcheted like `calibration.json` and `simlint.baseline.json` —
//!   regeneration must reproduce the committed bytes (`tune --check` in
//!   CI), so a simulator change that shifts a tile choice shows up as a
//!   reviewed diff, never as silent drift. Lookup misses (uncommitted
//!   geometry or device, stale entry) fall back to the heuristic.
//!
//! The active policy is chosen per backend via
//! [`PatConfig::tile_policy`](crate::PatConfig) and defaults to the
//! heuristic; the `PAT_TILE_POLICY` environment variable selects it for
//! env-constructed backends ([`crate::PatBackend::from_env`]).

use crate::backend::{PatBackend, PatConfig};
use crate::selector::{TileError, TileSelector};
use crate::tiles::TileSolver;
use attn_kernel::{simulate_plan, DecodeBatch, TileConfig};
use attn_math::HeadConfig;
use kv_cache::{BlockId, BlockTable, DEFAULT_BLOCK_SIZE};
use serde::{Deserialize, Serialize};
use sim_core::cast::usize_to_u32;
use sim_gpu::{GpuModel, GpuSpec};
use std::fmt;
use std::sync::OnceLock;

/// Environment variable selecting the tile policy (`heuristic` or
/// `autotuned`; unset means `heuristic`).
pub const TILE_POLICY_ENV: &str = "PAT_TILE_POLICY";

/// Which tile policy a PAT backend runs (a `Copy` tag so
/// [`crate::PatConfig`] stays `Copy`; [`TilePolicyKind::policy`] resolves
/// it to the actual strategy object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TilePolicyKind {
    /// The §5.2 round-up + piecewise-`n` decision tree (the default).
    #[default]
    Heuristic,
    /// Committed offline-autotuned per-hardware tile cache, with heuristic
    /// fallback on lookup misses.
    Autotuned,
}

impl TilePolicyKind {
    /// Parses a policy name (`"heuristic"`, `"autotuned"`,
    /// case-insensitive). Returns `None` for anything else.
    pub fn parse(name: &str) -> Option<TilePolicyKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "heuristic" => Some(TilePolicyKind::Heuristic),
            "autotuned" | "autotune" => Some(TilePolicyKind::Autotuned),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TilePolicyKind::Heuristic => "heuristic",
            TilePolicyKind::Autotuned => "autotuned",
        }
    }

    /// The strategy object for this kind.
    pub fn policy(self) -> &'static dyn TilePolicy {
        match self {
            TilePolicyKind::Heuristic => &HeuristicPolicy,
            TilePolicyKind::Autotuned => &AutotunedPolicy,
        }
    }
}

impl fmt::Display for TilePolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The policy selected by [`TILE_POLICY_ENV`], defaulting to
/// [`TilePolicyKind::Heuristic`] when unset or unrecognized.
pub fn tile_policy_from_env() -> TilePolicyKind {
    sim_core::knobs::raw(TILE_POLICY_ENV)
        .and_then(|v| TilePolicyKind::parse(&v))
        .unwrap_or(TilePolicyKind::Heuristic)
}

/// Everything a tile policy may consult when choosing a CTA's tile.
#[derive(Debug, Clone, Copy)]
pub struct TileContext<'a> {
    /// The runtime selector over the device's feasible suite.
    pub selector: &'a TileSelector,
    /// The device being planned for.
    pub spec: &'a GpuSpec,
    /// Head dimension of the batch.
    pub head_dim: usize,
    /// Bytes per KV element.
    pub dtype_bytes: usize,
}

/// Strategy choosing the `(m, n)` tile for one CTA.
pub trait TilePolicy: fmt::Debug + Send + Sync {
    /// Chooses the tile for a CTA of `rows` query rows over `kv_len` KV
    /// tokens. Must return a tile from the context's feasible suite with
    /// `m ≥ rows`.
    fn choose(
        &self,
        ctx: &TileContext<'_>,
        rows: usize,
        kv_len: usize,
    ) -> Result<TileConfig, TileError>;

    /// Canonical policy name.
    fn name(&self) -> &'static str;
}

/// The original §5.2 decision tree, delegated to [`TileSelector`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicPolicy;

impl TilePolicy for HeuristicPolicy {
    fn choose(
        &self,
        ctx: &TileContext<'_>,
        rows: usize,
        kv_len: usize,
    ) -> Result<TileConfig, TileError> {
        ctx.selector.select(rows, kv_len)
    }

    fn name(&self) -> &'static str {
        "heuristic"
    }
}

/// Committed-cache lookup with heuristic fallback.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutotunedPolicy;

impl TilePolicy for AutotunedPolicy {
    fn choose(
        &self,
        ctx: &TileContext<'_>,
        rows: usize,
        kv_len: usize,
    ) -> Result<TileConfig, TileError> {
        let selector = ctx.selector;
        let rows_class = selector.select_m(rows).ok_or(TileError::RowsExceedMaxM {
            rows,
            max_m: selector.max_m(),
        })?;
        if let Some(tile) = TileCache::committed().lookup(
            &ctx.spec.name,
            ctx.head_dim,
            ctx.dtype_bytes,
            rows_class,
            kv_len,
        ) {
            // Staleness guard: an entry tuned against an older solver may
            // name a tile the current suite rejects — fall through to the
            // heuristic instead of planning an infeasible kernel.
            if tile.m >= rows && selector.feasible().contains(&tile) {
                return Ok(tile);
            }
        }
        selector.select(rows, kv_len)
    }

    fn name(&self) -> &'static str {
        "autotuned"
    }
}

/// One committed tile choice: for CTAs of `rows_class` rows (after the
/// round-up rule) whose KV length falls in `[kv_lo, kv_hi]` on this device
/// and geometry, run `(m, n)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileCacheEntry {
    /// Device identity ([`GpuSpec::name`]).
    pub gpu: String,
    /// Head dimension the entry was tuned for.
    pub head_dim: usize,
    /// Bytes per KV element the entry was tuned for.
    pub dtype_bytes: usize,
    /// Q-row class: the smallest feasible `m` holding the CTA's rows.
    pub rows_class: usize,
    /// Inclusive lower KV-length bound of the workload bucket.
    pub kv_lo: usize,
    /// Inclusive upper KV-length bound (`usize::MAX` for the open bucket).
    pub kv_hi: usize,
    /// Chosen Q tile.
    pub m: usize,
    /// Chosen KV tile.
    pub n: usize,
}

/// The committed set of autotuned tile choices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileCache {
    /// Format version (bump on schema change).
    pub version: u32,
    /// Tuned entries in generation order (hardware model, rows class, KV
    /// bucket — all ascending).
    pub entries: Vec<TileCacheEntry>,
}

/// The raw committed tile cache file.
pub const COMMITTED_TILE_CACHE_JSON: &str = include_str!("../tile_cache.json");

impl TileCache {
    /// The cache committed at `crates/pat-core/tile_cache.json`, parsed
    /// once. A parse failure yields an empty cache (every lookup then
    /// falls back to the heuristic); the drift ratchet pins the committed
    /// bytes, so that path is unreachable in a healthy checkout.
    pub fn committed() -> &'static TileCache {
        static CACHE: OnceLock<TileCache> = OnceLock::new();
        CACHE.get_or_init(|| {
            serde_json::from_str(COMMITTED_TILE_CACHE_JSON).unwrap_or(TileCache {
                version: 1,
                entries: Vec::new(),
            })
        })
    }

    /// Finds the tuned tile for a device, geometry, Q-row class, and KV
    /// length. `None` when the cell was never tuned.
    pub fn lookup(
        &self,
        gpu: &str,
        head_dim: usize,
        dtype_bytes: usize,
        rows_class: usize,
        kv_len: usize,
    ) -> Option<TileConfig> {
        self.entries
            .iter()
            .find(|e| {
                e.gpu == gpu
                    && e.head_dim == head_dim
                    && e.dtype_bytes == dtype_bytes
                    && e.rows_class == rows_class
                    && e.kv_lo <= kv_len
                    && kv_len <= e.kv_hi
            })
            .map(|e| TileConfig::new(e.m, e.n))
    }

    /// Canonical JSON encoding (the exact bytes committed on disk).
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }
}

/// KV-length buckets quantizing the workload signature. The boundaries
/// reuse the §5.2 profile points (so on A100 the tuned cache and the
/// heuristic tree partition KV space identically — the pinning tests rely
/// on it); the *choice inside each bucket* is what the tuner learns per
/// device.
pub const KV_BUCKETS: [(usize, usize); 4] = [(0, 95), (96, 191), (192, 767), (768, usize::MAX)];

/// Head geometry the cache is tuned for: the llama3-8B decode shard
/// (32 query heads / 8 KV heads / head_dim 128, fp16) every fig-suite
/// serving bench runs. Other geometries miss the cache and fall back to
/// the heuristic.
fn tuned_head() -> HeadConfig {
    HeadConfig::new(32, 8, 128)
}

/// Bytes per KV element the cache is tuned for (fp16).
const TUNED_DTYPE_BYTES: usize = 2;

/// CTAs per tuning batch. Matches the offline profiler's regime
/// ([`crate::derive_n_rule`] sweeps 192-CTA batches): the device must be
/// oversubscribed, because the concurrency pressure that separates small
/// from large KV tiles only exists past one wave. Underfilled batches
/// degenerate to "largest n always wins" (each CTA's rate cap scales with
/// `n` and nothing contends for bandwidth).
const TUNE_CTAS: usize = 192;

/// Open-ended KV bucket is sampled up to this length.
const TUNE_KV_SAMPLE_MAX: usize = 4096;

/// One (device, feasible suite, rows class, KV bucket) tuning cell.
type TuneCell = (GpuSpec, Vec<TileConfig>, usize, (usize, usize));

/// Regenerates the full tile cache (the `tune` binary's payload):
/// for every curated hardware model, every feasible Q-row class, and
/// every KV bucket, exhaustively evaluates the constraint-feasible
/// `(m, n)` candidates on a bucket-spanning synthetic decode batch and
/// keeps the argmin. Deterministic — fixed grid, fixed iteration order,
/// no entropy — and thread-count invariant: cells are distributed with
/// [`sim_core::par::ordered_map`], whose output order is the input order
/// for every worker count.
pub fn generate_tile_cache() -> TileCache {
    let head = tuned_head();
    // Cells in fixed (hardware model, rows class, KV bucket) order.
    let mut cells: Vec<TuneCell> = Vec::new();
    for model in GpuModel::all() {
        let spec = model.spec();
        let solver = TileSolver::new(spec.clone(), head.head_dim(), TUNED_DTYPE_BYTES);
        let feasible = solver.feasible_tiles();
        let mut classes: Vec<usize> = feasible.iter().map(|t| t.m).collect();
        classes.sort_unstable();
        classes.dedup();
        for rows_class in classes {
            for bucket in KV_BUCKETS {
                cells.push((spec.clone(), feasible.clone(), rows_class, bucket));
            }
        }
    }
    let entries = sim_core::par::ordered_map(&cells, |_, (spec, feasible, rows_class, bucket)| {
        tune_cell(spec, feasible, *rows_class, *bucket)
    });
    TileCache {
        version: 1,
        entries,
    }
}

/// Exhaustively evaluates one (device, rows class, KV bucket) cell.
///
/// The search is **heuristic-anchored**: the incumbent starts as the §5.2
/// decision tree's choice for the cell, and a candidate must beat the
/// incumbent by more than the 1% performance-equivalence band to displace
/// it. Tiles inside the band are exactly what the paper calls
/// performance-equivalent, so deviating on them would trade noise for
/// churn; on A100 — the device the tree was profiled on — every candidate
/// lands inside the band and the tuned cache reproduces the heuristic
/// (pinned by tests), while on hardware the tree has never seen (B200's
/// tight shared-memory budget, H100's pruned suite) genuinely better tiles
/// clear the band and the cache departs.
fn tune_cell(
    spec: &GpuSpec,
    feasible: &[TileConfig],
    rows_class: usize,
    (kv_lo, kv_hi): (usize, usize),
) -> TileCacheEntry {
    let head = tuned_head();
    let batch = bucket_batch(head, rows_class, kv_lo, kv_hi);
    // Each candidate is ranked by forcing it through the *real* planning
    // pipeline (PAT-fixed: `multi_tile: false`), so the oracle sees exactly
    // the plan shape the policy's choice will run in — packing, row-limit
    // chunking, longest-KV-first dispatch, stream assignment, L2 affinity.
    // Hand-built uniform plans mis-rank tiles whose relative cost depends
    // on dispatch order.
    let evaluate = |tile: TileConfig| -> Option<f64> {
        let backend = PatBackend::with_config(PatConfig {
            multi_tile: false,
            fixed_tile: tile,
            ..PatConfig::default()
        });
        let packs = backend.pack(&batch);
        let plan = backend.try_finish_plan(&batch, packs, spec).ok()?;
        simulate_plan(&batch, &plan, spec)
            .ok()
            .map(|r| r.forward_ns)
    };
    // The heuristic anchor. `preferred_n` is constant across a bucket
    // (KV_BUCKETS aligns with the tree's thresholds), so probing at the
    // lower bound represents the whole cell. Selection over a non-empty
    // feasible suite with rows == a feasible m cannot fail; if it somehow
    // does, fall back to a pure argmin from the first candidate.
    let anchor = TileSelector::new(feasible.to_vec())
        .ok()
        .and_then(|s| s.select(rows_class, kv_lo).ok());
    let mut best: Option<(TileConfig, f64)> = anchor.and_then(|t| evaluate(t).map(|ns| (t, ns)));
    // Candidates in (m, n) order: every feasible tile that can hold the
    // row class without splitting.
    for &tile in feasible.iter().filter(|t| t.m >= rows_class) {
        if best.is_some_and(|(b, _)| b == tile) {
            continue;
        }
        let Some(ns) = evaluate(tile) else {
            continue;
        };
        let better = match best {
            None => true,
            // Displacement requires a strict >1% win over the incumbent.
            Some((_, best_ns)) => ns < best_ns * 0.99,
        };
        if better {
            best = Some((tile, ns));
        }
    }
    // Every class has at least one candidate (its own defining tile), and
    // the uniform plans are valid by construction, so `best` is always set.
    let (tile, _) = best.unwrap_or((TileConfig::new(rows_class, rows_class), f64::INFINITY));
    TileCacheEntry {
        gpu: spec.name.clone(),
        head_dim: head.head_dim(),
        dtype_bytes: TUNED_DTYPE_BYTES,
        rows_class,
        kv_lo,
        kv_hi,
        m: tile.m,
        n: tile.n,
    }
}

/// A synthetic decode batch spanning one KV bucket: [`TUNE_CTAS`] CTA
/// groups whose KV lengths ramp linearly across `[kv_lo, kv_hi]` (the open
/// bucket is sampled up to [`TUNE_KV_SAMPLE_MAX`]), each group holding
/// `rows_class / group_size` queries over an identical block list — the
/// shared-KV shape the pack stage emits. Length variance inside the bucket
/// is what separates the candidates: stragglers punish small `n` through
/// the per-CTA rate cap, short rows punish large `n` through exposed
/// padded final-tile compute.
fn bucket_batch(head: HeadConfig, rows_class: usize, kv_lo: usize, kv_hi: usize) -> DecodeBatch {
    let bs = DEFAULT_BLOCK_SIZE;
    let queries_per_cta = (rows_class / head.group_size()).max(1);
    let lo = kv_lo.max(bs);
    let hi = kv_hi.min(TUNE_KV_SAMPLE_MAX).max(lo + 1);
    let tables: Vec<BlockTable> = (0..TUNE_CTAS)
        .flat_map(|c| {
            let len = lo + c * (hi - lo) / (TUNE_CTAS - 1);
            let blocks = len.div_ceil(bs);
            let ids: Vec<BlockId> = (0..usize_to_u32(blocks))
                .map(|i| BlockId(usize_to_u32(c) * 100_000 + i))
                .collect();
            (0..queries_per_cta).map(move |_| BlockTable::new(ids.clone(), len, bs))
        })
        .collect();
    DecodeBatch::new(head, tables, TUNED_DTYPE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::par::set_thread_override;

    #[test]
    fn policy_kind_parse_round_trips() {
        for k in [TilePolicyKind::Heuristic, TilePolicyKind::Autotuned] {
            assert_eq!(TilePolicyKind::parse(k.name()), Some(k));
            assert_eq!(TilePolicyKind::parse(&k.name().to_uppercase()), Some(k));
            assert_eq!(k.policy().name(), k.name());
        }
        assert_eq!(TilePolicyKind::parse("oracle"), None);
        assert_eq!(TilePolicyKind::default(), TilePolicyKind::Heuristic);
    }

    #[test]
    fn kv_buckets_partition_the_heuristic_thresholds() {
        // The buckets must tile KV space without gaps or overlap, and each
        // bucket must map to exactly one heuristic preferred_n.
        let mut next = 0usize;
        for (lo, hi) in KV_BUCKETS {
            assert_eq!(lo, next, "gap before bucket ({lo}, {hi})");
            assert_eq!(
                TileSelector::preferred_n(lo),
                TileSelector::preferred_n(hi.min(1 << 30)),
                "bucket ({lo}, {hi}) straddles a heuristic threshold"
            );
            next = hi.saturating_add(1);
        }
        assert_eq!(KV_BUCKETS[3].1, usize::MAX);
    }

    #[test]
    fn committed_cache_parses_and_covers_every_model_cell() {
        let cache = TileCache::committed();
        assert!(!cache.entries.is_empty(), "committed cache must parse");
        let head = tuned_head();
        for model in GpuModel::all() {
            let spec = model.spec();
            let solver = TileSolver::new(spec.clone(), head.head_dim(), TUNED_DTYPE_BYTES);
            let feasible = solver.feasible_tiles();
            let mut classes: Vec<usize> = feasible.iter().map(|t| t.m).collect();
            classes.sort_unstable();
            classes.dedup();
            for &rows_class in &classes {
                for (lo, hi) in KV_BUCKETS {
                    let probe = lo.max(1).min(hi);
                    let tile = cache
                        .lookup(
                            &spec.name,
                            head.head_dim(),
                            TUNED_DTYPE_BYTES,
                            rows_class,
                            probe,
                        )
                        .unwrap_or_else(|| {
                            panic!("{}: no entry for class {rows_class} kv {probe}", spec.name)
                        });
                    assert!(
                        feasible.contains(&tile),
                        "{}: committed tile {tile:?} infeasible",
                        spec.name
                    );
                    assert!(tile.m >= rows_class);
                }
            }
        }
    }

    #[test]
    fn committed_cache_matches_regeneration_ratchet() {
        // The drift ratchet: regenerating the cache must reproduce the
        // committed bytes exactly. If this fails, a kernel-simulator or
        // solver change shifted a tile choice — rerun `cargo run --release
        // -p pat-core --bin tune` and review the diff.
        let regenerated = generate_tile_cache().to_canonical_json();
        assert_eq!(
            regenerated, COMMITTED_TILE_CACHE_JSON,
            "tile_cache.json is stale; regenerate with the tune binary"
        );
    }

    #[test]
    fn tune_is_thread_count_invariant() {
        // Byte-identity across two in-process runs at different worker
        // counts (the PAT_SIM_THREADS=1 vs 4 guarantee).
        set_thread_override(Some(1));
        let one = generate_tile_cache().to_canonical_json();
        set_thread_override(Some(4));
        let four = generate_tile_cache().to_canonical_json();
        set_thread_override(None);
        assert_eq!(one, four, "tile cache depends on thread count");
    }

    #[test]
    fn lookup_misses_unknown_cells() {
        let cache = TileCache::committed();
        assert_eq!(cache.lookup("A100-PCIe-40GB", 128, 2, 16, 100), None);
        assert_eq!(
            cache.lookup("A100-SXM4-80GB", 64, 2, 16, 100),
            None,
            "untuned head_dim must miss"
        );
    }

    #[test]
    fn open_bucket_covers_huge_kv() {
        let cache = TileCache::committed();
        let tile = cache.lookup("A100-SXM4-80GB", 128, 2, 16, 1 << 30);
        assert!(tile.is_some(), "open bucket must cover arbitrarily long KV");
    }
}
