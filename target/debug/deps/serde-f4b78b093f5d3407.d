/root/repo/target/debug/deps/serde-f4b78b093f5d3407.d: crates/compat-serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-f4b78b093f5d3407.rmeta: crates/compat-serde/src/lib.rs Cargo.toml

crates/compat-serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
