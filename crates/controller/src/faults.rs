//! Fault injection: scripted and seeded-random replica failures.
//!
//! Faults are generated up front — either from an explicit script or from a
//! seeded random process — so a controller run is a pure function of
//! `(config, trace, fault plan)` and two runs with the same inputs are
//! bit-identical.

use rand::{Rng, SeedableRng};

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The replica dies instantly: every queued and in-flight request is
    /// torn out of it and its KV cache is lost. If `restart_after_s` is
    /// `Some`, the replica comes back that many seconds later with a cold
    /// cache; `None` means it never returns.
    Crash {
        /// Index of the replica to kill (into the initial fleet).
        replica: usize,
        /// Seconds until the replica restarts, cold; `None` = permanent.
        restart_after_s: Option<f64>,
    },
    /// The replica keeps serving but every step takes `1 / factor` times as
    /// long (a straggler: thermal throttling, a noisy neighbor, ECC
    /// retirement). `factor` must be in `(0, 1]`.
    Slowdown {
        /// Index of the replica to slow.
        replica: usize,
        /// Speed factor while degraded (0.5 = half speed).
        factor: f64,
        /// How long the slowdown lasts.
        duration_s: f64,
    },
}

/// A fault at a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, seconds from trace start.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for a seeded-random fault process.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomFaultConfig {
    /// Seed for the fault stream (independent of the trace seed).
    pub seed: u64,
    /// Horizon over which faults are drawn, seconds.
    pub duration_s: f64,
    /// Number of replicas faults may target.
    pub replicas: usize,
    /// Mean crashes per minute across the whole fleet.
    pub crash_rate_per_min: f64,
    /// Mean restart delay after a crash, seconds.
    pub mean_restart_s: f64,
    /// Mean slowdowns per minute across the whole fleet.
    pub slowdown_rate_per_min: f64,
    /// Mean slowdown duration, seconds.
    pub mean_slowdown_s: f64,
    /// Speed factor drawn uniformly from this range (lo, hi], both in (0, 1].
    pub slow_factor_range: (f64, f64),
}

/// A time-sorted schedule of faults to inject into a fleet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults at all (the healthy baseline).
    pub fn none() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// An explicit script of faults; sorted by time on construction.
    ///
    /// # Panics
    ///
    /// Panics if any event has a negative timestamp, a `Slowdown` factor
    /// outside `(0, 1]`, or a non-positive duration.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            assert!(e.at_s >= 0.0, "fault time must be non-negative");
            if let FaultKind::Slowdown {
                factor, duration_s, ..
            } = e.kind
            {
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "slowdown factor must be in (0, 1]"
                );
                assert!(duration_s > 0.0, "slowdown duration must be positive");
            }
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        FaultPlan { events }
    }

    /// Draws crashes and slowdowns from independent Poisson processes with
    /// exponentially distributed restart/slowdown durations, targeting a
    /// uniformly random replica each time. Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero or the factor range leaves `(0, 1]`.
    pub fn random(cfg: &RandomFaultConfig) -> Self {
        assert!(cfg.replicas > 0, "fault plan needs at least one replica");
        let (lo, hi) = cfg.slow_factor_range;
        assert!(
            0.0 < lo && lo <= hi && hi <= 1.0,
            "slow factor range must lie in (0, 1]"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let mut events = Vec::new();
        let draw_times = |rate_per_min: f64, rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let mut times = Vec::new();
            if rate_per_min <= 0.0 {
                return times;
            }
            let rate_per_s = rate_per_min / 60.0;
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t -= u.ln() / rate_per_s;
                if t >= cfg.duration_s {
                    return times;
                }
                times.push(t);
            }
        };
        for at_s in draw_times(cfg.crash_rate_per_min, &mut rng) {
            let replica = rng.gen_range(0..cfg.replicas);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let restart = -u.ln() * cfg.mean_restart_s;
            events.push(FaultEvent {
                at_s,
                kind: FaultKind::Crash {
                    replica,
                    restart_after_s: Some(restart),
                },
            });
        }
        for at_s in draw_times(cfg.slowdown_rate_per_min, &mut rng) {
            let replica = rng.gen_range(0..cfg.replicas);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let duration_s = (-u.ln() * cfg.mean_slowdown_s).max(0.1);
            let factor = if lo == hi { lo } else { rng.gen_range(lo..hi) };
            events.push(FaultEvent {
                at_s,
                kind: FaultKind::Slowdown {
                    replica,
                    factor,
                    duration_s,
                },
            });
        }
        FaultPlan::scripted(events)
    }

    /// The schedule, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Time of the last scheduled fault, 0.0 when empty.
    pub fn last_at_s(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.at_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plans_sort_by_time() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at_s: 9.0,
                kind: FaultKind::Crash {
                    replica: 1,
                    restart_after_s: None,
                },
            },
            FaultEvent {
                at_s: 2.0,
                kind: FaultKind::Slowdown {
                    replica: 0,
                    factor: 0.5,
                    duration_s: 3.0,
                },
            },
        ]);
        assert_eq!(plan.events()[0].at_s, 2.0);
        assert_eq!(plan.last_at_s(), 9.0);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let cfg = RandomFaultConfig {
            seed: 7,
            duration_s: 600.0,
            replicas: 4,
            crash_rate_per_min: 0.5,
            mean_restart_s: 20.0,
            slowdown_rate_per_min: 1.0,
            mean_slowdown_s: 15.0,
            slow_factor_range: (0.3, 0.8),
        };
        let a = FaultPlan::random(&cfg);
        let b = FaultPlan::random(&cfg);
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
        assert!(a.events().windows(2).all(|w| w[0].at_s <= w[1].at_s));
        let c = FaultPlan::random(&RandomFaultConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn zero_factor_slowdown_rejected() {
        let _ = FaultPlan::scripted(vec![FaultEvent {
            at_s: 0.0,
            kind: FaultKind::Slowdown {
                replica: 0,
                factor: 0.0,
                duration_s: 1.0,
            },
        }]);
    }
}
