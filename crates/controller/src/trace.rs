//! Chrome trace-event export of the control plane's event-queue timeline.
//!
//! Converts a [`ControlResult`]'s structured [`TimelineEvent`] stream into
//! the Trace Event Format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one instant event (`ph: "i"`) per
//! control action — or a complete event (`ph: "X"`) when the entry carries a
//! duration, as KV transfers do — one track per replica plus a fleet-wide
//! track for ticks and scaling decisions. Useful for seeing crash → detect →
//! transfer → failover → revive sequences laid out on the virtual clock.

use crate::metrics::{ControlResult, TimelineEvent};
use sim_core::SimTime;

/// Serializes a timeline into Trace Event Format JSON (object form).
///
/// Timestamps are microseconds (the format's native unit); replicas map to
/// thread ids under process 0, fleet-wide events (ticks, scaling) to thread
/// id 0 under process 1. Instant events use thread scope (`"s":"t"`). The
/// events sit under `traceEvents`, and `otherData.knobs` records the
/// output-scoped knob snapshot (`sim_core::knobs`) so every exported trace
/// carries the configuration that produced it.
///
/// # Examples
///
/// ```
/// use controller::timeline_chrome_json;
///
/// let json = timeline_chrome_json(&[]);
/// assert!(json.starts_with("{\"traceEvents\":[]"));
/// assert!(json.contains("\"knobs\""));
/// ```
pub fn timeline_chrome_json(timeline: &[TimelineEvent]) -> String {
    let events: Vec<String> = timeline
        .iter()
        .map(|event| {
            let (pid, tid) = match event.replica {
                Some(replica) => (0, replica),
                None => (1, 0),
            };
            if event.dur_ns > 0 {
                format!(
                    concat!(
                        "{{\"name\":{},\"cat\":\"control\",\"ph\":\"X\",",
                        "\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}}}"
                    ),
                    json_string(&event.kind),
                    SimTime::from_ns(event.t_ns).as_us_f64(),
                    SimTime::from_ns(event.dur_ns).as_us_f64(),
                    pid,
                    tid,
                )
            } else {
                format!(
                    concat!(
                        "{{\"name\":{},\"cat\":\"control\",\"ph\":\"i\",\"s\":\"t\",",
                        "\"ts\":{:.3},\"pid\":{},\"tid\":{}}}"
                    ),
                    json_string(&event.kind),
                    SimTime::from_ns(event.t_ns).as_us_f64(),
                    pid,
                    tid,
                )
            }
        })
        .collect();
    format!(
        "{{\"traceEvents\":[{}],\"otherData\":{{\"knobs\":{}}}}}",
        events.join(","),
        sim_core::knobs::snapshot().artifact_json(),
    )
}

/// [`timeline_chrome_json`] applied to a run's result.
pub fn result_chrome_json(result: &ControlResult) -> String {
    timeline_chrome_json(&result.timeline)
}

/// Minimal JSON string escaping for event names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TimelineEvent> {
        vec![
            TimelineEvent {
                t_ns: 2_000_000_000,
                kind: "crash".into(),
                replica: Some(1),
                dur_ns: 0,
            },
            TimelineEvent {
                t_ns: 2_500_000_000,
                kind: "tick".into(),
                replica: None,
                dur_ns: 0,
            },
        ]
    }

    #[test]
    fn replica_events_and_fleet_events_land_on_separate_processes() {
        let json = timeline_chrome_json(&sample());
        assert!(json.contains("\"pid\":0,\"tid\":1"), "{json}");
        assert!(json.contains("\"pid\":1,\"tid\":0"), "{json}");
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":2000000.000"));
    }

    #[test]
    fn output_is_balanced_json() {
        let json = timeline_chrome_json(&sample());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn spans_render_as_complete_events() {
        let json = timeline_chrome_json(&[TimelineEvent {
            t_ns: 1_000_000,
            kind: "transfer".into(),
            replica: Some(2),
            dur_ns: 250_000,
        }]);
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":250.000"), "{json}");
        assert!(
            !json.contains("\"s\":\"t\""),
            "complete events carry no scope"
        );
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
