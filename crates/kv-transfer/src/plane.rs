//! The transfer plane: in-flight transfers serialized on per-replica NICs.

use crate::link::FleetTopology;
use serde::Serialize;
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Why a transfer was started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransferKind {
    /// Warm-prefix migration of cached blocks to a failover target.
    PrefixMigration,
    /// Speculative prefix push to a replica that just (re)joined the fleet.
    Prewarm,
    /// Prefill→decode KV handoff in disaggregated serving.
    DisaggHandoff,
}

/// One KV transfer between two replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Plane-unique transfer id.
    pub id: u64,
    /// Donor replica index (transmit side).
    pub src: usize,
    /// Destination replica index (receive side).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Number of prompt tokens the payload covers.
    pub tokens: usize,
    /// Why the transfer was started.
    pub kind: TransferKind,
    /// When the transfer was requested.
    pub requested: SimTime,
    /// When the wire actually started moving bytes (≥ `requested`; later
    /// when either NIC was still busy with an earlier transfer).
    pub started: SimTime,
    /// When the last byte arrives at `dst`.
    pub finish: SimTime,
}

impl Transfer {
    /// How long the transfer waited for a free NIC before starting.
    pub fn nic_wait(&self) -> SimDuration {
        self.started.saturating_sub(self.requested)
    }
}

/// Aggregate transfer accounting, suitable for bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TransferStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Total bytes moved by completed transfers.
    pub bytes: u64,
    /// Total prompt tokens covered by completed transfers.
    pub tokens: u64,
    /// Total time completed transfers spent queued behind busy NICs, ns.
    pub nic_wait_ns: u64,
    /// Total wire occupancy of completed transfers (start→finish), ns.
    pub wire_ns: u64,
}

/// Tracks in-flight transfers and serializes them on per-replica NIC budgets.
///
/// Each replica has one transmit and one receive NIC; a transfer occupies the
/// donor's TX NIC and the destination's RX NIC from its start until its
/// finish. A transfer requested while either NIC is busy starts when both are
/// free — concurrent transfers through the same replica serialize
/// deterministically in request order.
///
/// The plane computes finish times; the caller owns the event loop and is
/// expected to schedule a completion event at [`Transfer::finish`] and call
/// [`TransferPlane::complete`] when it fires.
#[derive(Debug, Clone)]
pub struct TransferPlane {
    topology: FleetTopology,
    next_id: u64,
    tx_free: BTreeMap<usize, SimTime>,
    rx_free: BTreeMap<usize, SimTime>,
    in_flight: BTreeMap<u64, Transfer>,
    stats: TransferStats,
}

impl TransferPlane {
    /// A plane over the given topology with all NICs idle.
    pub fn new(topology: FleetTopology) -> Self {
        TransferPlane {
            topology,
            next_id: 0,
            tx_free: BTreeMap::new(),
            rx_free: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            stats: TransferStats::default(),
        }
    }

    /// The topology the plane routes over.
    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    fn earliest_start(&self, now: SimTime, src: usize, dst: usize) -> SimTime {
        let tx = self.tx_free.get(&src).copied().unwrap_or(SimTime::ZERO);
        let rx = self.rx_free.get(&dst).copied().unwrap_or(SimTime::ZERO);
        now.max(tx).max(rx)
    }

    /// When a transfer of `bytes` from `src` to `dst` requested at `now`
    /// would finish, accounting for NIC queueing — without reserving
    /// anything. Used by the migrate-vs-recompute decision.
    pub fn estimate_finish(&self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        let start = self.earliest_start(now, src, dst);
        start + self.topology.link(src, dst).transfer_time(bytes)
    }

    /// Starts a transfer, reserving both NICs until its finish time, and
    /// returns the in-flight record (schedule its completion at `finish`).
    pub fn begin(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
        tokens: usize,
        kind: TransferKind,
    ) -> Transfer {
        let started = self.earliest_start(now, src, dst);
        let finish = started + self.topology.link(src, dst).transfer_time(bytes);
        let id = self.next_id;
        self.next_id += 1;
        let transfer = Transfer {
            id,
            src,
            dst,
            bytes,
            tokens,
            kind,
            requested: now,
            started,
            finish,
        };
        self.tx_free.insert(src, finish);
        self.rx_free.insert(dst, finish);
        self.in_flight.insert(id, transfer.clone());
        transfer
    }

    /// Marks transfer `id` complete, folds it into [`TransferPlane::stats`],
    /// and returns its record. Returns `None` for unknown ids.
    pub fn complete(&mut self, id: u64) -> Option<Transfer> {
        let transfer = self.in_flight.remove(&id)?;
        self.stats.transfers += 1;
        self.stats.bytes += transfer.bytes;
        self.stats.tokens += transfer.tokens as u64;
        self.stats.nic_wait_ns += transfer.nic_wait().as_ns();
        self.stats.wire_ns += transfer.finish.saturating_sub(transfer.started).as_ns();
        Some(transfer)
    }

    /// Number of transfers begun but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Accounting over completed transfers.
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn plane_1gbs() -> TransferPlane {
        // 1 GB/s, zero latency: 1 byte per ns makes arithmetic readable.
        TransferPlane::new(FleetTopology::uniform(
            4,
            LinkSpec::new(SimDuration::ZERO, 1e9),
        ))
    }

    #[test]
    fn transfers_on_disjoint_pairs_overlap() {
        let mut plane = plane_1gbs();
        let a = plane.begin(SimTime::ZERO, 0, 1, 1000, 64, TransferKind::PrefixMigration);
        let b = plane.begin(SimTime::ZERO, 2, 3, 1000, 64, TransferKind::PrefixMigration);
        assert_eq!(a.finish, SimTime::from_ns(1000));
        assert_eq!(b.finish, SimTime::from_ns(1000));
        assert_eq!(plane.in_flight(), 2);
    }

    #[test]
    fn shared_tx_nic_serializes_in_request_order() {
        let mut plane = plane_1gbs();
        let a = plane.begin(SimTime::ZERO, 0, 1, 1000, 64, TransferKind::PrefixMigration);
        let b = plane.begin(SimTime::ZERO, 0, 2, 500, 32, TransferKind::Prewarm);
        assert_eq!(a.started, SimTime::ZERO);
        assert_eq!(b.started, a.finish, "second transfer waits for the TX NIC");
        assert_eq!(b.finish, SimTime::from_ns(1500));
        assert_eq!(b.nic_wait(), SimDuration::from_ns(1000));
    }

    #[test]
    fn shared_rx_nic_serializes_too() {
        let mut plane = plane_1gbs();
        let a = plane.begin(SimTime::ZERO, 0, 3, 1000, 64, TransferKind::DisaggHandoff);
        let b = plane.begin(SimTime::ZERO, 1, 3, 1000, 64, TransferKind::DisaggHandoff);
        assert_eq!(b.started, a.finish, "destination RX NIC is shared");
    }

    #[test]
    fn estimate_matches_begin_and_reserves_nothing() {
        let mut plane = plane_1gbs();
        plane.begin(SimTime::ZERO, 0, 1, 1000, 64, TransferKind::PrefixMigration);
        let est = plane.estimate_finish(SimTime::ZERO, 0, 2, 500);
        let actual = plane.begin(SimTime::ZERO, 0, 2, 500, 32, TransferKind::Prewarm);
        assert_eq!(est, actual.finish);
    }

    #[test]
    fn complete_accumulates_stats() {
        let mut plane = plane_1gbs();
        let a = plane.begin(SimTime::ZERO, 0, 1, 1000, 64, TransferKind::PrefixMigration);
        let b = plane.begin(SimTime::ZERO, 0, 2, 500, 32, TransferKind::Prewarm);
        plane.complete(a.id);
        plane.complete(b.id);
        assert_eq!(plane.in_flight(), 0);
        let s = *plane.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 1500);
        assert_eq!(s.tokens, 96);
        assert_eq!(s.nic_wait_ns, 1000);
        assert_eq!(s.wire_ns, 1500);
        assert_eq!(plane.complete(999), None);
    }

    #[test]
    fn instant_link_finishes_at_request_time() {
        let mut plane = TransferPlane::new(FleetTopology::uniform(2, LinkSpec::instant()));
        let t = plane.begin(
            SimTime::from_ns(77),
            0,
            1,
            u64::MAX,
            1 << 20,
            TransferKind::PrefixMigration,
        );
        assert_eq!(t.finish, SimTime::from_ns(77));
        let u = plane.begin(SimTime::from_ns(77), 0, 1, 12, 3, TransferKind::Prewarm);
        assert_eq!(u.finish, SimTime::from_ns(77), "instant link never queues");
    }
}
