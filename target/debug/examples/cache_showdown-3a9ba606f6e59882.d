/root/repo/target/debug/examples/cache_showdown-3a9ba606f6e59882.d: examples/cache_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libcache_showdown-3a9ba606f6e59882.rmeta: examples/cache_showdown.rs Cargo.toml

examples/cache_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
